"""Example 1 of the paper: real-time content notification.

A user u2 is a *recentLiker* of u1 when u2 recently liked content created
by u1 and they follow each other (transitively).  The service notifies
users of new content posted by anyone connected to them through a path of
recentLiker relationships — a query that needs subgraph patterns (R1),
path navigation (R2), and paths as first-class citizens (R3) at once; the
paper notes it cannot be written in Cypher or SPARQL.

The query is formulated in the paper's G-CORE dialect (Figure 6) and run
over the Figure 2 interaction stream, then over a larger synthetic
social stream.

Run with:  python examples/social_recommendation.py
"""

from repro import SGE, StreamingGraphEngine, parse_gcore
from repro.datasets import stackoverflow_stream
from repro.engine import result_paths

# The G-CORE statement of Figure 6 (24-tick window here; the paper uses
# 24 hours — set WINDOW (24 h) with real data).
GCORE_QUERY = """
PATH RL = (u1) -/<:follows*>/-> (u2),
          (u1)-[:likes]->(m1)<-[:posts]-(u2)
CONSTRUCT (u)-[:notify]->(m)
MATCH (u) -/p<~RL*>/-> (v),
      (v)-[:posts]->(m)
ON social_stream WINDOW (24 ticks) SLIDE (1 ticks)
"""

# ----------------------------------------------------------------------
# Part 1: the paper's running example (Figure 2 input stream).
# ----------------------------------------------------------------------
print("== Figure 2 stream ==")
engine = StreamingGraphEngine()
notify = engine.register(parse_gcore(GCORE_QUERY), name="notify")

# SGA is closed: intermediate streams are streaming graphs too.  Tap the
# derived recentLiker edges to watch the relationship graph evolve.
recent_likers = engine.tap("RL")

figure2_stream = [
    SGE("u", "v", "follows", 7),
    SGE("v", "b", "posts", 10),
    SGE("y", "u", "follows", 13),
    SGE("v", "c", "posts", 17),
    SGE("u", "a", "posts", 22),
    SGE("y", "a", "likes", 28),
    SGE("u", "b", "likes", 29),
    SGE("u", "c", "likes", 30),
]
for edge in figure2_stream:
    before = {key for key in notify.coverage()}
    engine.push(edge)
    new = {key for key in notify.coverage()} - before
    for user, content, _ in sorted(new):
        print(f"  t={edge.t}: notify {user}: new content {content!r}")

print("\nrecentLiker relationships discovered (tapped mid-plan):")
for (u2, u1, _), intervals in sorted(recent_likers.coverage().items()):
    spans = ", ".join(str(iv) for iv in intervals)
    print(f"  {u2} recentLiker-of {u1}: {spans}")

print("\nNotifications valid at t=30:")
for user, content, _ in sorted(notify.valid_at(30)):
    print(f"  {user} <- {content}")

# ----------------------------------------------------------------------
# Part 2: the same persistent query over a larger synthetic stream.
# The CONSTRUCTed notify edges keep flowing as the stream advances and
# old interactions fall out of the 24-tick window.
# ----------------------------------------------------------------------
print("\n== Synthetic social stream ==")
social = stackoverflow_stream(n_edges=3000, n_users=120, seed=42)
relabel = {"a2q": "follows", "c2q": "likes", "c2a": "posts"}
stream = [SGE(e.src, e.trg, relabel[e.label], e.t) for e in social]

engine = StreamingGraphEngine()
notify = engine.register(
    parse_gcore(
        GCORE_QUERY.replace("24 ticks", "360 ticks").replace(
            "1 ticks", "60 ticks"
        )
    ),
    name="notify",
)
stats = engine.push_many(stream)

print(f"processed {stats.total_edges} interactions "
      f"across {len(stats.slides)} window slides")
print(f"throughput: {stats.throughput:,.0f} edges/s, "
      f"p99 slide latency: {stats.tail_latency() * 1000:.2f} ms")
print(f"distinct notifications: {len(notify.coverage())}")

# recentLiker chains that power the notifications (paths as data!):
chains = [p for p in result_paths(notify.results()) if p.length >= 1]
if chains:
    longest = max(chains, key=lambda p: p.length)
    print(f"longest notification chain ({longest.length} hops): "
          + " -> ".join(str(v) for v in longest.vertices))
