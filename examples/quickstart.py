"""Quickstart: persistent graph queries over a stream in five minutes.

Registers a transitive-closure query over a stream of `knows` edges with
a sliding window, pushes edges one by one, and prints incremental results
— including the actual materialized paths (requirement R3 of the paper:
paths are first-class citizens).

Run with:  python examples/quickstart.py
"""

from repro import SGE, SlidingWindow, StreamingGraphQueryProcessor
from repro.engine import result_paths

# ----------------------------------------------------------------------
# 1. Formulate a persistent query: who can reach whom through `knows`
#    edges, within a sliding window of 100 ticks?
# ----------------------------------------------------------------------
QUERY = """
Answer(x, y) <- knows+(x, y) as KnowsPath.
"""

processor = StreamingGraphQueryProcessor.from_datalog(
    QUERY, window=SlidingWindow(size=100, slide=10)
)

# ----------------------------------------------------------------------
# 2. Feed the streaming graph.  Edges arrive in timestamp order; the
#    engine evaluates incrementally — no batch recomputation.
# ----------------------------------------------------------------------
edges = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 12),
    SGE("cyd", "dan", "knows", 25),
    SGE("dan", "ada", "knows", 31),  # closes a cycle
    SGE("eve", "ada", "knows", 90),  # arrives much later
]
for edge in edges:
    processor.push(edge)
    print(f"pushed {edge}; results valid now: {len(processor.valid_at(edge.t))}")

# ----------------------------------------------------------------------
# 3. Inspect results.  Each result sgt carries a validity interval
#    [ts, exp) — the instants at which the answer holds — and, because
#    the query is a closure, the materialized path that witnesses it.
# ----------------------------------------------------------------------
print("\nAll results (coalesced):")
for sgt in processor.results():
    print(f"  {sgt.src} -> {sgt.trg}  valid {sgt.interval}")

print("\nMaterialized paths:")
for path in sorted(result_paths(processor.results()), key=lambda p: p.length):
    print(f"  {path}")

# ----------------------------------------------------------------------
# 4. Snapshots: the output at any instant equals the one-time query over
#    the window content at that instant (snapshot reducibility).
# ----------------------------------------------------------------------
print("\nWho reaches whom at t=35 :", sorted(
    (u, v) for u, v, _ in processor.valid_at(35)))
print("Who reaches whom at t=120:", sorted(
    (u, v) for u, v, _ in processor.valid_at(120)))
