"""Quickstart: persistent graph queries over a stream in five minutes.

Opens a `StreamingGraphEngine` session, registers a transitive-closure
query over a stream of `knows` edges with a sliding window, pushes edges
one by one, and prints incremental results through the returned
`QueryHandle` — including the actual materialized paths (requirement R3
of the paper: paths are first-class citizens).

Run with:  python examples/quickstart.py
"""

from repro import SGE, SlidingWindow, StreamingGraphEngine
from repro.engine import result_paths
from repro.query.sgq import SGQ

# ----------------------------------------------------------------------
# 1. Open an engine session and register a persistent query: who can
#    reach whom through `knows` edges, within a sliding window of 100
#    ticks?  `register` returns a QueryHandle; more queries can attach
#    to the same engine (and share operators) at any time.
# ----------------------------------------------------------------------
QUERY = """
Answer(x, y) <- knows+(x, y) as KnowsPath.
"""

engine = StreamingGraphEngine()
reach = engine.register(
    SGQ.from_text(QUERY, SlidingWindow(size=100, slide=10)),
    name="reach",
)

# ----------------------------------------------------------------------
# 2. Feed the streaming graph.  Edges arrive in timestamp order; the
#    engine evaluates incrementally — no batch recomputation.
# ----------------------------------------------------------------------
edges = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 12),
    SGE("cyd", "dan", "knows", 25),
    SGE("dan", "ada", "knows", 31),  # closes a cycle
    SGE("eve", "ada", "knows", 90),  # arrives much later
]
for edge in edges:
    engine.push(edge)
    print(f"pushed {edge}; results valid now: {len(reach.valid_at(edge.t))}")

# ----------------------------------------------------------------------
# 3. Inspect results through the handle.  Each result sgt carries a
#    validity interval [ts, exp) — the instants at which the answer
#    holds — and, because the query is a closure, the materialized path
#    that witnesses it.
# ----------------------------------------------------------------------
print("\nAll results (coalesced):")
for sgt in reach.results():
    print(f"  {sgt.src} -> {sgt.trg}  valid {sgt.interval}")

print("\nMaterialized paths:")
for path in sorted(result_paths(reach.results()), key=lambda p: p.length):
    print(f"  {path}")

# ----------------------------------------------------------------------
# 4. Snapshots: the output at any instant equals the one-time query over
#    the window content at that instant (snapshot reducibility).
# ----------------------------------------------------------------------
print("\nWho reaches whom at t=35 :", sorted(
    (u, v) for u, v, _ in reach.valid_at(35)))
print("Who reaches whom at t=120:", sorted(
    (u, v) for u, v, _ in reach.valid_at(120)))
