"""Quickstart: persistent graph queries over a stream in five minutes.

Authors a query three equivalent ways (fluent builder, Datalog text,
prepared template), opens a `StreamingGraphEngine` session, registers
the query, pushes edges one by one, and prints incremental results
through the returned `QueryHandle` — including the actual materialized
paths (requirement R3 of the paper: paths are first-class citizens).

Run with:  python examples/quickstart.py
"""

from repro import SGE, SlidingWindow, StreamingGraphEngine, ql
from repro.engine import result_paths

# ----------------------------------------------------------------------
# 1. Author a query: who can reach whom through `knows` edges, within a
#    sliding window of 100 ticks?  Queries are first-class frozen
#    values; the fluent builder, Datalog text and G-CORE text all
#    produce the same `Query`.
# ----------------------------------------------------------------------
reach_query = (
    ql.match()
    .closure("knows", name="KnowsPath")
    .window(100)
    .slide(10)
    .build()
)

# The exact same query, from Datalog text (dialect auto-detected):
same_query = ql.Query.from_text(
    "Answer(x, y) <- knows+(x, y) as KnowsPath.",
    window=100,
    slide=10,
)
assert reach_query.plan() == same_query.plan()

# Inspect any stage of the compile pipeline before running:
print("The logical plan:")
print(reach_query.explain("logical"), "\n")

# ----------------------------------------------------------------------
# 2. Open an engine session and register the query.  `register` returns
#    a QueryHandle; more queries can attach to the same engine (and
#    share operators) at any time.
# ----------------------------------------------------------------------
engine = StreamingGraphEngine()
reach = engine.register(reach_query, name="reach")

# ----------------------------------------------------------------------
# 3. Feed the streaming graph.  Edges arrive in timestamp order; the
#    engine evaluates incrementally — no batch recomputation.
# ----------------------------------------------------------------------
edges = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 12),
    SGE("cyd", "dan", "knows", 25),
    SGE("dan", "ada", "knows", 31),  # closes a cycle
    SGE("eve", "ada", "knows", 90),  # arrives much later
]
for edge in edges:
    engine.push(edge)
    print(f"pushed {edge}; results valid now: {len(reach.valid_at(edge.t))}")

# ----------------------------------------------------------------------
# 4. Inspect results through the handle.  Each result sgt carries a
#    validity interval [ts, exp) — the instants at which the answer
#    holds — and, because the query is a closure, the materialized path
#    that witnesses it.
# ----------------------------------------------------------------------
print("\nAll results (coalesced):")
for sgt in reach.results():
    print(f"  {sgt.src} -> {sgt.trg}  valid {sgt.interval}")

print("\nMaterialized paths:")
for path in sorted(result_paths(reach.results()), key=lambda p: p.length):
    print(f"  {path}")

# ----------------------------------------------------------------------
# 5. Snapshots: the output at any instant equals the one-time query over
#    the window content at that instant (snapshot reducibility).
# ----------------------------------------------------------------------
print("\nWho reaches whom at t=35 :", sorted(
    (u, v) for u, v, _ in reach.valid_at(35)))
# Reading ahead of the stream needs the window movements performed
# first — valid_at refuses to guess about movements it has not made
# (it would raise HorizonError), so advance the engine explicitly.
engine.advance_to(120)
print("Who reaches whom at t=120:", sorted(
    (u, v) for u, v, _ in reach.valid_at(120)))

# ----------------------------------------------------------------------
# 6. Prepared queries: parse a $-parameterized template once, bind many
#    instances cheaply — they share compiled operators in the session.
# ----------------------------------------------------------------------
template = ql.prepare(
    "Answer(x, y) <- $rel+(x, y) as Closure.",
    window=SlidingWindow(100, 10),
)
likes = engine.register(template.bind(rel="likes"), name="likes-reach")
follows = engine.register(template.bind(rel="follows"), name="follows-reach")

engine.push(SGE("ada", "bob", "likes", 95))
engine.push(SGE("bob", "cyd", "likes", 96))
engine.push(SGE("cyd", "dan", "follows", 97))
print("\nPrepared template, bound twice:")
print("  likes-reach  :", sorted((u, v) for u, v, _ in likes.valid_at(97)))
print("  follows-reach:", sorted((u, v) for u, v, _ in follows.valid_at(97)))
