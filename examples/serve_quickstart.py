"""Serving quickstart: register, subscribe, ingest — over HTTP.

Boots the multi-tenant service in-process on a free port, then speaks
to it the way any external client would (raw sockets here; any HTTP +
SSE client works):

1. ``POST /tenants/demo/queries`` registers the paper's notification
   query for tenant ``demo`` (each tenant gets its own engine session);
2. ``GET  /tenants/demo/queries/notify/subscribe`` opens a Server-Sent
   Events stream — the ``ready`` notice guarantees the subscription
   sees every subsequent ingest;
3. ``POST /tenants/demo/ingest`` pushes an edge batch; each query
   result is pushed to the subscriber as one JSON event with a
   per-query sequence number;
4. shutting the server down drains gracefully: the subscriber receives
   its full backlog plus an end-of-stream notice.

Run with:  python examples/serve_quickstart.py
"""

import asyncio
import json

from repro.serve.app import GraphStreamServer

NOTIFY = """
RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
Answer(u, m) <- Notify(u, m).
"""

EDGES = [
    {"src": "ada", "trg": "post1", "label": "likes", "t": 0},
    {"src": "ada", "trg": "bob", "label": "follows", "t": 1},
    {"src": "bob", "trg": "post1", "label": "posts", "t": 2},
    {"src": "bob", "trg": "post2", "label": "posts", "t": 3},
]


async def call(port, method, path, body=None):
    """One HTTP request against the service (stdlib sockets only)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: demo\r\n"
        f"Content-Length: {len(data)}\r\n\r\n".encode() + data
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), json.loads(payload)


async def subscribe(port, results):
    """Consume the SSE stream until the server signals end-of-stream."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        b"GET /tenants/demo/queries/notify/subscribe HTTP/1.1\r\n"
        b"Host: demo\r\n\r\n"
    )
    await writer.drain()
    buf = b""
    while True:
        chunk = await reader.read(4096)
        if not chunk:
            return
        buf += chunk
        while b"\n\n" in buf:
            frame, _, buf = buf.partition(b"\n\n")
            event = data = None
            for line in frame.decode().splitlines():
                if line.startswith("event: "):
                    event = line[len("event: ") :]
                elif line.startswith("data: "):
                    data = line[len("data: ") :]
            if event == "ready":
                results["ready"].set()
            elif event == "end":
                print(f"stream ended: {json.loads(data)['reason']}")
                writer.close()
                return
            elif data is not None:
                results["events"].append(json.loads(data))


async def main():
    server = GraphStreamServer(port=0)  # port 0: pick a free one
    await server.start()
    port = server.port
    print(f"service up on port {port}\n")

    status, body = await call(
        port,
        "POST",
        "/tenants/demo/queries",
        {"query": NOTIFY, "window": 24, "slide": 1, "name": "notify"},
    )
    print(f"register -> {status} {body}")

    results = {"events": [], "ready": asyncio.Event()}
    consumer = asyncio.ensure_future(subscribe(port, results))
    await results["ready"].wait()

    status, body = await call(
        port, "POST", "/tenants/demo/ingest", {"edges": EDGES}
    )
    print(f"ingest   -> {status} {body}")

    status, body = await call(port, "GET", "/metrics")
    demo = body["tenants"]["demo"]
    print(
        f"metrics  -> watermark={demo['watermark']} "
        f"ingested={demo['ingested_total']} "
        f"subscribers={demo['subscriber_count']}\n"
    )

    await server.shutdown()  # graceful drain: backlog flushes first
    await consumer

    print("\nnotifications received over the wire:")
    for event in results["events"]:
        sign = "+" if event["sign"] > 0 else "-"
        print(
            f"  #{event['seq']} {sign}Answer({event['src']}, {event['trg']}) "
            f"valid [{event['from']}, {event['to']})"
        )
    assert results["events"], "expected at least one pushed notification"


if __name__ == "__main__":
    asyncio.run(main())
