"""Example 4 of the paper: joining two streams with different windows.

Product recommendations are driven by combining a *social* stream (who
follows whom, who likes whose posts — relevant for 24 ticks) with a
*transaction* stream (who purchased what — relevant for 30× longer).
Two users are acquainted when one follows the other OR one liked a post
of the other (the OPTIONAL patterns of Figure 7, which translate to a
union); a product purchased by an acquaintance becomes a recommendation.

Demonstrates: multiple input streams, per-stream windows, OPTIONAL
(union) patterns, WHERE-joins across streams, and composable G-CORE
views over streaming graphs.

Run with:  python examples/multi_stream_join.py
"""

from repro import SGE, StreamingGraphEngine, parse_gcore

GCORE_QUERY = """
GRAPH VIEW rec_stream AS (
CONSTRUCT (u1)-[:recommendation]->(p)
MATCH (u1)
OPTIONAL (u1)-[:follows]->(u2)
OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)
ON social_stream WINDOW (24 ticks)
MATCH (c)-[:purchase]->(p)
ON tx_stream WINDOW (720 ticks) SLIDE (24 ticks)
WHERE (u2) = (c) )
"""

engine = StreamingGraphEngine()
recs = engine.register(parse_gcore(GCORE_QUERY), name="recommendations")

# The engine consumes one merged, timestamp-ordered stream; labels route
# tuples to the right windows (follows/likes/posts -> 24 ticks,
# purchase -> 720 ticks).
interleaved = [
    SGE("carol", "hat", "purchase", 1),      # long-lived purchase
    SGE("alice", "carol", "follows", 3),     # acquaintance route 1
    SGE("bob", "post1", "likes", 5),
    SGE("carol", "post1", "posts", 6),       # acquaintance route 2
    SGE("dave", "scarf", "purchase", 8),
    SGE("erin", "dave", "follows", 40),      # social edges expire fast...
    SGE("frank", "gloves", "purchase", 45),
]
for edge in interleaved:
    engine.push(edge)

print("Recommendations and their validity:")
for (user, product, _), intervals in sorted(recs.coverage().items()):
    spans = ", ".join(str(iv) for iv in intervals)
    print(f"  {user} <- {product}: {spans}")

# alice follows carol (valid 24 ticks) and carol bought a hat (valid 720
# ticks): the recommendation holds only while BOTH are in their windows.
assert ("alice", "hat", "Answer") in recs.valid_at(10)
assert ("alice", "hat", "Answer") not in recs.valid_at(30)
# bob liked carol's post: the union's second branch fires as well.
assert ("bob", "hat", "Answer") in recs.valid_at(10)
# erin follows dave long after dave's purchase — still recommended,
# because purchases stay relevant for 720 ticks.
assert ("erin", "scarf", "Answer") in recs.valid_at(41)

print("\nWindow interplay verified:")
print("  social edges expire after 24 ticks, purchases after 720;")
print("  a recommendation holds exactly while both constituents live.")
