"""Durability quickstart: checkpoint a live session, restore it exactly.

A streaming session accumulates irreplaceable state — window contents,
Δ-path closures, per-query result history.  The checkpoint subsystem
snapshots all of it at a watermark boundary into a versioned, atomic,
self-verifying on-disk checkpoint, and restores it bit-identically:
the restored engine continues the stream as if the process had never
stopped, down to the order of individual retraction events.

Demonstrates:

* `engine.checkpoint(store)` — one atomic snapshot of every query;
* `StreamingGraphEngine.restore(store)` — a fresh engine, same state;
* suffix parity — restored vs uninterrupted runs agree byte-for-byte;
* offline shard rebalancing — restore a 2-shard checkpoint into a
  3-shard engine (`restore(store, shards=3)`);
* retention — the store keeps the last K checkpoints, GC'ing older.

Run with:  python examples/checkpoint_restore.py
"""

import tempfile

from repro import EngineConfig, StreamingGraphEngine
from repro.bench.experiments import Scale, _stream
from repro.checkpoint import DirectoryCheckpointStore
from repro.core.windows import HOUR
from repro.workloads import QUERIES, labels_for

# The paper's Q1 (transitive closure over 'knows') on the SNB-like
# benchmark stream, cut in half to simulate an interrupted run.
SCALE = Scale(n_edges=300, n_vertices=40, window=6 * HOUR, slide=HOUR)
stream = _stream("snb", SCALE)
cut = len(stream) // 2
plan = QUERIES["Q1"].plan(labels_for("Q1", "snb"), SCALE.sliding_window())

workdir = tempfile.mkdtemp(prefix="sgs-ckpt-")
store = DirectoryCheckpointStore(workdir, retain=3)

# ----------------------------------------------------------------------
# 1. Run half the stream, checkpoint, and "crash" (close the engine).
# ----------------------------------------------------------------------
engine = StreamingGraphEngine(EngineConfig(backend="sga"))
engine.register(plan, name="Q1")
engine.push_many(stream[:cut])
checkpoint_id = engine.checkpoint(store, note="example")
print(f"checkpointed {cut} edges as {checkpoint_id} in {workdir}")
print(f"  blobs: {store.open(checkpoint_id).blob_names()}")
engine.close()

# ----------------------------------------------------------------------
# 2. Restore into a brand-new engine and replay the suffix.
# ----------------------------------------------------------------------
restored = StreamingGraphEngine.restore(store)
events = []
restored.set_result_callback("Q1", events.append)
restored.push_many(stream[cut:])

# ----------------------------------------------------------------------
# 3. Compare against an uninterrupted engine fed the same two batches.
# ----------------------------------------------------------------------
reference = StreamingGraphEngine(EngineConfig(backend="sga"))
ref_events = []
reference.register(plan, name="Q1", on_result=ref_events.append)
reference.push_many(stream[:cut])
reference.push_many(stream[cut:])

suffix = ref_events[len(ref_events) - len(events):]
assert [repr(e) for e in events] == [repr(e) for e in suffix]
assert restored.handle("Q1").results() == reference.handle("Q1").results()
print(
    f"restored run emitted {len(events)} suffix events — bit-identical "
    "to the uninterrupted reference"
)
restored.close()

# ----------------------------------------------------------------------
# 4. Offline rebalancing: the same technique moves state between shard
#    layouts.  Snapshot under shards=2, restore under shards=3 — result
#    sets match (event *order* is layout-specific, results are not).
# ----------------------------------------------------------------------
sharded = StreamingGraphEngine(
    EngineConfig(backend="sga", shards=2, execution="columnar")
)
sharded.register(plan, name="Q1")
sharded.push_many(stream[:cut])
sharded.checkpoint(store)
sharded.close()

wider = StreamingGraphEngine.restore(store, shards=3)
wider.push_many(stream[cut:])
assert set(wider.handle("Q1").results()) == set(
    reference.handle("Q1").results()
)
print("rebalanced 2-shard checkpoint into a 3-shard engine: results agree")
wider.close()
reference.close()

print(f"store retains (K=3): {store.list()}")
