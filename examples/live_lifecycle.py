"""Live query lifecycle: attach, share, detach — while the stream runs.

A long-lived `StreamingGraphEngine` session serves a stream that never
stops.  Queries come and go at runtime:

* registering a second query re-shares the live operators (here the
  `knows+` Δ-PATH closure) and benefits from their *retained window
  state* — no replay, no cold start for the shared part;
* unregistering a query prunes the operators only it used, while the
  survivors keep streaming untouched;
* the same queries run on the DD baseline with a one-line config flip
  (`backend="dd"`), behind the same handle API.

Run with:  python examples/live_lifecycle.py
"""

from repro import SGE, EngineConfig, SlidingWindow, StreamingGraphEngine
from repro.query.sgq import SGQ

WINDOW = SlidingWindow(size=40, slide=4)
PAIRS = "Answer(x, z) <- knows+(x, y) as K, likes(y, z)."
FANS = "Answer(x, z) <- knows+(x, y) as K, follows(y, z)."

stream = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 2),
    SGE("cyd", "art", "likes", 5),      # pairs: ada/bob -> art
    SGE("cyd", "dan", "knows", 9),
    SGE("dan", "eve", "follows", 12),   # fans: ada/bob/cyd -> eve
    SGE("dan", "pop", "likes", 14),     # pairs again
]

# ----------------------------------------------------------------------
# 1. Start with one query; stream the first half.
# ----------------------------------------------------------------------
engine = StreamingGraphEngine(EngineConfig(path_impl="spath"))
pairs = engine.register(SGQ.from_text(PAIRS, WINDOW), name="pairs")
for edge in stream[:3]:
    engine.push(edge)
print(f"pairs results so far : {sorted(k[:2] for k in pairs.valid_at(5))}")
print(f"operators (1 query)  : {engine.operator_count()}")

# ----------------------------------------------------------------------
# 2. Attach a second query MID-STREAM.  Its `knows+` sub-plan is already
#    compiled and *live*: the shared Δ-PATH index retains the window's
#    closure, so derivations extending pre-registration edges flow to
#    the new handle immediately.
# ----------------------------------------------------------------------
fans = engine.register(SGQ.from_text(FANS, WINDOW), name="fans")
print(f"\nregistered 'fans' mid-stream; operators now: "
      f"{engine.operator_count()} (sharing saved {engine.sharing_savings()})")
for edge in stream[3:5]:
    engine.push(edge)
# ada->eve needs knows-edges that arrived BEFORE 'fans' registered:
print(f"fans results         : {sorted(k[:2] for k in fans.valid_at(12))}")

# ----------------------------------------------------------------------
# 3. Detach the first query MID-STREAM.  Operators only it used are
#    pruned; the shared closure keeps serving the survivor.
# ----------------------------------------------------------------------
engine.unregister("pairs")
for edge in stream[5:]:
    engine.push(edge)
print(f"\nunregistered 'pairs'; operators now: {engine.operator_count()}")
print(f"fans keeps streaming : {sorted(k[:2] for k in fans.valid_at(14))}")
print(f"detached handle stays readable: {len(pairs.results())} results")

# ----------------------------------------------------------------------
# 4. Same queries, DD baseline: one line changes.
# ----------------------------------------------------------------------
dd = StreamingGraphEngine(EngineConfig(backend="dd"))
dd_pairs = dd.register(SGQ.from_text(PAIRS, WINDOW), name="pairs")
dd.push_many(stream)
print(f"\nDD backend, same handle API: "
      f"{sorted(k[:2] for k in dd_pairs.valid_at(14))}")
print(f"per-query stats      : {dd_pairs.stats()}")
