"""Sharded multi-core execution behind the session API.

``EngineConfig(shards=N)`` is the only change: the engine
hash-partitions the stateful work of every registered plan across N
shard workers — PATH Δ-tree forests by root vertex, PATTERN joins by
join key — and the handle surfaces merge the per-shard results
transparently.  This example runs the same query serially, on the
deterministic in-process shard scheduler, and on real multiprocessing
workers, and shows all three agree.
"""

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.query.sgq import SGQ

QUERY = """
Reach(x, y) <- knows+(x, y) as K.
Answer(x, z) <- Reach(x, y), likes(y, z).
"""
WINDOW = SlidingWindow(40, 8)

# A small two-label stream: a growing knows-graph plus likes edges.
STREAM = [
    SGE(1, 2, "knows", 0), SGE(2, 3, "knows", 3), SGE(3, 9, "likes", 5),
    SGE(3, 4, "knows", 9), SGE(4, 8, "likes", 12), SGE(5, 1, "knows", 14),
    SGE(2, 7, "likes", 18), SGE(4, 6, "knows", 22), SGE(6, 9, "likes", 25),
    SGE(7, 5, "knows", 30), SGE(1, 8, "likes", 33),
]


def run(config: EngineConfig):
    engine = StreamingGraphEngine(config)
    handle = engine.register(SGQ.from_text(QUERY, WINDOW), name="q")
    engine.push_many(STREAM)
    answer = sorted((u, v) for u, v, _ in handle.valid_at(33))
    engine.close()  # stops shard workers (a no-op for shards=1/inline)
    return answer


serial = run(EngineConfig())
print("serial (shards=1)          :", serial)

# The deterministic inline scheduler: shards step in lockstep with
# synchronous exchange, reproducing the serial execution order exactly —
# this is what the golden parity tests pin.
inline = run(EngineConfig(shards=3))
print("sharded (3 shards, inline) :", inline)
assert inline == serial

# The multiprocessing transport: one OS process per shard, columnar
# slides shipped to workers, cross-shard deltas exchanged per slide.
# On a multi-core machine this is the throughput configuration.
process = run(EngineConfig(shards=2, shard_transport="process"))
print("sharded (2 workers, procs) :", process)
assert process == serial

print("\nall three executions agree; see README 'Scaling out' for when "
      "sharding pays off")
