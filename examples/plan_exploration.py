"""Section 5.4 / 7.4: exploring the plan space with transformation rules.

Starting from the canonical SGA plan of Q4 — ``(a.b.c)+`` — the SGA
transformation rules derive three equivalent plans (P1-P3 of Figure 12).
This script prints all four plans, verifies they compute identical
answers, and measures their throughput on a synthetic stream: the spread
shows why a streaming-graph query optimizer is worth building.

Run with:  python examples/plan_exploration.py
"""

from repro.algebra import evaluate_plan_at, explain
from repro.bench.harness import run_sga_bench
from repro.core.windows import SlidingWindow
from repro.datasets import stackoverflow_stream
from repro.workloads import labels_for, q4_plan_space

WINDOW = SlidingWindow(size=480, slide=60)

# ----------------------------------------------------------------------
# 1. Derive the plan space.
# ----------------------------------------------------------------------
plans = q4_plan_space(labels_for("Q4", "so"), WINDOW)
for name, plan in plans.items():
    print(f"-- plan {name} " + "-" * 40)
    print(explain(plan))
    print()

# ----------------------------------------------------------------------
# 2. All four plans are equivalent (spot-check on a snapshot).
# ----------------------------------------------------------------------
stream = stackoverflow_stream(n_edges=2500, n_users=120, seed=7)
streams = {}
for edge in stream:
    streams.setdefault(edge.label, []).append(edge)

probe_instant = stream[len(stream) // 2].t
answers = {
    name: evaluate_plan_at(plan, streams, probe_instant)
    for name, plan in plans.items()
}
reference = answers["SGA"]
for name, answer in answers.items():
    assert answer == reference, f"plan {name} diverged"
print(f"all plans agree at t={probe_instant}: {len(reference)} answers\n")

# ----------------------------------------------------------------------
# 3. Equivalent does not mean equally fast (Figure 12).
# ----------------------------------------------------------------------
print(f"{'plan':6} {'throughput (edges/s)':>22} {'p99 latency (ms)':>18}")
baseline = None
for name, plan in plans.items():
    result = run_sga_bench(plan, stream, path_impl="negative")
    if baseline is None:
        baseline = result.throughput
    delta = (result.throughput - baseline) / baseline * 100
    print(
        f"{name:6} {result.throughput:>22,.0f} "
        f"{result.tail_latency * 1000:>18.2f}"
        f"   ({delta:+.0f}% vs canonical)"
    )
