"""Figure 12: the Q4 plan space — canonical SGA vs P1/P2/P3.

The four equivalent plans of Section 7.4 for ``(a.b.c)+``:

* SGA — loop-caching canonical plan ``P[d+](PATTERN(a, b, c))``,
* P1  — ``P[(a.b.c)+]`` (the whole expression inside one PATH),
* P2  — ``P[(a.d)+](a, PATTERN(b, c))``,
* P3  — ``P[(d.c)+](PATTERN(a, b), c)``.

Paper shape: rewritten plans differ from the canonical one by tens of
percent (up to ~60%), with different winners per dataset.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.workloads import labels_for, q4_plan_space

_rows: list[dict] = []


def _plans(dataset):
    window = BENCH_SCALE.sliding_window()
    return q4_plan_space(labels_for("Q4", dataset), window)


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("plan_name", ["SGA", "P1", "P2", "P3"])
def test_q4_plan(benchmark, streams, dataset, plan_name):
    plan = _plans(dataset)[plan_name]
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, streams[dataset]),
        kwargs={"path_impl": "negative"},
        iterations=1,
        rounds=1,
    )
    _rows.append(result.row(dataset=dataset, plan=plan_name, query="Q4"))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["dataset"], r["plan"]))
    register_section("== Figure 12: Q4 plan space ==", ordered)
