"""Figure 14: the Q3 plan space — canonical SGA vs the direct PATH plan.

Canonical (from Algorithm SGQParser): unions of PATTERNs over ``P[b+]``
and ``P[c+]``.  P1: one PATH evaluating ``a b* c*``.

Paper shape: like Figure 13, a substantial gap between equivalent plans,
demonstrating the value of plan-space exploration.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.workloads import QUERIES, labels_for, rpq_direct_plan

_rows: list[dict] = []


def _plans(dataset):
    window = BENCH_SCALE.sliding_window()
    labels = labels_for("Q3", dataset)
    return {
        "SGA": QUERIES["Q3"].plan(labels, window),
        "P1": rpq_direct_plan("Q3", labels, window),
    }


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("plan_name", ["SGA", "P1"])
def test_q3_plan(benchmark, streams, dataset, plan_name):
    plan = _plans(dataset)[plan_name]
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, streams[dataset]),
        kwargs={"path_impl": "negative"},
        iterations=1,
        rounds=1,
    )
    _rows.append(result.row(dataset=dataset, plan=plan_name, query="Q3"))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["dataset"], r["plan"]))
    register_section("== Figure 14: Q3 plan space ==", ordered)
