"""Table 2: throughput and p99 tail latency of SGA vs DD, Q1-Q7, SO & SNB.

Paper shape: SGA ahead on the dense cyclic SO graph (clearly on the
recursive Q1 and on the pattern query Q5); DD competitive-to-better on
linear path queries over SNB's tree-shaped replyOf edges.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_dd_bench, run_sga_bench
from repro.query.parser import parse_rq
from repro.workloads import QUERIES, labels_for

ALL = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
_rows: list[dict] = []


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("query_name", ALL)
def test_sga(benchmark, streams, dataset, query_name):
    stream = streams[dataset]
    window = BENCH_SCALE.sliding_window()
    plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
    result = benchmark.pedantic(
        run_sga_bench, args=(plan, stream), kwargs={"path_impl": "negative"},
        iterations=1, rounds=1,
    )
    _rows.append(result.row(dataset=dataset, query=query_name))


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("query_name", ALL)
def test_dd(benchmark, streams, dataset, query_name):
    stream = streams[dataset]
    window = BENCH_SCALE.sliding_window()
    labels = labels_for(query_name, dataset)
    program = parse_rq(QUERIES[query_name].datalog(labels))
    result = benchmark.pedantic(
        run_dd_bench, args=(program, stream, window), iterations=1, rounds=1
    )
    _rows.append(result.row(dataset=dataset, query=query_name))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["dataset"], r["query"]))
    register_section("== Table 2: SGA vs DD ==", ordered)
