"""Prepared-query reuse: compile-once/bind-many vs N text compiles.

Instantiates N parameterized instances of Q4 (Table 1's loop-caching
canonical plan — the heaviest template to translate), two ways:

* **text** — the pre-refactor path: instantiate the template text per
  instance, parse it, validate it, translate it;
* **prepared** — parse the ``$``-parameterized template once
  (:class:`repro.ql.PreparedQuery`), then ``bind`` each instance:
  structural label substitution on the cached template plan, zero
  re-parsing (asserted via the pipeline compile counters).

Two measurements per N:

* *frontend* — text → logical plan vs bind → logical plan.  This is
  the work prepared queries amortize, and where the ratio shows.
* *register* — the same N instances attached to one engine session.
  Each instance uses distinct labels, so both paths compile the same
  physical operators; the frontend saving is diluted by (identical)
  operator compilation — the remaining gap is what a serving tier
  saves per registration.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import register_section
from repro import ql
from repro.algebra.translate import sgq_to_sga
from repro.core.windows import HOUR, SlidingWindow
from repro.engine.session import StreamingGraphEngine
from repro.query.sgq import SGQ
from repro.workloads import QUERIES

WINDOW = SlidingWindow(8 * HOUR, HOUR)
TEMPLATE = QUERIES["Q4"].datalog_template
N_INSTANCES = (4, 16, 64)
ROUNDS = 5

_rows: list[dict] = []


def _instance_labels(i: int) -> dict[str, str]:
    return {"a": f"knows_{i}", "b": f"likes_{i}", "c": f"creator_{i}"}


# -- frontend only: text → plan vs bind → plan -------------------------
def _frontend_text(n: int) -> None:
    for i in range(n):
        source = QUERIES["Q4"].datalog(_instance_labels(i))
        sgq_to_sga(SGQ.from_text(source, WINDOW))


def _frontend_prepared(n: int) -> None:
    prepared = ql.prepare(TEMPLATE, window=WINDOW)
    for i in range(n):
        prepared.bind(**_instance_labels(i)).plan()


# -- end to end: N registrations on one session ------------------------
def _register_text(n: int) -> None:
    engine = StreamingGraphEngine()
    for i in range(n):
        source = QUERIES["Q4"].datalog(_instance_labels(i))
        engine.register(SGQ.from_text(source, WINDOW), name=f"q{i}")


def _register_prepared(n: int) -> None:
    engine = StreamingGraphEngine()
    prepared = ql.prepare(TEMPLATE, window=WINDOW)
    for i in range(n):
        engine.register(prepared.bind(**_instance_labels(i)), name=f"q{i}")


def _best_of(fn, n: int) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn(n)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n", N_INSTANCES)
def test_prepared_reuse_amortization(benchmark, n):
    # Warm once outside the measurement so interning/caches are steady.
    _frontend_text(2)
    _frontend_prepared(2)

    frontend_text = _best_of(_frontend_text, n)
    register_text = _best_of(_register_text, n)
    register_prepared = _best_of(_register_prepared, n)

    ql.reset_counters()
    benchmark.pedantic(_frontend_prepared, args=(n,), iterations=1, rounds=1)
    # The compile-once contract, observed during the measured run:
    # one template parse regardless of n, and no parse per bind.
    assert ql.COUNTERS.parses == 1
    assert ql.COUNTERS.binds == n
    frontend_prepared = _best_of(_frontend_prepared, n)

    _rows.append(
        {
            "instances": n,
            "frontend text (us/inst)": round(frontend_text / n * 1e6, 1),
            "frontend bind (us/inst)": round(frontend_prepared / n * 1e6, 1),
            "frontend amortization": f"{frontend_text / frontend_prepared:.1f}x",
            "register text (us/inst)": round(register_text / n * 1e6, 1),
            "register bind (us/inst)": round(register_prepared / n * 1e6, 1),
            "register amortization": f"{register_text / register_prepared:.2f}x",
        }
    )


def teardown_module(module):
    register_section(
        "== Prepared-query reuse: N Q4 instances, bind vs text compile ==",
        sorted(_rows, key=lambda r: r["instances"]),
    )
