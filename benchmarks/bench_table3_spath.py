"""Table 3: impact of S-PATH vs the default ([57]) PATH implementation.

Paper shape: S-PATH helps most on the cyclic SO graph (many alternative
paths, so the direct approach's skipped re-derivations matter); effects
on SNB are small because replyOf is a forest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.workloads import QUERIES, labels_for

ALL = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
_rows: list[dict] = []


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("query_name", ALL)
@pytest.mark.parametrize("impl", ["negative", "spath"])
def test_path_impl(benchmark, streams, dataset, query_name, impl):
    stream = streams[dataset]
    window = BENCH_SCALE.sliding_window()
    plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
    result = benchmark.pedantic(
        run_sga_bench, args=(plan, stream), kwargs={"path_impl": impl},
        iterations=1, rounds=1,
    )
    _rows.append(result.row(dataset=dataset, query=query_name))


def teardown_module(module):
    if not _rows:
        return
    # Pair up the two implementations per (dataset, query) and compute the
    # throughput improvement the paper reports.
    by_key: dict[tuple, dict[str, dict]] = {}
    for row in _rows:
        key = (row["dataset"], row["query"])
        by_key.setdefault(key, {})[row["system"]] = row
    table = []
    for (dataset, query), pair in sorted(by_key.items()):
        default = pair.get("SGA[negative]")
        spath = pair.get("SGA[spath]")
        if not default or not spath:
            continue
        baseline = default["throughput (edges/s)"]
        improvement = (
            (spath["throughput (edges/s)"] - baseline) / baseline * 100.0
            if baseline
            else 0.0
        )
        table.append(
            {
                "dataset": dataset,
                "query": query,
                "default tput": baseline,
                "S-PATH tput": spath["throughput (edges/s)"],
                "improvement %": round(improvement, 1),
                "default p99": default["p99 latency (s)"],
                "S-PATH p99": spath["p99 latency (s)"],
            }
        )
    from benchmarks.conftest import register_section

    register_section("== Table 3: S-PATH vs default PATH ==", table)
