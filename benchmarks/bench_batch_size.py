"""Batch-size sweep: the crossover of batched delta execution.

Both engines are driven by the shared :class:`repro.core.batch.BatchScheduler`,
so ``batch_size`` means the same thing for each: how many arrivals are
applied per flush (``batch_size=1`` is honest tuple-at-a-time scheduling;
``None`` lets DD batch one whole epoch per slide, its native semantics).

Setup: the Table 2 workload — the SNB stream generator and the Table 2
queries Q1 (recursive closure) and Q5 (subgraph pattern) — at a
paper-like arrival rate (many edges per slide; the real streams carry
hours of traffic per slide, which is what gives batching something to
amortize).  SNB is the dataset where the paper finds the two systems
competitive (Table 2), i.e. where *driver* overhead — what this sweep
isolates — is visible; on the cyclic SO stream the recursive closure
work dominates both systems and the curves flatten (run the SO sweep via
``table2_rows``-style helpers if you want to see that).

Expected shape:

* DD throughput *grows* with the batch size (epoch batching, Figure 11) —
  tuple-at-a-time DD pays one full rule-DAG propagation per edge;
* SGA grows more modestly (its operators are incremental per tuple —
  Figure 10b's flatness — but batching amortizes per-hop dispatch);
* the aggregate throughput over the workload at the best swept batch
  size exceeds 1.5× the ``batch_size=1`` aggregate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_section
from repro.bench.harness import run_dd_bench, run_sga_bench
from repro.core.windows import HOUR, SlidingWindow
from repro.datasets import snb_stream
from repro.query.parser import parse_rq
from repro.workloads import QUERIES, labels_for

QUERIES_SWEPT = ("Q1", "Q5")
#: Swept for both systems; the aggregate compares these directly.
BATCH_SIZES = (1, 16, 64, 256)
#: DD is additionally measured at ``None`` — its native whole-epoch
#: batching (one propagation per slide) — reported as ``epoch`` in the
#: detail table.  (For SGA, ``None`` would select per-tuple execution,
#: a different configuration, so it is not part of the sweep.)
DD_BATCH_SIZES = BATCH_SIZES + (None,)
WINDOW = SlidingWindow(8 * HOUR, HOUR)

_rows: list[dict] = []


@pytest.fixture(scope="module")
def dense_snb():
    """SNB stream at a paper-like rate: ~30 edges per one-hour slide."""
    return snb_stream(n_edges=6000, n_persons=150, seed=0, mean_gap=2)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("query_name", QUERIES_SWEPT)
def test_sga_batch_size(benchmark, dense_snb, query_name, batch_size):
    plan = QUERIES[query_name].plan(labels_for(query_name, "snb"), WINDOW)
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, dense_snb),
        kwargs={"path_impl": "negative", "batch_size": batch_size},
        iterations=1,
        rounds=1,
    )
    _rows.append(result.row(query=query_name, batch_size=batch_size))


@pytest.mark.parametrize("batch_size", DD_BATCH_SIZES)
@pytest.mark.parametrize("query_name", QUERIES_SWEPT)
def test_dd_batch_size(benchmark, dense_snb, query_name, batch_size):
    program = parse_rq(QUERIES[query_name].datalog(labels_for(query_name, "snb")))
    result = benchmark.pedantic(
        run_dd_bench,
        args=(program, dense_snb, WINDOW),
        kwargs={"batch_size": batch_size},
        iterations=1,
        rounds=1,
    )
    _rows.append(
        result.row(query=query_name, batch_size=batch_size or "epoch")
    )


def _aggregate_by_batch_size(rows: list[dict]) -> list[dict]:
    """Aggregate throughput (total edges / total seconds) per batch size.

    Only the sizes swept for *both* systems are aggregated; DD's extra
    ``epoch`` configuration stays in the detail table.
    """
    totals: dict[object, list[float]] = {}
    for row in rows:
        if row["batch_size"] not in BATCH_SIZES:
            continue
        edges = row["edges"]
        throughput = row["throughput (edges/s)"]
        if not throughput:
            continue
        seconds = edges / throughput
        acc = totals.setdefault(row["batch_size"], [0.0, 0.0])
        acc[0] += edges
        acc[1] += seconds
    out = []
    base = None
    for batch_size in BATCH_SIZES:
        if batch_size not in totals:
            continue
        edges, seconds = totals[batch_size]
        agg = edges / seconds if seconds else 0.0
        if batch_size == 1:
            base = agg
        out.append(
            {
                "batch_size": batch_size,
                "aggregate throughput (edges/s)": round(agg, 1),
                "speedup vs batch_size=1": (
                    round(agg / base, 2) if base else ""
                ),
            }
        )
    return out


def teardown_module(module):
    ordered = sorted(
        _rows, key=lambda r: (r["system"], r["query"], str(r["batch_size"]))
    )
    register_section("== Batch-size sweep: SGA and DD, SNB, Q1/Q5 ==", ordered)
    register_section(
        "== Batch-size sweep: aggregate over the workload ==",
        _aggregate_by_batch_size(_rows),
    )
