"""Benchmark suite: one module per table/figure of the paper's evaluation.

This package marker makes pytest import ``conftest.py`` as
``benchmarks.conftest`` — the same module object the bench modules
import — so the paper-style report sections registered by the modules
are visible to the terminal-summary hook.
"""
