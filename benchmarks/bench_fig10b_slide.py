"""Figure 10b: SGA sensitivity to the slide interval on SO.

Paper shape: throughput and latency stay roughly flat across slide
intervals — SGA's operators are tuple-at-a-time and do not batch.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.core.windows import HOUR, SlidingWindow
from repro.workloads import QUERIES, labels_for

# Keep beta well below the window (8h here): larger slides shrink the
# average effective window (Definition 16) and change the workload.
SLIDES = (HOUR // 4, HOUR // 2, HOUR)
QUERY_MIX = ("Q1", "Q5", "Q7")
_rows: list[dict] = []


@pytest.mark.parametrize("slide", SLIDES)
@pytest.mark.parametrize("query_name", QUERY_MIX)
def test_slide(benchmark, so_stream, slide, query_name):
    window = SlidingWindow(BENCH_SCALE.window, slide)
    plan = QUERIES[query_name].plan(labels_for(query_name, "so"), window)
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, so_stream),
        kwargs={"path_impl": "negative"},
        iterations=1,
        rounds=1,
    )
    _rows.append(result.row(query=query_name, slide_ticks=slide))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["query"], r["slide_ticks"]))
    register_section("== Figure 10b: slide sweep (SO, SGA) ==", ordered)
