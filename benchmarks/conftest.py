"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Section 7).  Streams are generated once per session and
shared across modules; scales keep the full suite in the minutes range.
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale, _stream
from repro.bench.reporting import format_rows
from repro.core.windows import HOUR

#: Paper-style tables registered by the bench modules, printed in the
#: terminal summary (teardown prints are swallowed by pytest capture).
REPORT_SECTIONS: list[tuple[str, list[dict]]] = []


def register_section(title: str, rows: list[dict]) -> None:
    if rows:
        REPORT_SECTIONS.append((title, list(rows)))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORT_SECTIONS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper-style result tables")
    for title, rows in REPORT_SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(format_rows(rows, title=title))

#: The scale used by every benchmark module (kept small so that the whole
#: suite — 8 modules × many query/system combinations — stays fast).
BENCH_SCALE = Scale(n_edges=2000, n_vertices=150, window=8 * HOUR, slide=HOUR)


@pytest.fixture(scope="session")
def so_stream():
    return _stream("so", BENCH_SCALE)


@pytest.fixture(scope="session")
def snb_stream():
    return _stream("snb", BENCH_SCALE)


@pytest.fixture(scope="session")
def streams(so_stream, snb_stream):
    return {"so": so_stream, "snb": snb_stream}
