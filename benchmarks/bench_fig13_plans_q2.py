"""Figure 13: the Q2 plan space — canonical SGA vs the direct PATH plan.

Canonical (from Algorithm SGQParser): ``a UNION PATTERN(a, P[b+])``.
P1 (via the PATH transformation rules): one PATH evaluating ``a b*``.

Paper shape: up to ~50% throughput difference between the two.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.workloads import QUERIES, labels_for, rpq_direct_plan

_rows: list[dict] = []


def _plans(dataset):
    window = BENCH_SCALE.sliding_window()
    labels = labels_for("Q2", dataset)
    return {
        "SGA": QUERIES["Q2"].plan(labels, window),
        "P1": rpq_direct_plan("Q2", labels, window),
    }


@pytest.mark.parametrize("dataset", ["so", "snb"])
@pytest.mark.parametrize("plan_name", ["SGA", "P1"])
def test_q2_plan(benchmark, streams, dataset, plan_name):
    plan = _plans(dataset)[plan_name]
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, streams[dataset]),
        kwargs={"path_impl": "negative"},
        iterations=1,
        rounds=1,
    )
    _rows.append(result.row(dataset=dataset, plan=plan_name, query="Q2"))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["dataset"], r["plan"]))
    register_section("== Figure 13: Q2 plan space ==", ordered)
