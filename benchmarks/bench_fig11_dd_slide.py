"""Figure 11: DD baseline sensitivity to the slide interval on SO.

Paper shape: unlike SGA (Figure 10b), DD's throughput *increases* with
the slide interval — one epoch per slide amortizes fixed per-epoch costs
over larger batches — while the per-epoch tail latency grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_dd_bench
from repro.core.windows import HOUR, SlidingWindow
from repro.query.parser import parse_rq
from repro.workloads import QUERIES, labels_for

# Keep beta well below the window (8h here): larger slides shrink the
# average effective window (Definition 16) and change the workload.
SLIDES = (HOUR // 4, HOUR // 2, HOUR)
QUERY_MIX = ("Q1", "Q5", "Q7")
_rows: list[dict] = []


@pytest.mark.parametrize("slide", SLIDES)
@pytest.mark.parametrize("query_name", QUERY_MIX)
def test_dd_slide(benchmark, so_stream, slide, query_name):
    window = SlidingWindow(BENCH_SCALE.window, slide)
    labels = labels_for(query_name, "so")
    program = parse_rq(QUERIES[query_name].datalog(labels))
    result = benchmark.pedantic(
        run_dd_bench, args=(program, so_stream, window), iterations=1, rounds=1
    )
    _rows.append(result.row(query=query_name, slide_ticks=slide))


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["query"], r["slide_ticks"]))
    register_section("== Figure 11: slide sweep (SO, DD) ==", ordered)
