"""Figure 10a: SGA sensitivity to the window size on SO.

Paper shape: throughput decreases and tail latency increases as the
window grows (more sgts per window ⇒ more operator state).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench.harness import run_sga_bench
from repro.core.windows import SlidingWindow
from repro.workloads import QUERIES, labels_for

#: Window multipliers with the paper's 1:5 span (10d..50d).
MULTIPLIERS = (1, 2, 3, 4, 5)
#: A representative query mix (running all seven per window would take
#: minutes; Q1 recursive, Q5 non-recursive pattern, Q7 combined).
QUERY_MIX = ("Q1", "Q5", "Q7")
_rows: list[dict] = []


@pytest.mark.parametrize("multiplier", MULTIPLIERS)
@pytest.mark.parametrize("query_name", QUERY_MIX)
def test_window_size(benchmark, so_stream, multiplier, query_name):
    window = SlidingWindow(BENCH_SCALE.window * multiplier, BENCH_SCALE.slide)
    plan = QUERIES[query_name].plan(labels_for(query_name, "so"), window)
    result = benchmark.pedantic(
        run_sga_bench,
        args=(plan, so_stream),
        kwargs={"path_impl": "negative"},
        iterations=1,
        rounds=1,
    )
    _rows.append(
        result.row(query=query_name, window_ticks=window.size)
    )


def teardown_module(module):
    from benchmarks.conftest import register_section

    ordered = sorted(_rows, key=lambda r: (r["query"], r["window_ticks"]))
    register_section("== Figure 10a: window-size sweep (SO, SGA) ==", ordered)
