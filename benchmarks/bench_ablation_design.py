"""Ablations of this implementation's own design choices.

Not a paper figure — these benches justify the engineering decisions
DESIGN.md calls out, on the query where each matters most:

* **intermediate coalescing** (Section 5.1 set semantics as a physical
  stage): Q7 routes a derived relation (RL) into a second stateful PATH;
  without coalescing, every witness of an RL pair is traversed again.
* **path materialization**: Q1 produces many long paths; materializing
  the hop sequence on every emission has a measurable cost, which is why
  the engine lets path-indifferent consumers opt out.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.engine import EngineConfig, StreamingGraphEngine
from repro.workloads import QUERIES, labels_for

_rows: list[dict] = []


def _run(plan, stream, **options):
    engine = StreamingGraphEngine(
        EngineConfig(path_impl="negative", **options)
    )
    engine.register(plan, name="ablation")
    return engine.push_many(stream)


@pytest.mark.parametrize("coalesce", [True, False])
def test_intermediate_coalescing_q7(benchmark, so_stream, coalesce):
    window = BENCH_SCALE.sliding_window()
    plan = QUERIES["Q7"].plan(labels_for("Q7", "so"), window)
    stats = benchmark.pedantic(
        _run,
        args=(plan, so_stream),
        kwargs={"materialize_paths": False, "coalesce_intermediate": coalesce},
        iterations=1,
        rounds=1,
    )
    _rows.append(
        {
            "ablation": "intermediate coalescing",
            "setting": "on" if coalesce else "off",
            "throughput (edges/s)": round(stats.throughput, 1),
            "p99 latency (s)": round(stats.tail_latency(), 5),
        }
    )


@pytest.mark.parametrize("materialize", [True, False])
def test_path_materialization_q1(benchmark, so_stream, materialize):
    window = BENCH_SCALE.sliding_window()
    plan = QUERIES["Q1"].plan(labels_for("Q1", "so"), window)
    stats = benchmark.pedantic(
        _run,
        args=(plan, so_stream),
        kwargs={"materialize_paths": materialize},
        iterations=1,
        rounds=1,
    )
    _rows.append(
        {
            "ablation": "path materialization",
            "setting": "on" if materialize else "off",
            "throughput (edges/s)": round(stats.throughput, 1),
            "p99 latency (s)": round(stats.tail_latency(), 5),
        }
    )


def teardown_module(module):
    from benchmarks.conftest import register_section

    register_section("== Design ablations ==", _rows)
