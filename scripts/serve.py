#!/usr/bin/env python
"""Launch the multi-tenant streaming-query service.

Runs :class:`repro.serve.app.GraphStreamServer` on the stdlib asyncio
loop — no dependencies beyond the engine itself.  SIGTERM and SIGINT
trigger a graceful drain: the listener closes, queued ingest finishes,
every engine session is closed, and subscribers receive their full
backlog plus an end-of-stream notice before the process exits 0.

Usage::

    python scripts/serve.py                      # 127.0.0.1:8765
    python scripts/serve.py --port 0             # pick a free port
    python scripts/serve.py --shards 2 --execution columnar
    python scripts/serve.py --ingest-rate 50000  # quota: edges/second
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.engine.session import EngineConfig  # noqa: E402
from repro.serve.app import GraphStreamServer  # noqa: E402
from repro.serve.subscriptions import BACKPRESSURE_POLICIES  # noqa: E402
from repro.serve.tenants import ServerLimits  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    limits = parser.add_argument_group("admission limits (per tenant)")
    limits.add_argument("--max-tenants", type=int, default=64)
    limits.add_argument("--max-queries", type=int, default=64)
    limits.add_argument("--max-subscribers", type=int, default=1024)
    limits.add_argument(
        "--ingest-rate",
        type=float,
        default=None,
        help="ingest quota in edges/second (default: unmetered)",
    )
    limits.add_argument("--ingest-burst", type=int, default=10_000)
    limits.add_argument("--queue-maxsize", type=int, default=1024)
    limits.add_argument(
        "--policy",
        default="block",
        choices=BACKPRESSURE_POLICIES,
        help="default subscriber backpressure policy",
    )
    engine = parser.add_argument_group("per-tenant engine configuration")
    engine.add_argument("--backend", default="sga", choices=("sga", "dd"))
    engine.add_argument("--shards", type=int, default=1)
    engine.add_argument(
        "--execution", default="auto", choices=("auto", "columnar", "vector")
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    limits = ServerLimits(
        max_tenants=args.max_tenants,
        max_queries_per_tenant=args.max_queries,
        max_subscribers_per_tenant=args.max_subscribers,
        ingest_rate=args.ingest_rate,
        ingest_burst=args.ingest_burst,
        queue_maxsize=args.queue_maxsize,
        default_policy=args.policy,
    )
    config = EngineConfig(
        backend=args.backend, shards=args.shards, execution=args.execution
    )
    server = GraphStreamServer(
        host=args.host, port=args.port, limits=limits, engine_config=config
    )
    await server.start()
    print(f"serving on http://{args.host}:{server.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining...", flush=True)
    await server.shutdown()
    print("drained; bye", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(run(args))


if __name__ == "__main__":
    raise SystemExit(main())
