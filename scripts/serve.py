#!/usr/bin/env python
"""Launch the multi-tenant streaming-query service.

Runs :class:`repro.serve.app.GraphStreamServer` on the stdlib asyncio
loop — no dependencies beyond the engine itself.  SIGTERM and SIGINT
trigger a graceful drain: the listener closes, queued ingest finishes,
every engine session is closed, and subscribers receive their full
backlog plus an end-of-stream notice before the process exits 0.

Usage::

    python scripts/serve.py                      # 127.0.0.1:8765
    python scripts/serve.py --port 0             # pick a free port
    python scripts/serve.py --shards 2 --execution columnar
    python scripts/serve.py --ingest-rate 50000  # quota: edges/second

Durability: ``--checkpoint-dir DIR`` snapshots every tenant into one
atomic checkpoint during the SIGTERM drain; relaunching with
``--restore-from DIR`` rebuilds every tenant — queries, operator state,
watermarks and per-query sequence numbers — so subscribers reconnect
with their last-seen seq and resume without gaps::

    python scripts/serve.py --checkpoint-dir /var/lib/sgs   # then SIGTERM
    python scripts/serve.py --restore-from /var/lib/sgs --checkpoint-dir /var/lib/sgs

Fault tolerance: add ``--checkpoint-every-slides N`` and/or
``--checkpoint-every-seconds S`` to checkpoint *periodically* during
normal operation (not just at drain), so even a SIGKILLed server
restarts from a recent checkpoint; clients reconnect with
``?last_seq=N&ahead=wait`` to dedupe the replayed suffix.  The same
policy arms supervised auto-recovery on process-transport shards
(``--shards N`` with the process transport)::

    python scripts/serve.py --checkpoint-dir /var/lib/sgs \\
        --checkpoint-every-slides 4
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.checkpoint import DirectoryCheckpointStore  # noqa: E402
from repro.engine.session import EngineConfig  # noqa: E402
from repro.fault import CheckpointPolicy  # noqa: E402
from repro.serve.app import GraphStreamServer  # noqa: E402
from repro.serve.subscriptions import BACKPRESSURE_POLICIES  # noqa: E402
from repro.serve.tenants import ServerLimits, TenantManager  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    limits = parser.add_argument_group("admission limits (per tenant)")
    limits.add_argument("--max-tenants", type=int, default=64)
    limits.add_argument("--max-queries", type=int, default=64)
    limits.add_argument("--max-subscribers", type=int, default=1024)
    limits.add_argument(
        "--ingest-rate",
        type=float,
        default=None,
        help="ingest quota in edges/second (default: unmetered)",
    )
    limits.add_argument("--ingest-burst", type=int, default=10_000)
    limits.add_argument("--queue-maxsize", type=int, default=1024)
    limits.add_argument(
        "--policy",
        default="block",
        choices=BACKPRESSURE_POLICIES,
        help="default subscriber backpressure policy",
    )
    limits.add_argument(
        "--replay-buffer",
        type=int,
        default=1024,
        help="per-query resume ring size in events (0 disables resume)",
    )
    engine = parser.add_argument_group("per-tenant engine configuration")
    engine.add_argument("--backend", default="sga", choices=("sga", "dd"))
    engine.add_argument("--shards", type=int, default=1)
    engine.add_argument(
        "--execution", default="auto", choices=("auto", "columnar", "vector")
    )
    durability = parser.add_argument_group("durability")
    durability.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint every tenant here during the SIGTERM drain",
    )
    durability.add_argument(
        "--checkpoint-retain",
        type=int,
        default=3,
        help="checkpoints kept before the oldest is garbage-collected",
    )
    durability.add_argument(
        "--restore-from",
        default=None,
        metavar="DIR",
        help="restore all tenants from the latest checkpoint in DIR "
        "before serving (engine flags may change only shards)",
    )
    durability.add_argument(
        "--checkpoint-every-slides",
        type=int,
        default=None,
        metavar="N",
        help="take a periodic checkpoint every N watermark slides "
        "(requires --checkpoint-dir)",
    )
    durability.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        default=None,
        metavar="S",
        help="take a periodic checkpoint every S seconds of wall clock "
        "(requires --checkpoint-dir)",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    limits = ServerLimits(
        max_tenants=args.max_tenants,
        max_queries_per_tenant=args.max_queries,
        max_subscribers_per_tenant=args.max_subscribers,
        ingest_rate=args.ingest_rate,
        ingest_burst=args.ingest_burst,
        queue_maxsize=args.queue_maxsize,
        default_policy=args.policy,
        replay_buffer=args.replay_buffer,
    )
    policy = None
    if (
        args.checkpoint_every_slides is not None
        or args.checkpoint_every_seconds is not None
    ):
        if not args.checkpoint_dir:
            print(
                "error: --checkpoint-every-slides/--checkpoint-every-seconds "
                "require --checkpoint-dir",
                file=sys.stderr,
            )
            return 2
        policy = CheckpointPolicy(
            every_slides=args.checkpoint_every_slides,
            every_seconds=args.checkpoint_every_seconds,
        )
    config = EngineConfig(
        backend=args.backend,
        shards=args.shards,
        execution=args.execution,
        checkpoint_policy=policy,
    )
    checkpoint_store = None
    if args.checkpoint_dir:
        checkpoint_store = DirectoryCheckpointStore(
            args.checkpoint_dir, retain=args.checkpoint_retain
        )
    manager = None
    if args.restore_from:
        restore_store = DirectoryCheckpointStore(args.restore_from)
        manager = TenantManager.restore(
            restore_store,
            limits=limits,
            engine_config=config,
            checkpoint_store=checkpoint_store,
            checkpoint_policy=policy,
        )
        print(
            f"restored {len(manager.tenants)} tenant(s) from "
            f"{args.restore_from}",
            flush=True,
        )
    elif checkpoint_store is not None and policy is not None:
        manager = TenantManager(
            limits,
            config,
            checkpoint_store=checkpoint_store,
            checkpoint_policy=policy,
        )
    server = GraphStreamServer(
        host=args.host,
        port=args.port,
        limits=limits,
        engine_config=config,
        manager=manager,
    )
    await server.start()
    print(f"serving on http://{args.host}:{server.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining...", flush=True)
    checkpoint_id = await server.shutdown(checkpoint_store)
    if checkpoint_id is not None:
        print(
            f"checkpointed to {args.checkpoint_dir}/{checkpoint_id}",
            flush=True,
        )
    print("drained; bye", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(run(args))


if __name__ == "__main__":
    raise SystemExit(main())
