#!/usr/bin/env python
"""Load-test the serving layer and check result parity, stdlib-only.

Drives a running ``scripts/serve.py`` instance with many tenants, each
registering the paper's notification query plus a high-fanout filter
query, attaching hundreds of concurrent subscribers (an even mix of
WebSocket and SSE), ingesting a randomized edge stream over HTTP, and
then verifying the *parity invariant*: every subscriber of a query
receives byte-for-byte the same numbered JSON event stream that an
in-process :class:`~repro.engine.session.StreamingGraphEngine` with the
same configuration produces for the same edges.

Two shutdown modes close the streams:

* default — the client ``DELETE``\\ s each query; subscribers receive
  their backlog and a ``query unregistered`` end-of-stream notice;
* ``--server-pid PID`` — the client sends SIGTERM mid-lingering and
  asserts the graceful drain: every subscriber still receives its full
  backlog plus a ``server draining`` notice, then a clean EOF.

Exit status is 0 only if every request succeeded, every subscriber's
stream matched the reference, and every stream ended cleanly.

Usage::

    python scripts/serve.py --port 8765 &
    python scripts/load_client.py --port 8765 --tenants 4 --subscribers 200
    python scripts/load_client.py --port 8765 --server-pid $! --edges 200

Durability drill (checkpoint on SIGTERM, restore, resume)::

    python scripts/serve.py --port 8765 --checkpoint-dir /tmp/ck &
    python scripts/load_client.py --port 8765 --server-pid $! \\
        --state-file /tmp/ck/state.json          # drains into a checkpoint
    python scripts/serve.py --port 8765 --restore-from /tmp/ck &
    python scripts/load_client.py --port 8765 --phase resume \\
        --state-file /tmp/ck/state.json          # seqs must continue

Crash drill (periodic checkpoints, SIGKILL — no drain — restore,
reconnect with dedupe)::

    python scripts/serve.py --port 8765 --checkpoint-dir /tmp/ck \\
        --checkpoint-every-slides 4 &
    python scripts/load_client.py --port 8765 --phase crash \\
        --server-pid $! --state-file /tmp/ck/state.json
    python scripts/serve.py --port 8765 --restore-from /tmp/ck \\
        --checkpoint-dir /tmp/ck --checkpoint-every-slides 4 &
    python scripts/load_client.py --port 8765 --phase crash-resume \\
        --state-file /tmp/ck/state.json  # spliced stream: no gaps/dups

The crash phase waits for a periodic checkpoint to land, then SIGKILLs
the server mid-stream; because that checkpoint may trail what the
subscribers already received, the resume phase reconnects with
``?last_seq=R&ahead=wait`` so the re-driven suffix is deduplicated, and
asserts the spliced pre-crash + post-restore stream is byte-identical
to an uninterrupted run with continuous sequence numbers.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import json
import os
import random
import signal
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.tuples import SGE  # noqa: E402
from repro.engine.session import (  # noqa: E402
    EngineConfig,
    StreamingGraphEngine,
)
from repro.ql.query import Query  # noqa: E402
from repro.serve.protocol import dumps, encode_event  # noqa: E402

PAPER_QUERY = (
    "RL(u1,u2) <- likes(u1,m1), follows+(u1,u2) as FP, posts(u2,m1). "
    "Notify(u,m) <- RL+(u,v) as RLP, posts(v,m). "
    "Answer(u,m) <- Notify(u,m)."
)
#: high-fanout companion: one result event per matching edge
LIKES_QUERY = "Answer(u,m) <- likes(u,m)."
LABELS = ("likes", "follows", "posts")
WINDOW, SLIDE = 24, 1

QUERIES = {
    "paper": PAPER_QUERY,
    "likes": LIKES_QUERY,
}


def make_stream(
    seed: int, n_edges: int, n_vertices: int, start_t: int = 0
) -> list[SGE]:
    """The tests' randomized timestamp-ordered stream, reproduced here
    so client and reference agree by construction.  ``start_t`` lets the
    resume phase generate a suffix that continues the run phase's
    timeline."""
    rng = random.Random(seed)
    t = start_t
    edges = []
    for _ in range(n_edges):
        t += rng.randint(0, 2)
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        edges.append(SGE(u, v, rng.choice(LABELS), t))
    return edges


# -- minimal HTTP/WS/SSE client side ---------------------------------------


async def http_call(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    data = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(data)}\r\n\r\n"
    )
    writer.write(head.encode() + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head_bytes.split(b" ")[1])
    return status, json.loads(payload) if payload else None


class Subscriber:
    """One streaming subscription: collects events until end-of-stream."""

    def __init__(
        self, host, port, tenant, query, transport, last_seq=None, ahead=None
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.query = query
        self.transport = transport  # "ws" | "sse"
        #: resume position: WS sends ``?last_seq=``, SSE sends the
        #: standard ``Last-Event-ID`` header (exercising both paths) —
        #: unless ``ahead`` is set, which forces query params on both
        self.last_seq = last_seq
        #: crash-resume dedupe mode: ``"wait"`` skips replayed events
        #: the client already saw (sent as ``&ahead=wait``)
        self.ahead = ahead
        self.events: list[str] = []
        #: ``id:`` lines observed on SSE frames (must mirror the seqs)
        self.sse_ids: list[int] = []
        self.end_reason: str | None = None
        self.clean_eof = False
        self.ready = asyncio.Event()

    async def run(self) -> None:
        if self.transport == "ws":
            await self._run_ws()
        else:
            await self._run_sse()

    @property
    def _path(self) -> str:
        return f"/tenants/{self.tenant}/queries/{self.query}/subscribe"

    async def _run_ws(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode()
        path = self._path
        if self.last_seq is not None:
            path += f"?last_seq={self.last_seq}"
            if self.ahead:
                path += f"&ahead={self.ahead}"
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        if b" 101 " not in head.split(b"\r\n")[0] + b" ":
            raise RuntimeError(f"websocket upgrade refused: {head[:120]!r}")
        first = True
        while True:
            frame = await self._ws_frame(reader)
            if frame is None:
                break
            opcode, payload = frame
            if opcode == 0x8:  # close
                self.end_reason = payload[2:].decode() or "closed"
                self.clean_eof = True
                break
            if opcode != 0x1:
                continue
            if first:
                first = False
                self.ready.set()
                continue
            self.events.append(payload.decode())
        writer.close()

    @staticmethod
    async def _ws_frame(reader):
        try:
            head = await reader.readexactly(2)
            n = head[1] & 0x7F
            if n == 126:
                n = int.from_bytes(await reader.readexactly(2), "big")
            elif n == 127:
                n = int.from_bytes(await reader.readexactly(8), "big")
            payload = await reader.readexactly(n) if n else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return head[0] & 0x0F, payload

    async def _run_sse(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        path = self._path
        if self.ahead and self.last_seq is not None:
            path += f"?last_seq={self.last_seq}&ahead={self.ahead}"
        head = f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n"
        if self.last_seq is not None and not self.ahead:
            head += f"Last-Event-ID: {self.last_seq}\r\n"
        writer.write((head + "\r\n").encode())
        await writer.drain()
        buf = b""
        while True:
            try:
                chunk = await reader.read(1 << 16)
            except ConnectionError:
                break  # SIGKILLed server: abrupt reset, not clean EOF
            if not chunk:
                break
            buf += chunk
            while b"\n\n" in buf:
                frame, _, buf = buf.partition(b"\n\n")
                event, data, event_id = None, None, None
                for line in frame.decode().splitlines():
                    if line.startswith("event: "):
                        event = line[len("event: ") :]
                    elif line.startswith("data: "):
                        data = line[len("data: ") :]
                    elif line.startswith("id: "):
                        event_id = int(line[len("id: ") :])
                if event == "ready":
                    self.ready.set()
                elif event == "end":
                    self.end_reason = json.loads(data)["reason"]
                    self.clean_eof = True
                    writer.close()
                    return
                elif data is not None:
                    self.events.append(data)
                    if event_id is not None:
                        self.sse_ids.append(event_id)
        writer.close()


# -- the reference run -----------------------------------------------------


def reference_streams(config: EngineConfig, edges: list[SGE]) -> dict:
    """What every subscriber must see: one in-process engine, same
    config, same queries, same edges, events encoded identically."""
    engine = StreamingGraphEngine(config)
    collected: dict[str, list[str]] = {}

    def collector(qid: str):
        seq = [0]
        bucket = collected.setdefault(qid, [])

        def cb(event):
            seq[0] += 1
            bucket.append(dumps(encode_event(seq[0], event)))

        return cb

    for qid, text in QUERIES.items():
        engine.register(
            Query.datalog(text, window=WINDOW, slide=SLIDE),
            name=qid,
            on_result=collector(qid),
        )
    engine.push_many(edges)
    engine.close()
    return collected


# -- the drive -------------------------------------------------------------


async def drive(args: argparse.Namespace) -> int:
    host, port = args.host, args.port
    config = EngineConfig(
        backend=args.backend, shards=args.shards, execution=args.execution
    )
    tenants = [f"tenant{i}" for i in range(args.tenants)]
    failures: list[str] = []

    # register both queries on every tenant (block policy: parity needs
    # every subscriber to see every event)
    for tenant in tenants:
        for qid, text in QUERIES.items():
            status, body = await http_call(
                host,
                port,
                "POST",
                f"/tenants/{tenant}/queries",
                {
                    "query": text,
                    "window": WINDOW,
                    "slide": SLIDE,
                    "name": qid,
                    "policy": "block",
                },
            )
            if status != 201:
                failures.append(f"register {tenant}/{qid}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1

    # attach subscribers (round-robin tenants/queries, alternating WS/SSE)
    subscribers: list[Subscriber] = []
    qids = list(QUERIES)
    for i in range(args.subscribers):
        subscribers.append(
            Subscriber(
                host,
                port,
                tenants[i % len(tenants)],
                qids[(i // len(tenants)) % len(qids)],
                "ws" if i % 2 == 0 else "sse",
            )
        )
    tasks = [asyncio.ensure_future(s.run()) for s in subscribers]
    await asyncio.wait_for(
        asyncio.gather(*(s.ready.wait() for s in subscribers)), timeout=60
    )
    n_ws = sum(1 for s in subscribers if s.transport == "ws")
    print(
        f"{len(subscribers)} subscribers ready "
        f"({n_ws} ws, {len(subscribers) - n_ws} sse) "
        f"across {len(tenants)} tenants"
    )

    # ingest the same stream into every tenant, in batches
    edges = make_stream(args.seed, args.edges, args.vertices)
    batch_size = args.batch
    for start in range(0, len(edges), batch_size):
        batch = [
            {"src": e.src, "trg": e.trg, "label": e.label, "t": e.t}
            for e in edges[start : start + batch_size]
        ]
        results = await asyncio.gather(
            *(
                http_call(
                    host, port, "POST", f"/tenants/{t}/ingest", {"edges": batch}
                )
                for t in tenants
            )
        )
        for tenant, (status, body) in zip(tenants, results):
            if status != 200:
                failures.append(f"ingest {tenant}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(f"ingested {len(edges)} edges into each of {len(tenants)} tenants")

    status, metrics = await http_call(host, port, "GET", "/metrics")
    if status == 200:
        total = sum(
            t["ingested_total"] for t in metrics["tenants"].values()
        )
        print(f"metrics: {total} edges ingested server-side")

    # end the streams: SIGTERM drain or per-query unregister
    if args.server_pid:
        print(f"sending SIGTERM to pid {args.server_pid} (graceful drain)")
        os.kill(args.server_pid, signal.SIGTERM)
        expected_end = "server draining"
    else:
        for tenant in tenants:
            for qid in QUERIES:
                status, body = await http_call(
                    host, port, "DELETE", f"/tenants/{tenant}/queries/{qid}"
                )
                if status != 200:
                    failures.append(
                        f"unregister {tenant}/{qid}: {status} {body}"
                    )
        expected_end = "query unregistered"
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)

    # parity: every subscriber matches the in-process reference
    reference = reference_streams(config, edges)
    matched = 0
    for sub in subscribers:
        want = reference[sub.query]
        tag = f"{sub.tenant}/{sub.query}[{sub.transport}]"
        if not sub.clean_eof:
            failures.append(f"{tag}: no clean end-of-stream")
        elif sub.end_reason != expected_end:
            failures.append(
                f"{tag}: end reason {sub.end_reason!r} != {expected_end!r}"
            )
        if sub.events != want:
            failures.append(
                f"{tag}: stream mismatch "
                f"({len(sub.events)} events vs {len(want)} expected)"
            )
        else:
            matched += 1
    for sub in subscribers:
        if sub.transport == "sse" and sub.sse_ids:
            seqs = [json.loads(e)["seq"] for e in sub.events]
            if sub.sse_ids != seqs:
                failures.append(
                    f"{sub.tenant}/{sub.query}[sse]: SSE id: lines "
                    "disagree with event seq numbers"
                )
    per_query = {q: len(events) for q, events in reference.items()}
    print(
        f"parity: {matched}/{len(subscribers)} subscriber streams identical "
        f"to the in-process reference {per_query}"
    )
    if failures:
        for failure in failures[:20]:
            print("FAIL:", failure)
        print(f"{len(failures)} failure(s)")
        return 1
    if args.state_file:
        state = {
            "seed": args.seed,
            "edges": args.edges,
            "vertices": args.vertices,
            "tenants": args.tenants,
            "last_t": max(e.t for e in edges) if edges else 0,
            "last_seqs": {q: len(events) for q, events in reference.items()},
        }
        Path(args.state_file).write_text(json.dumps(state))
        print(f"state saved to {args.state_file}")
    print("OK")
    return 0


async def drive_resume(args: argparse.Namespace) -> int:
    """Phase two of the durability drill: the server was checkpointed on
    SIGTERM and relaunched with ``--restore-from``.  Reconnect every
    subscription at its last-seen seq, ingest a stream *suffix*, and
    require (a) sequence numbers that continue exactly where the run
    phase stopped — no gaps, no restarts — and (b) byte parity with an
    uninterrupted in-process engine fed prefix + suffix."""
    host, port = args.host, args.port
    config = EngineConfig(
        backend=args.backend, shards=args.shards, execution=args.execution
    )
    state = json.loads(Path(args.state_file).read_text())
    tenants = [f"tenant{i}" for i in range(state["tenants"])]
    last_seqs = {q: int(n) for q, n in state["last_seqs"].items()}
    prefix = make_stream(state["seed"], state["edges"], state["vertices"])
    suffix = make_stream(
        state["seed"] + 1, args.edges, state["vertices"], start_t=state["last_t"]
    )
    failures: list[str] = []

    # the uninterrupted reference: prefix + suffix in one engine run
    reference = reference_streams(config, prefix + suffix)
    for qid, stop in last_seqs.items():
        if len(reference[qid]) < stop:
            print(
                f"FAIL: reference for {qid!r} has {len(reference[qid])} "
                f"events < recorded last seq {stop} (state file mismatch?)"
            )
            return 1

    # reconnect: per tenant x query one WS (?last_seq=) and one SSE
    # (Last-Event-ID), plus one SSE resuming a few events back to
    # exercise ring replay across the restart
    replay_back = args.replay_back
    subscribers: list[tuple[Subscriber, int]] = []
    for tenant in tenants:
        for qid in QUERIES:
            stop = last_seqs[qid]
            back = max(stop - replay_back, 0)
            subscribers.append(
                (Subscriber(host, port, tenant, qid, "ws", stop), stop)
            )
            subscribers.append(
                (Subscriber(host, port, tenant, qid, "sse", stop), stop)
            )
            subscribers.append(
                (Subscriber(host, port, tenant, qid, "sse", back), back)
            )
    tasks = [asyncio.ensure_future(s.run()) for s, _ in subscribers]
    await asyncio.wait_for(
        asyncio.gather(*(s.ready.wait() for s, _ in subscribers)), timeout=60
    )
    print(
        f"{len(subscribers)} subscriptions resumed across "
        f"{len(tenants)} tenants"
    )

    # ingest the suffix into every tenant
    for start in range(0, len(suffix), args.batch):
        batch = [
            {"src": e.src, "trg": e.trg, "label": e.label, "t": e.t}
            for e in suffix[start : start + args.batch]
        ]
        results = await asyncio.gather(
            *(
                http_call(
                    host, port, "POST", f"/tenants/{t}/ingest", {"edges": batch}
                )
                for t in tenants
            )
        )
        for tenant, (status, body) in zip(tenants, results):
            if status != 200:
                failures.append(f"ingest {tenant}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(f"ingested {len(suffix)} suffix edges into each tenant")

    for tenant in tenants:
        for qid in QUERIES:
            status, body = await http_call(
                host, port, "DELETE", f"/tenants/{tenant}/queries/{qid}"
            )
            if status != 200:
                failures.append(f"unregister {tenant}/{qid}: {status} {body}")
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)

    matched = 0
    for sub, resumed_at in subscribers:
        tag = (
            f"{sub.tenant}/{sub.query}[{sub.transport} from {resumed_at}]"
        )
        want = reference[sub.query][resumed_at:]
        if not sub.clean_eof:
            failures.append(f"{tag}: no clean end-of-stream")
        seqs = [json.loads(e)["seq"] for e in sub.events]
        expect_seqs = list(range(resumed_at + 1, resumed_at + 1 + len(want)))
        if seqs != expect_seqs:
            failures.append(
                f"{tag}: seq numbers not continuous "
                f"(got {seqs[:3]}..{seqs[-3:] if seqs else []}, "
                f"expected {resumed_at + 1}..{resumed_at + len(want)})"
            )
        elif sub.events != want:
            failures.append(
                f"{tag}: stream mismatch ({len(sub.events)} events vs "
                f"{len(want)} expected)"
            )
        else:
            matched += 1
    print(
        f"resume parity: {matched}/{len(subscribers)} resumed streams "
        "continuous and identical to the uninterrupted reference"
    )
    if failures:
        for failure in failures[:20]:
            print("FAIL:", failure)
        print(f"{len(failures)} failure(s)")
        return 1
    print("OK")
    return 0


async def drive_crash(args: argparse.Namespace) -> int:
    """Phase one of the crash drill: drive a server that takes periodic
    checkpoints, wait until at least one has landed, then SIGKILL the
    server mid-stream — no drain, no final checkpoint.  Everything the
    resume phase needs (stream params, per-query last-seen seqs, the
    crash position) is recorded in the state file, and every event
    received before the kill must be byte-identical to a prefix of the
    in-process reference."""
    host, port = args.host, args.port
    config = EngineConfig(
        backend=args.backend, shards=args.shards, execution=args.execution
    )
    tenants = [f"tenant{i}" for i in range(args.tenants)]
    failures: list[str] = []

    for tenant in tenants:
        for qid, text in QUERIES.items():
            status, body = await http_call(
                host,
                port,
                "POST",
                f"/tenants/{tenant}/queries",
                {
                    "query": text,
                    "window": WINDOW,
                    "slide": SLIDE,
                    "name": qid,
                    "policy": "block",
                },
            )
            if status != 201:
                failures.append(f"register {tenant}/{qid}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1

    # one WS + one SSE subscriber per tenant x query
    subscribers: list[Subscriber] = []
    for tenant in tenants:
        for qid in QUERIES:
            subscribers.append(Subscriber(host, port, tenant, qid, "ws"))
            subscribers.append(Subscriber(host, port, tenant, qid, "sse"))
    tasks = [asyncio.ensure_future(s.run()) for s in subscribers]
    await asyncio.wait_for(
        asyncio.gather(*(s.ready.wait() for s in subscribers)), timeout=60
    )
    print(f"{len(subscribers)} subscribers ready (pre-crash)")

    # ingest only a prefix: the rest is the resume phase's to re-drive
    edges = make_stream(args.seed, args.edges, args.vertices)
    crash_at = (2 * len(edges)) // 3
    for start in range(0, crash_at, args.batch):
        batch = [
            {"src": e.src, "trg": e.trg, "label": e.label, "t": e.t}
            for e in edges[start : min(start + args.batch, crash_at)]
        ]
        results = await asyncio.gather(
            *(
                http_call(
                    host, port, "POST", f"/tenants/{t}/ingest", {"edges": batch}
                )
                for t in tenants
            )
        )
        for tenant, (status, body) in zip(tenants, results):
            if status != 200:
                failures.append(f"ingest {tenant}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(f"ingested {crash_at}/{len(edges)} edges (crash prefix)")

    # a periodic checkpoint must land before the kill, or there is
    # nothing to restore from
    checkpoints = {}
    for _ in range(100):
        status, metrics = await http_call(host, port, "GET", "/metrics")
        checkpoints = (metrics or {}).get("checkpoints") or {}
        if status == 200 and checkpoints.get("count", 0) >= 1:
            break
        await asyncio.sleep(0.1)
    else:
        print(
            "FAIL: no periodic checkpoint landed — is the server running "
            "with --checkpoint-dir and --checkpoint-every-slides?"
        )
        return 1
    if checkpoints.get("failures", 0):
        print(f"FAIL: {checkpoints['failures']} periodic checkpoint failures")
        return 1
    await asyncio.sleep(0.3)  # let in-flight deliveries settle

    print(
        f"{checkpoints['count']} periodic checkpoint(s) on disk; "
        f"SIGKILLing pid {args.server_pid} (no drain)"
    )
    os.kill(args.server_pid, signal.SIGKILL)
    await asyncio.wait_for(
        asyncio.gather(*tasks, return_exceptions=True), timeout=60
    )

    # pre-crash parity: received events are a reference prefix
    reference = reference_streams(config, edges[:crash_at])
    last_seqs: dict[str, dict[str, int]] = {t: {} for t in tenants}
    matched = 0
    for sub in subscribers:
        want = reference[sub.query]
        tag = f"{sub.tenant}/{sub.query}[{sub.transport}]"
        if sub.events != want[: len(sub.events)]:
            failures.append(
                f"{tag}: pre-crash stream diverges from the reference prefix"
            )
        else:
            matched += 1
        seen = json.loads(sub.events[-1])["seq"] if sub.events else 0
        record = last_seqs[sub.tenant]
        record[sub.query] = max(record.get(sub.query, 0), seen)
    total_seen = sum(sum(q.values()) for q in last_seqs.values())
    if total_seen == 0:
        failures.append("no subscriber received any event before the crash")
    print(
        f"pre-crash parity: {matched}/{len(subscribers)} streams are "
        "reference prefixes"
    )
    if failures:
        for failure in failures[:20]:
            print("FAIL:", failure)
        print(f"{len(failures)} failure(s)")
        return 1
    state = {
        "seed": args.seed,
        "edges": args.edges,
        "vertices": args.vertices,
        "tenants": args.tenants,
        "crash_at": crash_at,
        "last_seqs": last_seqs,
    }
    Path(args.state_file).write_text(json.dumps(state))
    print(f"state saved to {args.state_file}")
    print("OK")
    return 0


async def drive_crash_resume(args: argparse.Namespace) -> int:
    """Phase two of the crash drill: the SIGKILLed server was relaunched
    with ``--restore-from`` a *periodic* checkpoint that may trail what
    the subscribers already received.  Reconnect every subscription with
    ``?last_seq=R&ahead=wait`` (both transports) so the re-driven suffix
    is deduplicated, re-ingest everything past the server's restored
    position, and require the spliced pre-crash + post-restore stream to
    be byte-identical to an uninterrupted run — no gaps, no duplicates,
    continuous sequence numbers across the crash."""
    host, port = args.host, args.port
    config = EngineConfig(
        backend=args.backend, shards=args.shards, execution=args.execution
    )
    state = json.loads(Path(args.state_file).read_text())
    tenants = [f"tenant{i}" for i in range(state["tenants"])]
    crash_at = int(state["crash_at"])
    edges = make_stream(state["seed"], state["edges"], state["vertices"])
    failures: list[str] = []

    # the uninterrupted reference over the full stream
    reference = reference_streams(config, edges)
    for tenant in tenants:
        for qid, stop in state["last_seqs"][tenant].items():
            if len(reference[qid]) < stop:
                print(
                    f"FAIL: reference for {qid!r} has {len(reference[qid])} "
                    f"events < recorded last seq {stop} (state mismatch?)"
                )
                return 1

    # the restored server's ingest position bounds what to re-drive
    status, metrics = await http_call(host, port, "GET", "/metrics")
    if status != 200:
        print(f"FAIL: /metrics on the restored server: {status}")
        return 1
    positions: dict[str, int] = {}
    for tenant in tenants:
        info = metrics["tenants"].get(tenant)
        if info is None:
            failures.append(f"tenant {tenant} missing after restore")
            continue
        ingested = int(info["ingested_total"])
        if not 0 < ingested <= crash_at:
            failures.append(
                f"{tenant}: restored ingest position {ingested} outside "
                f"(0, {crash_at}]"
            )
        positions[tenant] = ingested
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(
        "restored ingest positions: "
        + ", ".join(f"{t}={positions[t]}" for t in tenants)
    )

    # reconnect ahead of the restored stream head, on both transports
    subscribers: list[tuple[Subscriber, int]] = []
    for tenant in tenants:
        for qid in QUERIES:
            stop = int(state["last_seqs"][tenant][qid])
            for transport in ("ws", "sse"):
                subscribers.append(
                    (
                        Subscriber(
                            host, port, tenant, qid, transport,
                            stop, ahead="wait",
                        ),
                        stop,
                    )
                )
    tasks = [asyncio.ensure_future(s.run()) for s, _ in subscribers]
    await asyncio.wait_for(
        asyncio.gather(*(s.ready.wait() for s, _ in subscribers)), timeout=60
    )
    print(f"{len(subscribers)} subscriptions resumed with ahead=wait")

    # re-drive everything past each tenant's restored position
    for tenant in tenants:
        suffix = edges[positions[tenant] :]
        for start in range(0, len(suffix), args.batch):
            batch = [
                {"src": e.src, "trg": e.trg, "label": e.label, "t": e.t}
                for e in suffix[start : start + args.batch]
            ]
            status, body = await http_call(
                host, port, "POST", f"/tenants/{tenant}/ingest",
                {"edges": batch},
            )
            if status != 200:
                failures.append(f"ingest {tenant}: {status} {body}")
    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("re-drove the post-checkpoint suffix into every tenant")

    for tenant in tenants:
        for qid in QUERIES:
            status, body = await http_call(
                host, port, "DELETE", f"/tenants/{tenant}/queries/{qid}"
            )
            if status != 200:
                failures.append(f"unregister {tenant}/{qid}: {status} {body}")
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)

    matched = 0
    for sub, stop in subscribers:
        tag = f"{sub.tenant}/{sub.query}[{sub.transport} from {stop}]"
        want = reference[sub.query][stop:]
        if not sub.clean_eof:
            failures.append(f"{tag}: no clean end-of-stream")
        seqs = [json.loads(e)["seq"] for e in sub.events]
        if seqs != list(range(stop + 1, stop + 1 + len(want))):
            failures.append(
                f"{tag}: seq numbers not continuous across the crash "
                f"(got {seqs[:3]}..{seqs[-3:] if seqs else []}, "
                f"expected {stop + 1}..{stop + len(want)})"
            )
        elif sub.events != want:
            failures.append(
                f"{tag}: stream mismatch ({len(sub.events)} events vs "
                f"{len(want)} expected)"
            )
        else:
            matched += 1
    print(
        f"crash-resume parity: {matched}/{len(subscribers)} spliced streams "
        "gap-free, duplicate-free and identical to the uninterrupted "
        "reference"
    )
    if failures:
        for failure in failures[:20]:
            print("FAIL:", failure)
        print(f"{len(failures)} failure(s)")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--subscribers", type=int, default=200)
    parser.add_argument("--edges", type=int, default=400)
    parser.add_argument("--vertices", type=int, default=20)
    parser.add_argument("--batch", type=int, default=50)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--server-pid",
        type=int,
        default=None,
        help="SIGTERM this pid after ingest and expect a graceful drain",
    )
    parser.add_argument(
        "--phase",
        default="run",
        choices=("run", "resume", "crash", "crash-resume"),
        help="'run' drives a fresh server; 'resume' reconnects to a "
        "--restore-from relaunch and verifies continuous seq numbers; "
        "'crash' waits for a periodic checkpoint then SIGKILLs the "
        "server (no drain); 'crash-resume' reconnects with ahead=wait "
        "dedupe and verifies the spliced stream",
    )
    parser.add_argument(
        "--state-file",
        default=None,
        help="run/crash phase: record stream params + last seqs here; "
        "resume/crash-resume phase: read them back (required there)",
    )
    parser.add_argument(
        "--replay-back",
        type=int,
        default=5,
        help="resume phase: how many events before the last seen seq "
        "the ring-replay subscriber rewinds",
    )
    engine = parser.add_argument_group(
        "engine configuration (must match the server's)"
    )
    engine.add_argument("--backend", default="sga", choices=("sga", "dd"))
    engine.add_argument("--shards", type=int, default=1)
    engine.add_argument(
        "--execution", default="auto", choices=("auto", "columnar", "vector")
    )
    args = parser.parse_args(argv)
    if args.phase == "resume":
        if not args.state_file:
            parser.error("--phase resume requires --state-file")
        return asyncio.run(drive_resume(args))
    if args.phase == "crash":
        if not args.state_file:
            parser.error("--phase crash requires --state-file")
        if not args.server_pid:
            parser.error("--phase crash requires --server-pid")
        return asyncio.run(drive_crash(args))
    if args.phase == "crash-resume":
        if not args.state_file:
            parser.error("--phase crash-resume requires --state-file")
        return asyncio.run(drive_crash_resume(args))
    return asyncio.run(drive(args))


if __name__ == "__main__":
    raise SystemExit(main())
