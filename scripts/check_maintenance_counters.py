#!/usr/bin/env python
"""CI gate over the window-maintenance counters (batched rederivation).

Every PATH operator counts its boundary maintenance
(:func:`repro.physical.state_arrays.new_maintenance_counters`):
``rederive_trees`` is the number of (boundary, tree) pairs with at least
one expired node, ``rederive_passes`` the number of repair traversals
actually run.  The batched-maintenance invariant is **one grouped repair
per affected tree per boundary** — ``rederive_passes <= rederive_trees``
— and a regression to per-expired-node rederivation shows up as passes
exceeding trees, which no wall-clock smoke test at CI scale can catch.

This script runs the Table 1 queries over a small stream under both
state layouts and fails if any operator breaks the invariant, if a
layout diverges from the other one's counters (both layouts must do the
same maintenance work), or if the stream never exercised expiry at all
(a silent gate is no gate).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.experiments import Scale, _stream  # noqa: E402
from repro.core.windows import HOUR  # noqa: E402
from repro.engine.session import EngineConfig, StreamingGraphEngine  # noqa: E402
from repro.physical.state_arrays import apply_state_layout  # noqa: E402
from repro.workloads import QUERIES, labels_for  # noqa: E402

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
LAYOUTS = ("objects", "arrays")


def collect(dataset: str, scale: Scale, layout: str) -> dict[str, dict]:
    """Per-query summed maintenance counters after one full run."""
    stream = _stream(dataset, scale)
    window = scale.sliding_window()
    out: dict[str, dict] = {}
    for name in QUERY_NAMES:
        plan = QUERIES[name].plan(labels_for(name, dataset), window)
        engine = StreamingGraphEngine(
            EngineConfig(
                backend="sga",
                path_impl="negative",
                materialize_paths=False,
                execution="vector",
            )
        )
        engine.register(plan, name=name)
        apply_state_layout(engine._graph.operators, layout)
        engine.push_many(stream)
        totals: dict[str, int] = {}
        for op in engine._graph.operators:
            counters = getattr(op, "maintenance_counters", None)
            if counters is None:
                continue
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        out[name] = totals
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", choices=("so", "snb"), default="snb")
    parser.add_argument("--n-edges", type=int, default=400)
    parser.add_argument("--n-vertices", type=int, default=40)
    parser.add_argument("--window", type=int, default=8 * HOUR)
    parser.add_argument("--slide", type=int, default=HOUR)
    args = parser.parse_args(argv)

    scale = Scale(
        n_edges=args.n_edges,
        n_vertices=args.n_vertices,
        window=args.window,
        slide=args.slide,
    )
    per_layout = {
        layout: collect(args.dataset, scale, layout) for layout in LAYOUTS
    }
    failures: list[str] = []
    exercised = 0
    for layout, queries in per_layout.items():
        for query, totals in queries.items():
            trees = totals.get("rederive_trees", 0)
            passes = totals.get("rederive_passes", 0)
            exercised += totals.get("expired_nodes", 0)
            if passes > trees:
                failures.append(
                    f"{layout}/{query}: {passes} rederivation passes > "
                    f"{trees} affected trees (per-node rederivation "
                    "regression)"
                )
            print(
                f"{layout:>7} {query}: boundaries={totals.get('boundaries', 0)} "
                f"expired_nodes={totals.get('expired_nodes', 0)} "
                f"rederive_trees={trees} rederive_passes={passes}"
            )
    for query in QUERY_NAMES:
        if per_layout["objects"][query] != per_layout["arrays"][query]:
            failures.append(
                f"{query}: layouts disagree on maintenance work — "
                f"objects={per_layout['objects'][query]} "
                f"arrays={per_layout['arrays'][query]}"
            )
    if not exercised:
        failures.append(
            "no nodes expired anywhere: the stream/window never exercised "
            "the maintenance path (gate would be vacuous)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("maintenance-counter gate: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
