#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs Table 2, Table 3, Figures 10a/10b/11, and Figures 12-14 at the given
scale and prints the paper-style tables (the same rows the
``benchmarks/`` pytest modules produce, as one standalone report).

Usage::

    python scripts/run_experiments.py            # default scale (~2-4 min)
    python scripts/run_experiments.py --small    # quick smoke run
    python scripts/run_experiments.py --edges 8000 --vertices 200
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import (
    DEFAULT_SCALE,
    SMALL_SCALE,
    Scale,
    fig10a_window_size,
    fig10b_slide,
    fig11_dd_slide,
    plan_space,
    table2_rows,
    table3_rows,
)
from repro.bench.reporting import format_rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="quick smoke run")
    parser.add_argument("--edges", type=int, help="stream length")
    parser.add_argument("--vertices", type=int, help="vertex count")
    parser.add_argument("--window", type=int, help="window size in ticks")
    parser.add_argument("--slide", type=int, help="slide interval in ticks")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    base = SMALL_SCALE if args.small else DEFAULT_SCALE
    scale = Scale(
        n_edges=args.edges or base.n_edges,
        n_vertices=args.vertices or base.n_vertices,
        window=args.window or base.window,
        slide=args.slide or base.slide,
        seed=args.seed,
    )
    print(f"scale: {scale}")

    experiments = [
        ("Table 2: SGA vs DD (Q1-Q7, SO & SNB)", lambda: table2_rows(scale)),
        ("Table 3: S-PATH vs default PATH", lambda: table3_rows(scale)),
        (
            "Figure 10a: window-size sweep (SO, SGA)",
            lambda: fig10a_window_size(scale, queries=("Q1", "Q5", "Q7")),
        ),
        (
            "Figure 10b: slide sweep (SO, SGA)",
            lambda: fig10b_slide(scale, queries=("Q1", "Q5", "Q7")),
        ),
        (
            "Figure 11: slide sweep (SO, DD)",
            lambda: fig11_dd_slide(scale, queries=("Q1", "Q5", "Q7")),
        ),
        ("Figure 12: Q4 plan space", lambda: plan_space("Q4", scale)),
        ("Figure 13: Q2 plan space", lambda: plan_space("Q2", scale)),
        ("Figure 14: Q3 plan space", lambda: plan_space("Q3", scale)),
    ]

    for title, runner in experiments:
        started = time.perf_counter()
        rows = runner()
        elapsed = time.perf_counter() - started
        print()
        print(format_rows(rows, title=f"== {title} =="))
        print(f"({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
