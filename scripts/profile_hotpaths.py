#!/usr/bin/env python
"""Profile the execution hot path: cProfile + pstats, top-N per operator.

Future perf PRs should start from evidence, not intuition.  This script
runs one (or every) Table 1 query over a benchmark stream under
cProfile and reports:

* the global top-N functions by internal time, and
* internal time aggregated *per operator module* (wscan / join / the
  PATH implementations / coalesce / dataflow plumbing / expiry / ...),
  which is the granularity perf work is planned at.

Examples::

    python scripts/profile_hotpaths.py                     # all queries, snb
    python scripts/profile_hotpaths.py --query Q3 --dataset so --top 40
    python scripts/profile_hotpaths.py --execution rows    # historical path
    python scripts/profile_hotpaths.py --json              # machine-readable
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.experiments import Scale, _stream  # noqa: E402
from repro.core.windows import HOUR  # noqa: E402
from repro.engine.session import EngineConfig, StreamingGraphEngine  # noqa: E402
from repro.workloads import QUERIES, labels_for  # noqa: E402

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")

#: Module-path fragments -> report group.  Anything unmatched lands in
#: "other" so new hot spots never disappear silently.
OPERATOR_GROUPS = {
    "physical/wscan": "wscan",
    "physical/join": "pattern-join",
    "physical/spath": "spath",
    "physical/rpq_negative": "rpq-negative",
    "physical/coalesce_op": "coalesce",
    "physical/filter": "filter",
    "physical/union": "union",
    "physical/delta_index": "delta-index",
    "physical/state_arrays": "state-arrays",
    "core/inthash": "int64-table",
    "core/expiry": "timing-wheel",
    "core/interning": "interning",
    "core/columns": "columns",
    "core/batch": "scheduler",
    "core/intervals": "intervals",
    "core/coalesce": "coalesce-core",
    "dataflow/graph": "dataflow",
    "dataflow/executor": "executor",
    "dd/": "dd-baseline",
}


def group_of(filename: str) -> str:
    normalized = filename.replace("\\", "/")
    if "/repro/" not in normalized:
        return "stdlib/other"
    for fragment, name in OPERATOR_GROUPS.items():
        if fragment in normalized:
            return name
    return "repro/other"


#: State-machinery buckets: which share of the run is window/state
#: maintenance rather than per-event compute.  Classified by function
#: name (with a filename guard for the generic names), so both state
#: layouts land in the same buckets and layout changes show up as bucket
#: shares moving.
_PROBE_FUNCS = {
    "insert",
    "remove",
    "probe_group",
    "probe",
    "get",
    "put",
    "get_many",
    "put_many",
    "_pack_key",
    "_rehash",
}
_DRAIN_FUNCS = {"advance", "drain_epochs", "schedule", "next_due"}


def state_bucket_of(filename: str, funcname: str) -> str | None:
    """``"repair"`` / ``"probe"`` / ``"rederive"`` / ``"drain"`` or None.

    * repair   — the Dijkstra-style max-expiry repair traversals
    * rederive — boundary maintenance driving those repairs (on_advance
      and the per-tree re-derivation wrappers)
    * probe    — hash-table state access (join tables, int64 table)
    * drain    — expiry bookkeeping (timing wheel, purges)
    """
    normalized = filename.replace("\\", "/")
    if "/repro/" not in normalized:
        return None
    if "repair" in funcname or funcname == "push_candidates":
        return "repair"
    if "rederive" in funcname or "on_advance" in funcname:
        return "rederive"
    if "purge" in funcname or "_expire" in funcname or "_schedule" in funcname:
        return "drain"
    if "core/expiry" in normalized and funcname in _DRAIN_FUNCS:
        return "drain"
    if (
        "physical/join" in normalized or "core/inthash" in normalized
    ) and funcname in _PROBE_FUNCS:
        return "probe"
    return None


def collect_state_machinery(stats: pstats.Stats) -> dict[str, dict]:
    """Seconds and call counts per state-machinery bucket."""
    buckets: dict[str, dict] = {
        name: {"internal_s": 0.0, "calls": 0}
        for name in ("repair", "probe", "rederive", "drain")
    }
    for (filename, _lineno, funcname), (
        _cc,
        ncalls,
        tottime,
        _cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        bucket = state_bucket_of(filename, funcname)
        if bucket is not None:
            buckets[bucket]["internal_s"] += tottime
            buckets[bucket]["calls"] += ncalls
    return buckets


def run_queries(
    queries,
    dataset: str,
    scale: Scale,
    execution: str,
    repeat: int,
    state_layout: str = "auto",
):
    stream = _stream(dataset, scale)
    window = scale.sliding_window()
    plans = {
        name: QUERIES[name].plan(labels_for(name, dataset), window)
        for name in queries
    }
    profile = cProfile.Profile()
    profile.enable()
    for _ in range(repeat):
        for name, plan in plans.items():
            engine = StreamingGraphEngine(
                EngineConfig(
                    backend="sga",
                    path_impl="negative",
                    materialize_paths=False,
                    execution=execution,
                )
            )
            engine.register(plan, name=name)
            if state_layout != "auto":
                from repro.physical.state_arrays import apply_state_layout

                apply_state_layout(engine._graph.operators, state_layout)
            engine.push_many(stream)
    profile.disable()
    return pstats.Stats(profile)


def collect_per_operator(
    stats: pstats.Stats,
) -> tuple[dict[str, float], dict[str, list], float]:
    """Aggregate profile rows into (seconds-per-group, rows-per-group,
    total-internal-seconds)."""
    by_group: dict[str, float] = defaultdict(float)
    rows_by_group: dict[str, list] = defaultdict(list)
    total = 0.0
    for (filename, lineno, funcname), (
        _cc,
        ncalls,
        tottime,
        _cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        group = group_of(filename)
        by_group[group] += tottime
        rows_by_group[group].append((tottime, ncalls, funcname, lineno))
        total += tottime
    return by_group, rows_by_group, total


def json_report(stats: pstats.Stats, args, top: int) -> dict:
    """The ``--json`` payload: per-operator cumulative internal times,
    each group's hottest functions, and the run configuration — stable
    keys, floats in seconds, suitable for regression tooling to diff."""
    by_group, rows_by_group, total = collect_per_operator(stats)
    groups = []
    for group, seconds in sorted(by_group.items(), key=lambda kv: -kv[1]):
        hottest = [
            {
                "function": funcname,
                "line": lineno,
                "calls": ncalls,
                "internal_s": round(tottime, 6),
            }
            for tottime, ncalls, funcname, lineno in sorted(
                rows_by_group[group], reverse=True
            )[:top]
        ]
        groups.append(
            {
                "operator": group,
                "internal_s": round(seconds, 6),
                "share": round(seconds / total, 6) if total else 0.0,
                "hottest": hottest,
            }
        )
    machinery = collect_state_machinery(stats)
    state = {
        bucket: {
            "internal_s": round(row["internal_s"], 6),
            "share": round(row["internal_s"] / total, 6) if total else 0.0,
            "calls": row["calls"],
        }
        for bucket, row in machinery.items()
    }
    return {
        "total_internal_s": round(total, 6),
        "state_machinery": state,
        "config": {
            "query": args.query or "all",
            "dataset": args.dataset,
            "execution": args.execution,
            "state_layout": args.state_layout,
            "n_edges": args.n_edges,
            "n_vertices": args.n_vertices,
            "window": args.window,
            "slide": args.slide,
            "repeat": args.repeat,
        },
        "operators": groups,
    }


def report_per_operator(stats: pstats.Stats, top: int) -> None:
    by_group, rows_by_group, total = collect_per_operator(stats)

    print(f"\n== internal time per operator group (total {total:.3f}s) ==")
    for group, seconds in sorted(by_group.items(), key=lambda kv: -kv[1]):
        print(f"  {group:<16} {seconds:7.3f}s  ({seconds / total:5.1%})")
        for tottime, ncalls, funcname, lineno in sorted(
            rows_by_group[group], reverse=True
        )[:3]:
            print(
                f"      {tottime:7.3f}s  {ncalls:>8}x  {funcname} (:{lineno})"
            )

    machinery = collect_state_machinery(stats)
    print("\n== state machinery ==")
    for bucket, row in sorted(
        machinery.items(), key=lambda kv: -kv[1]["internal_s"]
    ):
        seconds = row["internal_s"]
        share = seconds / total if total else 0.0
        print(
            f"  {bucket:<10} {seconds:7.3f}s  ({share:5.1%})  "
            f"{row['calls']:>9} calls"
        )

    print(f"\n== global top {top} by internal time ==")
    stats.sort_stats("tottime").print_stats(top)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--query", choices=QUERY_NAMES, help="default: all")
    parser.add_argument("--dataset", choices=("so", "snb"), default="snb")
    parser.add_argument("--n-edges", type=int, default=2000)
    parser.add_argument("--n-vertices", type=int, default=150)
    parser.add_argument("--window", type=int, default=8 * HOUR)
    parser.add_argument("--slide", type=int, default=HOUR)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument(
        "--execution",
        choices=("auto", "vector", "columnar", "rows"),
        default="auto",
        help="engine execution representation to profile "
        "(default: the engine's auto resolution — vector when numpy "
        "is importable, columnar otherwise)",
    )
    parser.add_argument(
        "--state-layout",
        choices=("auto", "objects", "arrays"),
        default="auto",
        help="operator state layout to profile ('auto' keeps the "
        "engine's pairing — struct-of-arrays under vector execution); "
        "profile both to compare the state-machinery bucket shares",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (per-operator cumulative internal "
        "times + hottest functions) instead of the text report",
    )
    args = parser.parse_args(argv)

    scale = Scale(
        n_edges=args.n_edges,
        n_vertices=args.n_vertices,
        window=args.window,
        slide=args.slide,
    )
    queries = (args.query,) if args.query else QUERY_NAMES
    stats = run_queries(
        queries,
        args.dataset,
        scale,
        args.execution,
        args.repeat,
        args.state_layout,
    )
    if args.json:
        json.dump(json_report(stats, args, args.top), sys.stdout, indent=2)
        print()
    else:
        report_per_operator(stats, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
