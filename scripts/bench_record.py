#!/usr/bin/env python
"""Record the Table 2 / Table 3 benchmark suites into BENCH_*.json.

The perf trajectory of this repository is anchored by two committed JSON
files at the repo root:

* ``BENCH_table2.json`` — SGA (negative-tuple PATH) vs DD, Q1-Q7, on the
  StackOverflow-like and SNB-like streams (the paper's Table 2 shape);
* ``BENCH_table3.json`` — negative-tuple PATH vs S-PATH, same grid (the
  paper's Table 3 shape).

Each run appends (or replaces, keyed by ``--label``) one *entry* holding
the per-query rows plus per-dataset aggregate throughput, so successive
perf PRs record before/after pairs that reviewers can diff::

    python scripts/bench_record.py --label pr4 --repeat 3

Aggregate throughput for a (dataset, system) cell is total edges
processed across Q1-Q7 divided by total processing seconds — the metric
the acceptance criteria of perf PRs are judged on.  Use ``--check`` to
validate the committed files against the schema without benchmarking
(the CI smoke job runs a tiny ``--n-edges`` recording into a temp dir
and then ``--check``s it).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.experiments import Scale, _stream  # noqa: E402
from repro.bench.harness import run_dd_bench, run_sga_bench  # noqa: E402
from repro.core.windows import HOUR  # noqa: E402
from repro.query.parser import parse_rq  # noqa: E402
from repro.workloads import QUERIES, labels_for  # noqa: E402

SCHEMA = "repro-bench-trajectory/v1"
QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
DATASETS = ("so", "snb")

#: Mirrors ``benchmarks.conftest.BENCH_SCALE`` (not imported: that module
#: pulls in pytest fixtures).
DEFAULT_SCALE = Scale(n_edges=2000, n_vertices=150, window=8 * HOUR, slide=HOUR)


def _row(result, dataset: str, query: str) -> dict:
    seconds = (
        result.edges / result.throughput if result.throughput else 0.0
    )
    return {
        "dataset": dataset,
        "query": query,
        "system": result.system,
        "throughput": round(result.throughput, 1),
        "p99_latency_s": round(result.tail_latency, 6),
        "edges": result.edges,
        "seconds": round(seconds, 6),
        "results": result.results,
    }


def _best(measure, repeat: int) -> dict:
    """Best-of-``repeat`` by throughput (noise floor for small scales)."""
    best: dict | None = None
    for _ in range(repeat):
        row = measure()
        if best is None or row["throughput"] > best["throughput"]:
            best = row
    assert best is not None
    return best


def record_table2(scale: Scale, repeat: int) -> list[dict]:
    rows: list[dict] = []
    window = scale.sliding_window()
    for dataset in DATASETS:
        stream = _stream(dataset, scale)
        for query in QUERY_NAMES:
            plan = QUERIES[query].plan(labels_for(query, dataset), window)
            rows.append(
                _best(
                    lambda: _row(
                        run_sga_bench(plan, stream, path_impl="negative"),
                        dataset,
                        query,
                    ),
                    repeat,
                )
            )
            program = parse_rq(QUERIES[query].datalog(labels_for(query, dataset)))
            rows.append(
                _best(
                    lambda: _row(
                        run_dd_bench(program, stream, window), dataset, query
                    ),
                    repeat,
                )
            )
    return rows


def record_table3(scale: Scale, repeat: int) -> list[dict]:
    rows: list[dict] = []
    window = scale.sliding_window()
    for dataset in DATASETS:
        stream = _stream(dataset, scale)
        for query in QUERY_NAMES:
            plan = QUERIES[query].plan(labels_for(query, dataset), window)
            for impl in ("negative", "spath"):
                rows.append(
                    _best(
                        lambda: _row(
                            run_sga_bench(plan, stream, path_impl=impl),
                            dataset,
                            query,
                        ),
                        repeat,
                    )
                )
    return rows


def aggregates(rows: list[dict]) -> dict:
    """Per (dataset, system): total edges / total seconds across queries."""
    totals: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        key = (row["dataset"], row["system"])
        edges, seconds = totals.setdefault(key, [0.0, 0.0])
        totals[key] = [edges + row["edges"], seconds + row["seconds"]]
    return {
        f"{dataset}/{system}": {
            "edges": int(edges),
            "seconds": round(seconds, 6),
            "throughput": round(edges / seconds, 1) if seconds else 0.0,
        }
        for (dataset, system), (edges, seconds) in sorted(totals.items())
    }


def make_entry(label: str, scale: Scale, rows: list[dict]) -> dict:
    return {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "scale": {
            "n_edges": scale.n_edges,
            "n_vertices": scale.n_vertices,
            "window": scale.window,
            "slide": scale.slide,
            "seed": scale.seed,
        },
        "rows": rows,
        "aggregates": aggregates(rows),
    }


def upsert_entry(path: Path, table: str, entry: dict) -> dict:
    doc = {"schema": SCHEMA, "table": table, "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    doc["entries"] = [e for e in doc["entries"] if e["label"] != entry["label"]]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return doc


def validate(doc: dict, table: str) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("table") != table:
        problems.append(f"table is {doc.get('table')!r}, expected {table!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries missing or empty"]
    for entry in entries:
        where = f"entry {entry.get('label')!r}"
        for field in ("label", "recorded_at", "scale", "rows", "aggregates"):
            if field not in entry:
                problems.append(f"{where}: missing {field!r}")
        for row in entry.get("rows", []):
            for field in (
                "dataset",
                "query",
                "system",
                "throughput",
                "p99_latency_s",
                "edges",
                "seconds",
                "results",
            ):
                if field not in row:
                    problems.append(
                        f"{where}: row {row.get('query')}/{row.get('system')}: "
                        f"missing {field!r}"
                    )
        for cell in entry.get("aggregates", {}).values():
            if not {"edges", "seconds", "throughput"} <= set(cell):
                problems.append(f"{where}: malformed aggregate cell {cell}")
    return problems


def print_trajectory(doc: dict) -> None:
    """Aggregate throughput per entry, with speedup vs the first entry."""
    entries = doc["entries"]
    cells = sorted({key for e in entries for key in e["aggregates"]})
    base = entries[0]["aggregates"]
    header = f"{'aggregate (edges/s)':<28}" + "".join(
        f"{e['label']:>18}" for e in entries
    )
    print(header)
    for cell in cells:
        line = f"{cell:<28}"
        for entry in entries:
            value = entry["aggregates"].get(cell, {}).get("throughput", 0.0)
            ref = base.get(cell, {}).get("throughput", 0.0)
            suffix = f" ({value / ref:.2f}x)" if ref and entry is not entries[0] else ""
            line += f"{value:>10.0f}{suffix:>8}"
        print(line)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="dev", help="entry label (upserted)")
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N runs")
    parser.add_argument("--n-edges", type=int, default=DEFAULT_SCALE.n_edges)
    parser.add_argument("--n-vertices", type=int, default=DEFAULT_SCALE.n_vertices)
    parser.add_argument("--window", type=int, default=DEFAULT_SCALE.window)
    parser.add_argument("--slide", type=int, default=DEFAULT_SCALE.slide)
    parser.add_argument("--out-dir", type=Path, default=REPO)
    parser.add_argument(
        "--table", choices=("table2", "table3", "both"), default="both"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only validate the existing JSON files against the schema",
    )
    args = parser.parse_args(argv)

    args.out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "table2": args.out_dir / "BENCH_table2.json",
        "table3": args.out_dir / "BENCH_table3.json",
    }
    tables = ("table2", "table3") if args.table == "both" else (args.table,)

    if args.check:
        status = 0
        for table in tables:
            path = paths[table]
            if not path.exists():
                print(f"{path}: missing")
                status = 1
                continue
            problems = validate(json.loads(path.read_text()), table)
            for problem in problems:
                print(f"{path}: {problem}")
            status = status or (1 if problems else 0)
            if not problems:
                print(f"{path}: ok")
        return status

    scale = Scale(
        n_edges=args.n_edges,
        n_vertices=args.n_vertices,
        window=args.window,
        slide=args.slide,
    )
    recorders = {"table2": record_table2, "table3": record_table3}
    for table in tables:
        started = time.perf_counter()
        rows = recorders[table](scale, args.repeat)
        entry = make_entry(args.label, scale, rows)
        doc = upsert_entry(paths[table], table, entry)
        print(
            f"\n== {table}: recorded {len(rows)} rows as {args.label!r} "
            f"in {time.perf_counter() - started:.1f}s -> {paths[table]}"
        )
        print_trajectory(doc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
