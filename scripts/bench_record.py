#!/usr/bin/env python
"""Record the Table 2 / Table 3 benchmark suites into BENCH_*.json.

The perf trajectory of this repository is anchored by two committed JSON
files at the repo root:

* ``BENCH_table2.json`` — SGA (negative-tuple PATH) vs DD, Q1-Q7, on the
  StackOverflow-like and SNB-like streams (the paper's Table 2 shape);
* ``BENCH_table3.json`` — negative-tuple PATH vs S-PATH, same grid (the
  paper's Table 3 shape).

Each run appends (or replaces, keyed by ``--label``) one *entry* holding
the per-query rows plus per-dataset aggregate throughput, so successive
perf PRs record before/after pairs that reviewers can diff::

    python scripts/bench_record.py --label pr4 --repeat 3

Aggregate throughput for a (dataset, system) cell is total edges
processed across Q1-Q7 divided by total processing seconds — the metric
the acceptance criteria of perf PRs are judged on.  Use ``--check`` to
validate the committed files against the schema without benchmarking
(the CI smoke job runs a tiny ``--n-edges`` recording into a temp dir
and then ``--check``s it).
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.experiments import Scale, _stream  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    run_dd_bench,
    run_sga_bench,
    run_sga_sharded_bench,
)
from repro.checkpoint import DirectoryCheckpointStore  # noqa: E402
from repro.core.windows import HOUR  # noqa: E402
from repro.engine.session import (  # noqa: E402
    EngineConfig,
    StreamingGraphEngine,
)
from repro.query.parser import parse_rq  # noqa: E402
from repro.workloads import QUERIES, labels_for  # noqa: E402

SCHEMA = "repro-bench-trajectory/v1"
QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
DATASETS = ("so", "snb")

#: Mirrors ``benchmarks.conftest.BENCH_SCALE`` (not imported: that module
#: pulls in pytest fixtures).
DEFAULT_SCALE = Scale(n_edges=2000, n_vertices=150, window=8 * HOUR, slide=HOUR)

#: Scale for the shard-scaling curve (``--table sharded``): denser and
#: longer-windowed than the Table 2 default so the Δ-tree traversal and
#: join-probe work — the portion sharding divides — dominates the fixed
#: per-edge windowing costs, as it does at production scale.
SHARDED_SCALE = Scale(n_edges=8000, n_vertices=60, window=16 * HOUR, slide=HOUR)

#: Shard counts recorded on the scaling curve.
SHARD_COUNTS = (1, 2, 4)

SHARDED_NOTE = (
    "Shard-scaling curve over the Table 2 SNB workload: throughput is "
    "edges / busiest-shard CPU seconds (process transport workers; "
    "process_time), i.e. the per-shard work division — the wall-clock an "
    "adequately-cored host approaches.  Single-core CI time-slices the "
    "workers, so wall-clock there cannot show parallel speedup; CPU-work "
    "accounting is scheduler-independent.  shards=1 is the plain engine "
    "under the same CPU accounting."
)


CHECKPOINT_NOTE = (
    "Durability cost curve: per query, an SGA engine ingests the SNB "
    "stream, snapshots into a DirectoryCheckpointStore, and a fresh "
    "engine restores from it.  'seconds' (== p99_latency_s) is the "
    "snapshot or restore wall-clock; 'throughput' is stream edges / that "
    "wall-clock, i.e. how many edges of ingest work one checkpoint "
    "operation amortizes over."
)


def record_checkpoint(scale: Scale, repeat: int) -> list[dict]:
    """Snapshot + restore wall-clock per query on the SNB stream."""
    rows: list[dict] = []
    window = scale.sliding_window()
    stream = _stream("snb", scale)
    for query in QUERY_NAMES:
        plan = QUERIES[query].plan(labels_for(query, "snb"), window)
        best: dict[str, dict] | None = None
        for _ in range(repeat):
            tmp = tempfile.mkdtemp(prefix="bench-ckpt-")
            try:
                store = DirectoryCheckpointStore(tmp)
                engine = StreamingGraphEngine(EngineConfig(backend="sga"))
                handle = engine.register(plan, name=query)
                engine.push_many(stream)
                started = time.perf_counter()
                checkpoint_id = engine.checkpoint(store)
                snapshot_s = time.perf_counter() - started
                n_results = len(handle.results())
                engine.close()
                ckpt_dir = Path(tmp) / checkpoint_id
                nbytes = sum(
                    entry.stat().st_size for entry in ckpt_dir.iterdir()
                )
                started = time.perf_counter()
                restored = StreamingGraphEngine.restore(store)
                restore_s = time.perf_counter() - started
                restored.close()
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
            sample = {
                "snapshot": _checkpoint_row(
                    query, "CKPT[snapshot]", snapshot_s, scale, n_results
                ),
                "restore": _checkpoint_row(
                    query, "CKPT[restore]", restore_s, scale, n_results
                ),
            }
            sample["snapshot"]["checkpoint_bytes"] = nbytes
            if best is None or (
                sample["snapshot"]["seconds"] + sample["restore"]["seconds"]
                < best["snapshot"]["seconds"] + best["restore"]["seconds"]
            ):
                best = sample
        assert best is not None
        rows.extend([best["snapshot"], best["restore"]])
    return rows


def _checkpoint_row(
    query: str, system: str, seconds: float, scale: Scale, n_results: int
) -> dict:
    return {
        "dataset": "snb",
        "query": query,
        "system": system,
        "throughput": round(scale.n_edges / seconds, 1) if seconds else 0.0,
        "p99_latency_s": round(seconds, 6),
        "edges": scale.n_edges,
        "seconds": round(seconds, 6),
        "results": n_results,
    }


def record_sharded(scale: Scale, repeat: int) -> list[dict]:
    """SGA shard-scaling rows on the SNB stream (Table 2 workload)."""
    rows: list[dict] = []
    window = scale.sliding_window()
    stream = _stream("snb", scale)
    for query in QUERY_NAMES:
        plan = QUERIES[query].plan(labels_for(query, "snb"), window)
        for shards in SHARD_COUNTS:
            rows.append(
                _best(
                    lambda: _row(
                        run_sga_sharded_bench(
                            plan, stream, path_impl="negative", shards=shards
                        ),
                        "snb",
                        query,
                    ),
                    repeat,
                )
            )
    return rows


def _row(result, dataset: str, query: str) -> dict:
    seconds = (
        result.edges / result.throughput if result.throughput else 0.0
    )
    return {
        "dataset": dataset,
        "query": query,
        "system": result.system,
        "throughput": round(result.throughput, 1),
        "p99_latency_s": round(result.tail_latency, 6),
        "edges": result.edges,
        "seconds": round(seconds, 6),
        "results": result.results,
    }


def _best(measure, repeat: int) -> dict:
    """Best-of-``repeat`` by throughput (noise floor for small scales)."""
    best: dict | None = None
    for _ in range(repeat):
        row = measure()
        if best is None or row["throughput"] > best["throughput"]:
            best = row
    assert best is not None
    return best


def record_table2(
    scale: Scale,
    repeat: int,
    execution: str = "auto",
    state_layout: str = "auto",
) -> list[dict]:
    rows: list[dict] = []
    window = scale.sliding_window()
    for dataset in DATASETS:
        stream = _stream(dataset, scale)
        for query in QUERY_NAMES:
            plan = QUERIES[query].plan(labels_for(query, dataset), window)
            rows.append(
                _best(
                    lambda: _row(
                        run_sga_bench(
                            plan,
                            stream,
                            path_impl="negative",
                            execution=execution,
                            state_layout=state_layout,
                        ),
                        dataset,
                        query,
                    ),
                    repeat,
                )
            )
            program = parse_rq(QUERIES[query].datalog(labels_for(query, dataset)))
            rows.append(
                _best(
                    lambda: _row(
                        run_dd_bench(program, stream, window), dataset, query
                    ),
                    repeat,
                )
            )
    return rows


def record_table3(
    scale: Scale,
    repeat: int,
    execution: str = "auto",
    state_layout: str = "auto",
) -> list[dict]:
    rows: list[dict] = []
    window = scale.sliding_window()
    for dataset in DATASETS:
        stream = _stream(dataset, scale)
        for query in QUERY_NAMES:
            plan = QUERIES[query].plan(labels_for(query, dataset), window)
            for impl in ("negative", "spath"):
                rows.append(
                    _best(
                        lambda: _row(
                            run_sga_bench(
                                plan,
                                stream,
                                path_impl=impl,
                                execution=execution,
                                state_layout=state_layout,
                            ),
                            dataset,
                            query,
                        ),
                        repeat,
                    )
                )
    return rows


def aggregates(rows: list[dict]) -> dict:
    """Per (dataset, system): total edges / total seconds across queries."""
    totals: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        key = (row["dataset"], row["system"])
        edges, seconds = totals.setdefault(key, [0.0, 0.0])
        totals[key] = [edges + row["edges"], seconds + row["seconds"]]
    return {
        f"{dataset}/{system}": {
            "edges": int(edges),
            "seconds": round(seconds, 6),
            "throughput": round(edges / seconds, 1) if seconds else 0.0,
        }
        for (dataset, system), (edges, seconds) in sorted(totals.items())
    }


def make_entry(
    label: str, scale: Scale, rows: list[dict], note: str | None = None
) -> dict:
    entry = {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "scale": {
            "n_edges": scale.n_edges,
            "n_vertices": scale.n_vertices,
            "window": scale.window,
            "slide": scale.slide,
            "seed": scale.seed,
        },
        "rows": rows,
        "aggregates": aggregates(rows),
    }
    if note is not None:
        entry["note"] = note
    return entry


def upsert_entry(path: Path, table: str, entry: dict) -> dict:
    doc = {"schema": SCHEMA, "table": table, "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    doc["entries"] = [e for e in doc["entries"] if e["label"] != entry["label"]]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return doc


def validate(doc: dict, table: str) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("table") != table:
        problems.append(f"table is {doc.get('table')!r}, expected {table!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries missing or empty"]
    for entry in entries:
        where = f"entry {entry.get('label')!r}"
        for field in ("label", "recorded_at", "scale", "rows", "aggregates"):
            if field not in entry:
                problems.append(f"{where}: missing {field!r}")
        for row in entry.get("rows", []):
            for field in (
                "dataset",
                "query",
                "system",
                "throughput",
                "p99_latency_s",
                "edges",
                "seconds",
                "results",
            ):
                if field not in row:
                    problems.append(
                        f"{where}: row {row.get('query')}/{row.get('system')}: "
                        f"missing {field!r}"
                    )
        for cell in entry.get("aggregates", {}).values():
            if not {"edges", "seconds", "throughput"} <= set(cell):
                problems.append(f"{where}: malformed aggregate cell {cell}")
    return problems


def print_trajectory(doc: dict) -> None:
    """Aggregate throughput per entry, with speedup vs the first entry."""
    entries = doc["entries"]
    cells = sorted({key for e in entries for key in e["aggregates"]})
    base = entries[0]["aggregates"]
    header = f"{'aggregate (edges/s)':<28}" + "".join(
        f"{e['label']:>18}" for e in entries
    )
    print(header)
    for cell in cells:
        line = f"{cell:<28}"
        for entry in entries:
            value = entry["aggregates"].get(cell, {}).get("throughput", 0.0)
            ref = base.get(cell, {}).get("throughput", 0.0)
            suffix = f" ({value / ref:.2f}x)" if ref and entry is not entries[0] else ""
            line += f"{value:>10.0f}{suffix:>8}"
        print(line)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="dev", help="entry label (upserted)")
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N runs")
    # Scale defaults resolve per table: DEFAULT_SCALE for table2/3,
    # SHARDED_SCALE for the shard-scaling curve.
    parser.add_argument("--n-edges", type=int, default=None)
    parser.add_argument("--n-vertices", type=int, default=None)
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--slide", type=int, default=None)
    parser.add_argument("--out-dir", type=Path, default=REPO)
    parser.add_argument(
        "--table",
        choices=("table2", "table3", "both", "sharded", "checkpoint"),
        default="both",
        help=(
            "'sharded' records the shard-scaling curve (SGA on the SNB "
            "stream at SHARDED_SCALE, shards 1/2/4) into BENCH_table2.json; "
            "'checkpoint' records snapshot/restore wall-clock per query "
            "into BENCH_checkpoint.json"
        ),
    )
    parser.add_argument(
        "--execution",
        choices=("auto", "vector", "columnar", "rows"),
        default="auto",
        help=(
            "SGA delta representation to benchmark (the entry note "
            "records what was pinned); perf-PR before/after pairs should "
            "pin the baseline and candidate explicitly, e.g. "
            "--execution columnar --label pr4-columnar then "
            "--execution vector --label pr6-vectorized"
        ),
    )
    parser.add_argument(
        "--state-layout",
        choices=("auto", "objects", "arrays"),
        default="auto",
        help=(
            "operator state layout for the SGA rows ('auto' keeps the "
            "engine's pairing: struct-of-arrays under vector execution); "
            "before/after pairs isolating the layout pin it, e.g. "
            "--execution vector --state-layout objects --label "
            "pr6-vectorized then --state-layout arrays --label "
            "pr10-state-arrays"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only validate the existing JSON files against the schema",
    )
    args = parser.parse_args(argv)

    args.out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "table2": args.out_dir / "BENCH_table2.json",
        "table3": args.out_dir / "BENCH_table3.json",
        "checkpoint": args.out_dir / "BENCH_checkpoint.json",
    }
    if args.table == "sharded":
        tables = ("table2",)
    elif args.table == "both":
        tables = ("table2", "table3")
    else:
        tables = (args.table,)

    if args.check:
        status = 0
        for table in tables:
            path = paths[table]
            if not path.exists():
                print(f"{path}: missing")
                status = 1
                continue
            problems = validate(json.loads(path.read_text()), table)
            for problem in problems:
                print(f"{path}: {problem}")
            status = status or (1 if problems else 0)
            if not problems:
                print(f"{path}: ok")
        return status

    if args.table == "sharded":
        defaults = SHARDED_SCALE
    else:
        defaults = DEFAULT_SCALE
    scale = Scale(
        n_edges=(
            args.n_edges if args.n_edges is not None else defaults.n_edges
        ),
        n_vertices=(
            args.n_vertices
            if args.n_vertices is not None
            else defaults.n_vertices
        ),
        window=args.window if args.window is not None else defaults.window,
        slide=args.slide if args.slide is not None else defaults.slide,
    )
    if args.table == "checkpoint":
        started = time.perf_counter()
        rows = record_checkpoint(scale, args.repeat)
        entry = make_entry(args.label, scale, rows, note=CHECKPOINT_NOTE)
        doc = upsert_entry(paths["checkpoint"], "checkpoint", entry)
        print(
            f"\n== checkpoint: recorded {len(rows)} rows as {args.label!r} "
            f"in {time.perf_counter() - started:.1f}s -> {paths['checkpoint']}"
        )
        print_trajectory(doc)
        _print_checkpoint(entry)
        return 0
    if args.table == "sharded":
        started = time.perf_counter()
        rows = record_sharded(scale, args.repeat)
        entry = make_entry(args.label, scale, rows, note=SHARDED_NOTE)
        doc = upsert_entry(paths["table2"], "table2", entry)
        print(
            f"\n== sharded: recorded {len(rows)} rows as {args.label!r} "
            f"in {time.perf_counter() - started:.1f}s -> {paths['table2']}"
        )
        print_trajectory(doc)
        _print_scaling(entry)
        return 0
    recorders = {"table2": record_table2, "table3": record_table3}
    pinned = []
    if args.execution != "auto":
        pinned.append(f"execution={args.execution!r}")
    if args.state_layout != "auto":
        pinned.append(f"state_layout={args.state_layout!r}")
    note = f"SGA rows recorded with {', '.join(pinned)}" if pinned else None
    for table in tables:
        started = time.perf_counter()
        rows = recorders[table](
            scale, args.repeat, args.execution, args.state_layout
        )
        entry = make_entry(args.label, scale, rows, note=note)
        doc = upsert_entry(paths[table], table, entry)
        print(
            f"\n== {table}: recorded {len(rows)} rows as {args.label!r} "
            f"in {time.perf_counter() - started:.1f}s -> {paths[table]}"
        )
        print_trajectory(doc)
    return 0


def _print_checkpoint(entry: dict) -> None:
    """Per-query snapshot/restore wall-clock summary of one entry."""
    by_query: dict[str, dict[str, dict]] = {}
    for row in entry["rows"]:
        phase = row["system"].removeprefix("CKPT[").removesuffix("]")
        by_query.setdefault(row["query"], {})[phase] = row
    print("\ncheckpoint cost (snb stream):")
    for query, phases in by_query.items():
        snap = phases.get("snapshot", {})
        rest = phases.get("restore", {})
        size = snap.get("checkpoint_bytes", 0)
        print(
            f"  {query}: snapshot {snap.get('seconds', 0.0) * 1e3:8.1f} ms"
            f"  restore {rest.get('seconds', 0.0) * 1e3:8.1f} ms"
            f"  ({size / 1024:.0f} KiB on disk)"
        )


def _print_scaling(entry: dict) -> None:
    """Aggregate shard-scaling summary of one sharded entry."""
    base = entry["aggregates"].get("snb/SGA[negative,shards=1]", {})
    base_thr = base.get("throughput", 0.0)
    print("\nshard scaling (aggregate snb, CPU-work throughput):")
    for shards in SHARD_COUNTS:
        cell = entry["aggregates"].get(
            f"snb/SGA[negative,shards={shards}]", {}
        )
        thr = cell.get("throughput", 0.0)
        suffix = f" ({thr / base_thr:.2f}x)" if base_thr and shards > 1 else ""
        print(f"  shards={shards}: {thr:>10.0f} edges/s{suffix}")


if __name__ == "__main__":
    raise SystemExit(main())
