"""Setuptools entry point.

Metadata lives here (rather than in a ``[project]`` table) so that
``pip install -e .`` works in fully offline environments: without a
``[build-system]`` table pip falls back to the legacy ``setup.py develop``
code path, which needs neither network access nor the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Evaluating Complex Queries on Streaming Graphs' "
        "(Pacaci, Bonifati, Ozsu - ICDE 2022)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
