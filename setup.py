"""Setuptools entry point (legacy / offline path).

Canonical metadata lives in ``pyproject.toml`` and ``pip install -e .``
is the supported install.  This file remains for fully offline
environments without the ``wheel`` package, where the PEP 517 editable
build cannot run: use ``python setup.py develop`` there (or simply export
``PYTHONPATH=src``, which is what the test suite does).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Evaluating Complex Queries on Streaming Graphs' "
        "(Pacaci, Bonifati, Ozsu - ICDE 2022)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
