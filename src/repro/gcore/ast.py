"""AST for the G-CORE dialect."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeRef:
    """A node pattern ``(x)``; anonymous nodes get generated names."""

    var: str


@dataclass(frozen=True)
class EdgeHop:
    """One hop of a chain pattern.

    ``direction`` is ``"fwd"`` for ``-[:l]->`` and ``"bwd"`` for
    ``<-[:l]-``; ``reach`` marks reachability hops (``-/<:l*>/->`` or
    ``-/p<~RL*>/->``), in which case ``path_var`` carries the binding
    name when one was written.
    """

    label: str
    direction: str
    reach: bool = False
    path_var: str | None = None


@dataclass(frozen=True)
class ChainPattern:
    """A node-edge-node-... chain: ``(x)-[:a]->(y)<-[:b]-(z)``."""

    nodes: tuple[NodeRef, ...]
    hops: tuple[EdgeHop, ...]

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.nodes[0].var, self.nodes[-1].var)


@dataclass(frozen=True)
class PathDef:
    """``PATH name = pattern, ...``: the first chain's endpoints are the
    defined binary relation's endpoints."""

    name: str
    patterns: tuple[ChainPattern, ...]


@dataclass(frozen=True)
class Construct:
    """``CONSTRUCT (x)-[:label]->(y)``."""

    label: str
    src_var: str
    trg_var: str


@dataclass(frozen=True)
class WindowSpec:
    """``WINDOW (24h) SLIDE (1h)`` in ticks (60 ticks per hour)."""

    size: int
    slide: int = 1


@dataclass(frozen=True)
class MatchBlock:
    """``MATCH patterns [OPTIONAL pattern]* ON stream WINDOW(...)``."""

    patterns: tuple[ChainPattern, ...]
    optionals: tuple[ChainPattern, ...]
    stream: str
    window: WindowSpec


@dataclass(frozen=True)
class GCoreQuery:
    """A parsed G-CORE statement."""

    construct: Construct
    matches: tuple[MatchBlock, ...]
    paths: tuple[PathDef, ...] = ()
    where: tuple[tuple[str, str], ...] = ()
    view_name: str | None = None
