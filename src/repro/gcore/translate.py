"""Translation from G-CORE ASTs to SGQ (the Section 4.2 mapping).

The mapping follows the paper's worked examples:

* each ``PATH name = patterns`` definition becomes a rule
  ``name(x, y) <- atoms`` where ``(x, y)`` are the endpoints of the first
  chain (Figure 6 → Example 2);
* ``MATCH`` chains contribute body atoms; reachability hops become
  transitive-closure atoms (``follows*`` → ``follows+(x, y) as FP``);
* each ``OPTIONAL`` chain of a block becomes one alternative rule of an
  auxiliary predicate — the union translation of Example 4 (Figure 7);
* ``WHERE (x) = (y)`` unifies variables across MATCH blocks;
* ``CONSTRUCT (x)-[:label]->(y)`` produces the rule for the output label
  plus the final ``Answer`` rename;
* every MATCH block's ``ON ... WINDOW ... SLIDE`` clause sets the window
  of the input labels that block (transitively) scans, yielding the
  per-label windows of :class:`~repro.query.sgq.SGQ`.
"""

from __future__ import annotations

from repro.core.windows import SlidingWindow
from repro.errors import ParseError
from repro.gcore.ast import ChainPattern, GCoreQuery, MatchBlock, PathDef
from repro.query.datalog import ANSWER, Atom, BodyAtom, ClosureAtom, Rule, RQProgram
from repro.query.sgq import SGQ


def gcore_to_sgq(query: GCoreQuery) -> SGQ:
    """Translate a parsed G-CORE query into an SGQ."""
    translator = _Translator(query)
    return translator.build()


class _Translator:
    def __init__(self, query: GCoreQuery):
        self.query = query
        self.rules: list[Rule] = []
        self.path_names = {p.name for p in query.paths}
        self._closure_names: dict[str, str] = {}
        self._aux = 0
        # label -> set of EDB labels reachable through its definition
        self._label_edb: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    def build(self) -> SGQ:
        renaming = self._renaming()

        for path_def in self.query.paths:
            self._translate_path_def(path_def)

        body: list[BodyAtom] = []
        label_windows: dict[str, SlidingWindow] = {}
        default_window: SlidingWindow | None = None

        for index, block in enumerate(self.query.matches):
            block_atoms = self._translate_block(block, index, renaming)
            body.extend(block_atoms)
            window = SlidingWindow(block.window.size, block.window.slide)
            if default_window is None:
                default_window = window
            for label in self._edb_labels_of(block_atoms):
                label_windows[label] = window

        if default_window is None:  # pragma: no cover - parser guarantees
            raise ParseError("query has no MATCH block")
        if not body:
            raise ParseError("MATCH blocks bind no edges")

        construct = self.query.construct
        src = renaming.get(construct.src_var, construct.src_var)
        trg = renaming.get(construct.trg_var, construct.trg_var)

        if construct.label == ANSWER:
            self.rules.append(Rule(ANSWER, src, trg, tuple(body)))
        else:
            self.rules.append(Rule(construct.label, src, trg, tuple(body)))
            self.rules.append(
                Rule(ANSWER, src, trg, (Atom(construct.label, src, trg),))
            )

        program = RQProgram(tuple(self.rules))
        return SGQ(program, default_window, label_windows)

    # ------------------------------------------------------------------
    def _renaming(self) -> dict[str, str]:
        """Union-find style variable unification from WHERE equalities."""
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for left, right in self.query.where:
            root_l, root_r = find(left), find(right)
            if root_l != root_r:
                parent[root_r] = root_l
        return {x: find(x) for x in parent}

    # ------------------------------------------------------------------
    def _translate_path_def(self, path_def: PathDef) -> None:
        atoms: list[BodyAtom] = []
        for chain in path_def.patterns:
            atoms.extend(self._chain_atoms(chain, {}))
        head_src, head_trg = path_def.patterns[0].endpoints
        self.rules.append(Rule(path_def.name, head_src, head_trg, tuple(atoms)))
        self._label_edb[path_def.name] = self._edb_labels_of(atoms)

    def _translate_block(
        self,
        block: MatchBlock,
        index: int,
        renaming: dict[str, str],
    ) -> list[BodyAtom]:
        atoms: list[BodyAtom] = []
        for chain in block.patterns:
            atoms.extend(self._chain_atoms(chain, renaming))

        if block.optionals:
            endpoints = {
                self._rename_pair(chain.endpoints, renaming)
                for chain in block.optionals
            }
            if len(endpoints) != 1:
                raise ParseError(
                    "OPTIONAL patterns of one MATCH block must share their "
                    f"endpoints; found {sorted(endpoints)}"
                )
            src, trg = endpoints.pop()
            self._aux += 1
            aux = f"Opt{self._aux}"
            aux_edb: set[str] = set()
            for chain in block.optionals:
                chain_atoms = self._chain_atoms(chain, renaming)
                self.rules.append(Rule(aux, src, trg, tuple(chain_atoms)))
                aux_edb |= self._edb_labels_of(chain_atoms)
            self._label_edb[aux] = aux_edb
            atoms.append(Atom(aux, src, trg))
        return atoms

    def _rename_pair(
        self, pair: tuple[str, str], renaming: dict[str, str]
    ) -> tuple[str, str]:
        return (renaming.get(pair[0], pair[0]), renaming.get(pair[1], pair[1]))

    def _chain_atoms(
        self, chain: ChainPattern, renaming: dict[str, str]
    ) -> list[BodyAtom]:
        atoms: list[BodyAtom] = []
        for position, hop in enumerate(chain.hops):
            left = chain.nodes[position].var
            right = chain.nodes[position + 1].var
            left = renaming.get(left, left)
            right = renaming.get(right, right)
            if hop.direction == "bwd":
                left, right = right, left
            if hop.reach:
                name = hop.path_var or self._closure_name(hop.label)
                atoms.append(ClosureAtom(hop.label, left, right, name))
            else:
                atoms.append(Atom(hop.label, left, right))
        return atoms

    def _closure_name(self, label: str) -> str:
        name = self._closure_names.get(label)
        if name is None:
            name = f"{label}_path"
            self._closure_names[label] = name
        return name

    # ------------------------------------------------------------------
    def _edb_labels_of(self, atoms: list[BodyAtom]) -> set[str]:
        """Input labels scanned by these atoms, expanding derived labels
        through their definitions (so ON-clause windows reach the WSCANs
        of PATH-definition labels)."""
        result: set[str] = set()
        for atom in atoms:
            label = atom.label
            if label in self._label_edb:
                result |= self._label_edb[label]
            elif isinstance(atom, ClosureAtom) and atom.label in self._label_edb:
                result |= self._label_edb[atom.label]
            elif label not in {r.head_label for r in self.rules}:
                result.add(label)
        return result
