"""Tokenizer for the G-CORE dialect.

The published G-CORE examples put arbitrary whitespace inside ASCII-art
edges (``- / <: follows ^* > / - >``), so lexing runs in two steps:
whitespace between punctuation characters is collapsed first, then a
single regex splits the normalized text into tokens.
"""

from __future__ import annotations

import re

from repro.errors import ParseError

_PUNCT = r"\-/<>\[\]:~*+^=(),"

# Whitespace adjacent to punctuation carries no meaning in the ASCII art.
_COLLAPSE_BEFORE = re.compile(rf"\s+(?=[{_PUNCT}])")
_COLLAPSE_AFTER = re.compile(rf"(?<=[{_PUNCT}])\s+")

_TOKEN_RE = re.compile(
    r"""
    (?P<edge_fwd>-\[:(?P<fwd_label>\w+)\]->)
  | (?P<edge_bwd><-\[:(?P<bwd_label>\w+)\]-)
  | (?P<reach>-/(?P<reach_var>\w+)?<(?P<reach_kind>[:~])(?P<reach_label>\w+)
        (?P<reach_star>\^?\*|\+)?>/->)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<eq>=)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_]\w*)
    """,
    re.VERBOSE,
)

#: Keywords are case-insensitive; everything else is an identifier.
KEYWORDS = {
    "PATH",
    "CONSTRUCT",
    "MATCH",
    "OPTIONAL",
    "ON",
    "WINDOW",
    "SLIDE",
    "WHERE",
    "AND",
    "GRAPH",
    "VIEW",
    "AS",
}


class Token:
    __slots__ = ("kind", "value", "extra", "pos")

    def __init__(self, kind: str, value: str, pos: int, extra: dict | None = None):
        self.kind = kind
        self.value = value
        self.extra = extra or {}
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def normalize(text: str) -> str:
    """Collapse the meaningless whitespace of ASCII-art edges.

    Token positions (and therefore :class:`~repro.errors.ParseError`
    line/column reports) refer to this normalized text.
    """
    normalized = _COLLAPSE_BEFORE.sub("", text)
    return _COLLAPSE_AFTER.sub("", normalized)


def tokenize(text: str) -> list[Token]:
    return tokenize_normalized(normalize(text))


def tokenize_normalized(normalized: str) -> list[Token]:
    """Tokenize text already passed through :func:`normalize` (callers
    that also need the normalized text for error excerpts avoid running
    the collapse regexes twice)."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(normalized):
        if normalized[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(normalized, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {normalized[pos]!r} in G-CORE input",
                pos,
                source=normalized,
            )
        kind = match.lastgroup
        # lastgroup reports the innermost named group that matched last;
        # recover the outer token kind explicitly.
        for outer in (
            "edge_fwd",
            "edge_bwd",
            "reach",
            "lparen",
            "rparen",
            "comma",
            "eq",
            "number",
            "ident",
        ):
            if match.group(outer) is not None:
                kind = outer
                break
        value = match.group(kind)
        extra: dict = {}
        if kind == "edge_fwd":
            extra["label"] = match.group("fwd_label")
        elif kind == "edge_bwd":
            extra["label"] = match.group("bwd_label")
        elif kind == "reach":
            extra["label"] = match.group("reach_label")
            extra["kind"] = match.group("reach_kind")
            extra["path_var"] = match.group("reach_var")
            extra["star"] = match.group("reach_star")
        elif kind == "ident" and value.upper() in KEYWORDS:
            kind = value.upper()
        tokens.append(Token(kind, value, match.start(), extra))
        pos = match.end()
    return tokens
