"""The paper's G-CORE dialect (Section 4.2, Figures 6-7).

G-CORE [Angles et al., SIGMOD 2018] is the user-level language the paper
adopts, extended with ``WINDOW``/``SLIDE`` clauses on stream references.
This package implements the subset the paper exercises:

* ``PATH name = pattern, ...`` — named path-pattern definitions,
* ``CONSTRUCT (x)-[:label]->(y)`` — graph-returning output,
* ``MATCH pattern, ... ON stream WINDOW(24h) SLIDE(1h)`` — windowed
  pattern matching over (possibly several) streaming graphs,
* ``OPTIONAL pattern`` — alternative patterns (translated to unions, as
  in the paper's Example 4),
* ``WHERE (x) = (y)`` — join conditions across MATCH blocks,
* ASCII-art edges ``(x)-[:l]->(y)``, ``(x)<-[:l]-(y)`` and reachability
  ``(x)-/<:l*>/->(y)`` / ``(x)-/p<~RL*>/->(y)`` (the latter binds the
  materialized path to ``p``).

``parse_gcore`` returns an :class:`~repro.query.sgq.SGQ`, so G-CORE
queries run on the same engine as Datalog-formulated ones.
"""

from repro.gcore.parser import parse_gcore_query
from repro.gcore.translate import gcore_to_sgq


def parse_gcore(text: str):
    """Parse a G-CORE statement into an SGQ (parse + translate)."""
    return gcore_to_sgq(parse_gcore_query(text))


__all__ = ["parse_gcore", "parse_gcore_query", "gcore_to_sgq"]
