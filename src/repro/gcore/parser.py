"""Recursive-descent parser for the G-CORE dialect.

Grammar (keywords case-insensitive)::

    query     := view? path* construct match+ where?
    view      := 'GRAPH' 'VIEW' IDENT 'AS' '(' query-body ')'
    path      := 'PATH' IDENT '=' chain (',' chain)*
    construct := 'CONSTRUCT' '(' IDENT ')' EDGE '(' IDENT ')'
    match     := 'MATCH' chain (',' chain)* optional* on
    optional  := 'OPTIONAL' chain
    on        := 'ON' IDENT 'WINDOW' '(' duration ')'
                 ('SLIDE' '(' duration ')')?
    where     := 'WHERE' '(' IDENT ')' '=' '(' IDENT ')'
                 ('AND' '(' IDENT ')' '=' '(' IDENT ')')*
    chain     := node (edge node)*
    node      := '(' IDENT? ')'
    edge      := '-[:label]->' | '<-[:label]-'
               | '-/<:label*>/->' | '-/var<~Name*>/->'
    duration  := NUMBER unit?      # unit: h/hour(s), d/day(s), tick(s)

Durations translate to ticks via the dataset convention of 60 ticks per
hour (:mod:`repro.core.windows`).
"""

from __future__ import annotations

from repro.core.windows import DAY, HOUR
from repro.errors import ParseError
from repro.gcore.ast import (
    ChainPattern,
    Construct,
    EdgeHop,
    GCoreQuery,
    MatchBlock,
    NodeRef,
    PathDef,
    WindowSpec,
)
from repro.gcore.lexer import Token, normalize, tokenize_normalized

_UNITS = {
    "h": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "tick": 1,
    "ticks": 1,
}


class _Parser:
    def __init__(self, tokens: list[Token], source: str = ""):
        self._tokens = tokens
        self._source = source
        self._index = 0
        self._anon = 0

    def _fail(self, message: str, pos: int | None = None) -> ParseError:
        if pos is None:
            token = self._peek()
            pos = token.pos if token else len(self._source)
        return ParseError(message, pos, source=self._source)

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.kind if token else "end of input"
            pos = token.pos if token else len(self._source)
            raise self._fail(f"expected {kind}, found {found}", pos)
        return self._advance()

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def parse(self) -> GCoreQuery:
        view_name: str | None = None
        wrapped = False
        if self._at("GRAPH"):
            self._advance()
            self._expect("VIEW")
            view_name = self._expect("ident").value
            self._expect("AS")
            self._expect("lparen")
            wrapped = True

        paths: list[PathDef] = []
        while self._at("PATH"):
            paths.append(self._path_def())

        construct = self._construct()

        matches: list[MatchBlock] = []
        while self._at("MATCH"):
            matches.append(self._match_block())
        if not matches:
            raise self._fail("query requires at least one MATCH block")

        where: list[tuple[str, str]] = []
        if self._at("WHERE"):
            self._advance()
            where.append(self._equality())
            while self._at("AND"):
                self._advance()
                where.append(self._equality())

        if wrapped:
            self._expect("rparen")
        leftover = self._peek()
        if leftover is not None:
            raise self._fail(
                f"unexpected trailing token {leftover.value!r}", leftover.pos
            )

        return GCoreQuery(
            construct=construct,
            matches=tuple(matches),
            paths=tuple(paths),
            where=tuple(where),
            view_name=view_name,
        )

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def _path_def(self) -> PathDef:
        self._expect("PATH")
        name = self._expect("ident").value
        self._expect("eq")
        patterns = [self._chain()]
        while self._at("comma"):
            self._advance()
            patterns.append(self._chain())
        return PathDef(name, tuple(patterns))

    def _construct(self) -> Construct:
        self._expect("CONSTRUCT")
        chain = self._chain()
        if len(chain.hops) != 1 or chain.hops[0].reach:
            raise self._fail("CONSTRUCT expects a single edge pattern")
        hop = chain.hops[0]
        src, trg = chain.endpoints
        if hop.direction == "bwd":
            src, trg = trg, src
        return Construct(label=hop.label, src_var=src, trg_var=trg)

    def _match_block(self) -> MatchBlock:
        self._expect("MATCH")
        patterns = [self._chain()]
        while self._at("comma"):
            self._advance()
            patterns.append(self._chain())
        optionals: list[ChainPattern] = []
        while self._at("OPTIONAL"):
            self._advance()
            optionals.append(self._chain())
        self._expect("ON")
        stream = self._expect("ident").value
        self._expect("WINDOW")
        self._expect("lparen")
        size = self._duration()
        self._expect("rparen")
        slide = 1
        if self._at("SLIDE"):
            self._advance()
            self._expect("lparen")
            slide = self._duration()
            self._expect("rparen")
        return MatchBlock(
            patterns=tuple(patterns),
            optionals=tuple(optionals),
            stream=stream,
            window=WindowSpec(size=size, slide=slide),
        )

    def _equality(self) -> tuple[str, str]:
        self._expect("lparen")
        left = self._expect("ident").value
        self._expect("rparen")
        self._expect("eq")
        self._expect("lparen")
        right = self._expect("ident").value
        self._expect("rparen")
        return (left, right)

    def _duration(self) -> int:
        number = int(self._expect("number").value)
        token = self._peek()
        if token is not None and token.kind == "ident":
            unit = token.value.lower()
            if unit not in _UNITS:
                raise self._fail(
                    f"unknown duration unit {token.value!r}", token.pos
                )
            self._advance()
            return number * _UNITS[unit]
        return number

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def _chain(self) -> ChainPattern:
        nodes = [self._node()]
        hops: list[EdgeHop] = []
        while True:
            token = self._peek()
            if token is None or token.kind not in ("edge_fwd", "edge_bwd", "reach"):
                break
            token = self._advance()
            if token.kind == "edge_fwd":
                hops.append(EdgeHop(token.extra["label"], "fwd"))
            elif token.kind == "edge_bwd":
                hops.append(EdgeHop(token.extra["label"], "bwd"))
            else:
                hops.append(
                    EdgeHop(
                        token.extra["label"],
                        "fwd",
                        reach=True,
                        path_var=token.extra.get("path_var"),
                    )
                )
            nodes.append(self._node())
        return ChainPattern(tuple(nodes), tuple(hops))

    def _node(self) -> NodeRef:
        self._expect("lparen")
        if self._at("ident"):
            var = self._advance().value
        else:
            self._anon += 1
            var = f"_anon{self._anon}"
        self._expect("rparen")
        return NodeRef(var)


def parse_gcore_query(text: str) -> GCoreQuery:
    """Parse a G-CORE statement into its AST."""
    normalized = normalize(text)
    tokens = tokenize_normalized(normalized)
    if not tokens:
        raise ParseError("empty G-CORE query")
    return _Parser(tokens, normalized).parse()
