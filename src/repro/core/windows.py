"""Time-based sliding window specifications (Definition 16).

A :class:`SlidingWindow` ``W(T, beta)`` assigns to each input edge with
timestamp ``t`` the validity interval ``[t, floor(t / beta) * beta + T)``.
The window size ``T`` bounds how long a tuple stays relevant; the slide
interval ``beta`` controls the granularity at which the window moves (and,
operationally, the batch size at which expirations are processed).

``beta = 1`` is the paper's default ("NOW" windows): the window slides at
every time instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.intervals import Interval
from repro.errors import InvalidIntervalError

#: Named durations used by the datasets / benchmarks.  The synthetic
#: streams use "1 hour = 1 tick * HOUR" so that paper parameters (24h
#: windows, 1-day slides) translate directly.
HOUR = 60
DAY = 24 * HOUR


@dataclass(frozen=True, slots=True)
class SlidingWindow:
    """A time-based sliding window ``W(T, beta)``.

    Parameters
    ----------
    size:
        Window length ``T`` in time units.
    slide:
        Slide interval ``beta``; defaults to 1 (slide at every instant).
    """

    size: int
    slide: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise InvalidIntervalError(f"window size must be positive, got {self.size}")
        if self.slide <= 0:
            raise InvalidIntervalError(f"slide must be positive, got {self.slide}")

    def interval_for(self, t: int) -> Interval:
        """Validity interval assigned by WSCAN to an edge with timestamp t.

        Definition 16: ``exp = floor(t / beta) * beta + T``.  With
        ``beta = 1`` this is simply ``[t, t + T)``.
        """
        exp = (t // self.slide) * self.slide + self.size
        if exp <= t:
            # Degenerate configuration: the window is shorter than the
            # distance to the next slide boundary, so the edge would never
            # be visible.  Definition 16 implicitly assumes T >= beta.
            raise InvalidIntervalError(
                f"window size {self.size} smaller than slide {self.slide} "
                f"yields empty validity for t={t}"
            )
        return Interval(t, exp)

    def slide_boundary(self, t: int) -> int:
        """The most recent slide boundary at or before instant ``t``."""
        return (t // self.slide) * self.slide

    def next_boundary(self, t: int) -> int:
        """The first slide boundary strictly after instant ``t``."""
        return self.slide_boundary(t) + self.slide

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"W(T={self.size}, beta={self.slide})"
