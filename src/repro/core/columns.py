"""Columnar delta layout: parallel scalar columns instead of sgt objects.

Row-wise batched execution (PR 1) removed the per-hop ``Event`` wrapper
but still allocates an :class:`~repro.core.tuples.SGT`, an
:class:`~repro.core.intervals.Interval` and an
:class:`~repro.core.tuples.EdgePayload` per tuple per producing
operator.  With vertices dictionary-encoded as dense ids
(:mod:`repro.core.interning`), a delta batch needs no per-tuple objects
at all: a :class:`DeltaColumns` carries one label (batches are
label-constant along every dataflow edge — each physical operator has a
fixed output label) plus parallel ``src`` / ``dst`` / ``ts`` / ``exp``
columns of plain ints.  Hot operators iterate the columns directly;
anything that still wants rows (the per-tuple fallback shim, fanout
edges, sinks) materializes them lazily via
:meth:`~repro.core.batch.DeltaBatch.sgts`.

Column storage is representation-polymorphic: the ``"columnar"``
execution mode carries plain Python lists (element reads from an
``array('q')`` re-box every int, which makes pure-Python column loops
*slower* than list iteration), while the ``"vector"`` mode carries
numpy ``int64`` ndarrays end-to-end so kernels run as whole-column
array ops.  :class:`DeltaColumns` accepts either; kernels pick their
code path per batch via :func:`repro.core.nplib.is_array`, and every
row materialization point funnels through
:func:`repro.core.nplib.as_list` so numpy scalars never leak into
row-land (see :meth:`row_lists` / :meth:`taken`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.nplib import as_list, is_array
from repro.core.tuples import Label

#: Event signs (shared convention with :mod:`repro.dataflow.graph`).
INSERT = 1
DELETE = -1


class DeltaColumns:
    """One delta batch as parallel scalar columns.

    ``src`` and ``dst`` hold interned vertex ids, ``ts`` / ``exp`` the
    validity interval bounds; ``label`` is the single label shared by
    every row.  Columns are treated as immutable once emitted — relabel
    (UNION's degenerate form) shares the arrays of its input.
    """

    __slots__ = ("label", "src", "dst", "ts", "exp")

    def __init__(
        self,
        label: Label,
        src: Sequence[int],
        dst: Sequence[int],
        ts: Sequence[int],
        exp: Sequence[int],
    ):
        if not (len(src) == len(dst) == len(ts) == len(exp)):
            raise ValueError(
                "column length mismatch: "
                f"src={len(src)} dst={len(dst)} ts={len(ts)} exp={len(exp)}"
            )
        self.label = label
        self.src = src
        self.dst = dst
        self.ts = ts
        self.exp = exp

    def __len__(self) -> int:
        return len(self.src)

    def relabeled(self, label: Label) -> "DeltaColumns":
        """Same rows under a different label (columns shared, zero copy)."""
        return DeltaColumns(label, self.src, self.dst, self.ts, self.exp)

    def is_vector(self) -> bool:
        """True iff the columns are numpy arrays (vector execution)."""
        return is_array(self.src)

    def row_lists(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """All four columns as plain ``int`` lists.

        Zero copy for list-backed columns; one ``tolist()`` per column
        for array-backed ones.  This is the single safe gateway from
        vector batches back to row-land (decode, per-tuple shims,
        order-sensitive PATH ingest).
        """
        return (
            as_list(self.src),
            as_list(self.dst),
            as_list(self.ts),
            as_list(self.exp),
        )

    def taken(self, keep) -> "DeltaColumns":
        """The rows selected by ``keep`` under the same label.

        ``keep`` is a boolean mask or index array for array-backed
        columns (numpy fancy indexing, one C call per column) and a list
        of row indices for list-backed ones.
        """
        if is_array(self.src):
            return DeltaColumns(
                self.label,
                self.src[keep],
                self.dst[keep],
                self.ts[keep],
                self.exp[keep],
            )
        src, dst, ts, exp = self.src, self.dst, self.ts, self.exp
        return DeltaColumns(
            self.label,
            [src[i] for i in keep],
            [dst[i] for i in keep],
            [ts[i] for i in keep],
            [exp[i] for i in keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeltaColumns [{self.label}] x{len(self.src)}>"


class ColumnBuilder:
    """Append-side buffer for one operator's columnar output.

    Operators that emit while iterating an input batch (PATH expansions,
    join probes) append scalar rows here instead of constructing sgts;
    :meth:`take` converts the buffer into a :class:`DeltaColumns` plus
    the parallel sign list (``None`` while all rows are insertions — the
    hot-path common case, mirroring :class:`~repro.core.batch.DeltaBatch`).
    """

    __slots__ = ("label", "src", "dst", "ts", "exp", "signs")

    def __init__(self, label: Label):
        self.label = label
        self.src: list[int] = []
        self.dst: list[int] = []
        self.ts: list[int] = []
        self.exp: list[int] = []
        #: recorded lazily: stays ``None`` until the first retraction
        #: (the insert-only hot path never touches it)
        self.signs: list[int] | None = None

    def append(self, src: int, dst: int, ts: int, exp: int, sign: int = INSERT) -> None:
        if sign != INSERT and self.signs is None:
            self.signs = [INSERT] * len(self.src)
        self.src.append(src)
        self.dst.append(dst)
        self.ts.append(ts)
        self.exp.append(exp)
        if self.signs is not None:
            self.signs.append(sign)

    def __len__(self) -> int:
        return len(self.src)

    def take(self) -> tuple[DeltaColumns, list[int] | None]:
        columns = DeltaColumns(self.label, self.src, self.dst, self.ts, self.exp)
        return columns, self.signs
