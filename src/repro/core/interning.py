"""Dictionary encoding of vertices (and any hashable values) as dense ids.

The hot path of every stateful operator is dictionary traffic keyed on
vertices: adjacency maps, join tables, spanning-tree node keys.  The
benchmark streams (and real graph workloads) carry structured vertex
values — ``("P", 42)`` tuples, strings — whose hashing and equality cost
is paid again on every operator hop.  An :class:`Interner` assigns each
distinct value a dense ``int`` id at stream ingress; ids flow through the
operators (small-int hashing is a single machine word, and dense ids are
what lets :mod:`repro.core.columns` hold tuples as parallel scalar
columns), and are decoded back to the original values only at result
sinks and ``explain`` — never inside the dataflow.

Interning is a bijection, so equality and hashing over ids agree exactly
with equality and hashing over the original values; golden tests assert
the decoded results are bit-identical to un-interned execution.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.tuples import SGT, EdgePayload, PathPayload
from repro.dataflow.graph import Event
from repro.errors import DecodeError


class Interner:
    """A bijective value ⇄ dense-int dictionary (append-only).

    ``intern`` is the hot direction (one dict lookup); ``value`` is the
    cold decode used by result readers.  Ids are assigned contiguously
    from 0 in first-seen order, so they can index parallel arrays.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """The id of ``value``, assigning the next dense id if unseen."""
        ids = self._ids
        found = ids.get(value)
        if found is not None:
            return found
        assigned = len(self._values)
        ids[value] = assigned
        self._values.append(value)
        return assigned

    def intern_many(self, values: Iterable[Hashable]) -> list[int]:
        intern = self.intern
        return [intern(v) for v in values]

    def intern_edges(
        self, edges: Iterable
    ) -> tuple[list[int], list[int], list[int]]:
        """Bulk intern one ingress run: ``(src_ids, dst_ids, ts)`` columns.

        The vector ingress path interns whole per-slide label groups at
        once; inlining the id-map access here (one bound-method call per
        *run* instead of two per edge) is worth ~2 dict ops of Python
        call overhead per edge on the hot path.  Semantics are identical
        to calling :meth:`intern` per endpoint in stream order, so id
        assignment order — and therefore every downstream golden —
        is unchanged.
        """
        ids = self._ids
        values = self._values
        src_ids: list[int] = []
        dst_ids: list[int] = []
        ts: list[int] = []
        for edge in edges:
            for value, out in ((edge.src, src_ids), (edge.trg, dst_ids)):
                found = ids.get(value)
                if found is None:
                    found = len(values)
                    ids[value] = found
                    values.append(value)
                out.append(found)
            ts.append(edge.t)
        return src_ids, dst_ids, ts

    def value(self, ident: int) -> Hashable:
        """The original value of a previously assigned id.

        Raises
        ------
        DecodeError
            If ``ident`` was never assigned by this interner (negative,
            out of range, or not an int — e.g. an id from a different
            engine instance).  Without the check a negative id would
            silently decode to the *wrong* value via Python's negative
            indexing.
        """
        values = self._values
        if type(ident) is not int or not 0 <= ident < len(values):
            raise DecodeError(ident)
        return values[ident]

    def id_of(self, value: Hashable) -> int | None:
        """The id of ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interner {len(self)} values>"

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> list:
        """The dictionary in id order (the id map is derivable)."""
        return list(self._values)

    def restore_state(self, values: list) -> None:
        """Rebuild the bijection; re-interning any captured value yields
        exactly the id it had when the snapshot was taken."""
        self._values = list(values)
        self._ids = {value: ident for ident, value in enumerate(self._values)}

    # ------------------------------------------------------------------
    # Decoding (result-sink surface)
    # ------------------------------------------------------------------
    def decode_sgt(self, sgt: SGT) -> SGT:
        """An equal sgt with vertex ids replaced by their original values.

        Payloads are decoded too: a materialized path's hops carry vertex
        ids inside the dataflow, and requirement R3 (paths as data) means
        they are user-visible.  Ids unknown to this interner — including
        negative or non-int values, which raw list indexing would decode
        to the *wrong* value or crash on — raise
        :class:`~repro.errors.DecodeError` naming the offending id.
        This is a read surface (results are decoded once, at pull time),
        so the per-id bounds check is off the streaming hot path.
        """
        value = self.value
        payload = sgt.payload
        if payload.__class__ is PathPayload:
            decoded_payload: EdgePayload | PathPayload = PathPayload(
                tuple(
                    EdgePayload(value(hop.src), value(hop.trg), hop.label)
                    for hop in payload.hops
                )
            )
        else:
            decoded_payload = EdgePayload(
                value(payload.src), value(payload.trg), payload.label
            )
        return SGT(
            value(sgt.src),
            value(sgt.trg),
            sgt.label,
            sgt.interval,
            decoded_payload,
        )

    def decode_event(self, event: Event) -> Event:
        return Event(self.decode_sgt(event.sgt), event.sign)

    def decode_key(self, key: tuple) -> tuple:
        """Decode a ``(src, trg, label)`` result key.

        Raises :class:`~repro.errors.DecodeError` for ids this interner
        never assigned.
        """
        return (self.value(key[0]), self.value(key[1]), key[2])


def intern_plan(plan, interner: Interner):
    """Rewrite a logical plan's vertex-valued predicate constants to ids.

    Under interned execution, operators evaluate predicates against
    dense ids, so a predicate like ``src == "alice"`` must compare
    against ``intern("alice")``.  Labels are untouched (they are not
    interned — batches are label-constant, so labels flow as themselves).
    The rewritten plan is what the engine compiles; the original plan
    stays on the query handle for ``explain``.
    """
    import dataclasses

    from repro.algebra.operators import (
        Filter,
        Path,
        Pattern,
        Predicate,
        Relabel,
        Union,
        WScan,
    )

    def map_predicate(predicate):
        if predicate is None:
            return None
        conditions = tuple(
            (attribute, op, interner.intern(value))
            if attribute in ("src", "trg")
            else (attribute, op, value)
            for attribute, op, value in predicate.conditions
        )
        if conditions == predicate.conditions:
            return predicate
        return Predicate(conditions)

    def rec(node):
        if isinstance(node, WScan):
            prefilter = map_predicate(node.prefilter)
            if prefilter is node.prefilter:
                return node
            return dataclasses.replace(node, prefilter=prefilter)
        if isinstance(node, Filter):
            return Filter(rec(node.child), map_predicate(node.predicate))
        if isinstance(node, Relabel):
            return Relabel(rec(node.child), node.label)
        if isinstance(node, Union):
            return Union(rec(node.left), rec(node.right), node.label)
        if isinstance(node, Pattern):
            return dataclasses.replace(
                node,
                inputs=tuple(
                    dataclasses.replace(c, plan=rec(c.plan))
                    for c in node.inputs
                ),
            )
        if isinstance(node, Path):
            return dataclasses.replace(
                node,
                inputs=tuple((label, rec(child)) for label, child in node.inputs),
            )
        return node

    return rec(plan)
