"""Half-open validity intervals (Definition 5).

A validity interval ``[ts, exp)`` contains every time instant ``t`` with
``ts <= t < exp``.  Timestamps are non-negative integers drawn from a
discrete, totally ordered time domain; the paper (and this library) uses
integers without loss of generality.

Intervals are immutable value objects.  All set-style operations
(:meth:`Interval.intersect`, :meth:`Interval.union`, overlap tests) are
defined here so that operator implementations never manipulate raw
``(ts, exp)`` pairs.
"""

from __future__ import annotations

from repro.errors import InvalidIntervalError

#: Sentinel expiry for tuples that never expire (e.g. unwindowed streams).
FOREVER = 2**62


class Interval:
    """A half-open time interval ``[ts, exp)``.

    An immutable-by-convention value object.  Intervals are created in
    the innermost loops of every operator (one per windowed tuple, one
    per join result), so this is a hand-written ``__slots__`` class
    rather than a frozen dataclass: construction is a single direct
    attribute assignment instead of per-field ``object.__setattr__``
    calls, roughly 3× faster at the same semantics (value equality,
    hashability, lexicographic ordering on ``(ts, exp)``).

    Parameters
    ----------
    ts:
        Inclusive start instant.
    exp:
        Exclusive end instant; must be strictly greater than ``ts``.
    """

    __slots__ = ("ts", "exp")

    def __init__(self, ts: int, exp: int):
        if exp <= ts:
            raise InvalidIntervalError(
                f"empty or inverted interval [{ts}, {exp})"
            )
        self.ts = ts
        self.exp = exp

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Interval:
            return self.ts == other.ts and self.exp == other.exp  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ts, self.exp))

    def __lt__(self, other: "Interval") -> bool:
        if other.__class__ is not Interval:
            return NotImplemented
        return (self.ts, self.exp) < (other.ts, other.exp)

    def __le__(self, other: "Interval") -> bool:
        if other.__class__ is not Interval:
            return NotImplemented
        return (self.ts, self.exp) <= (other.ts, other.exp)

    def __gt__(self, other: "Interval") -> bool:
        if other.__class__ is not Interval:
            return NotImplemented
        return (self.ts, self.exp) > (other.ts, other.exp)

    def __ge__(self, other: "Interval") -> bool:
        if other.__class__ is not Interval:
            return NotImplemented
        return (self.ts, self.exp) >= (other.ts, other.exp)

    def __repr__(self) -> str:
        return f"Interval(ts={self.ts!r}, exp={self.exp!r})"

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def contains(self, t: int) -> bool:
        """Return True iff instant ``t`` lies inside the interval."""
        return self.ts <= t < self.exp

    def is_expired_at(self, t: int) -> bool:
        """Return True iff the interval ends at or before instant ``t``."""
        return self.exp <= t

    @property
    def duration(self) -> int:
        """Number of instants covered by the interval."""
        return self.exp - self.ts

    # ------------------------------------------------------------------
    # Binary relations
    # ------------------------------------------------------------------
    def overlaps(self, other: "Interval") -> bool:
        """Return True iff the two intervals share at least one instant."""
        return self.ts < other.exp and other.ts < self.exp

    def adjacent(self, other: "Interval") -> bool:
        """Return True iff the intervals abut without overlapping."""
        return self.exp == other.ts or other.exp == self.ts

    def mergeable(self, other: "Interval") -> bool:
        """Return True iff the intervals overlap or are adjacent.

        Mergeable intervals can be coalesced into a single interval without
        covering instants that belong to neither input (Definition 11
        applies only to such intervals).
        """
        return self.overlaps(other) or self.adjacent(other)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the common sub-interval, or None when disjoint.

        PATTERN and PATH use intersection to compute the validity of derived
        tuples: a join result is valid exactly when all of its participating
        tuples are simultaneously valid (Definitions 19 and 20).
        """
        ts = max(self.ts, other.ts)
        exp = min(self.exp, other.exp)
        if ts >= exp:
            return None
        return Interval(ts, exp)

    def union(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both inputs.

        Only meaningful for mergeable intervals; raises otherwise because a
        union of disjoint intervals would fabricate validity.
        """
        if not self.mergeable(other):
            raise InvalidIntervalError(
                f"cannot union disjoint intervals {self} and {other}"
            )
        return Interval(min(self.ts, other.ts), max(self.exp, other.exp))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.ts}, {self.exp})"


def intersect_all(intervals: "list[Interval]") -> "Interval | None":
    """Intersect a non-empty list of intervals; None when empty overall."""
    if not intervals:
        raise InvalidIntervalError("intersect_all requires at least one interval")
    ts = max(iv.ts for iv in intervals)
    exp = min(iv.exp for iv in intervals)
    if ts >= exp:
        return None
    return Interval(ts, exp)


def net_cover(
    plus: "list[Interval]", minus: "list[Interval]"
) -> "list[Interval]":
    """Multiset difference of instant covers.

    Each interval in ``plus`` contributes +1 support to its instants and
    each in ``minus`` contributes -1; the result covers exactly the
    instants with positive net support, coalesced.  This is how sinks fold
    insertion and retraction events: retracting one of two overlapping
    derivations must keep the shared instants covered (counting
    semantics), which plain set subtraction would lose.
    """
    boundaries: dict[int, int] = {}
    for iv in plus:
        boundaries[iv.ts] = boundaries.get(iv.ts, 0) + 1
        boundaries[iv.exp] = boundaries.get(iv.exp, 0) - 1
    for iv in minus:
        boundaries[iv.ts] = boundaries.get(iv.ts, 0) - 1
        boundaries[iv.exp] = boundaries.get(iv.exp, 0) + 1

    result: list[Interval] = []
    support = 0
    start: int | None = None
    for point in sorted(boundaries):
        support += boundaries[point]
        if support > 0 and start is None:
            start = point
        elif support <= 0 and start is not None:
            if point > start:
                result.append(Interval(start, point))
            start = None
    return cover(result)


def subtract_cover(
    plus: "list[Interval]", minus: "list[Interval]"
) -> "list[Interval]":
    """Set difference of instant covers: instants in ``plus`` not in ``minus``.

    Both inputs may be arbitrary (overlapping, unsorted) interval lists;
    the result is disjoint, sorted, coalesced.  Sinks use this to apply
    retraction (negative-tuple) events to accumulated results.
    """
    kept = cover(plus)
    removed = cover(minus)
    result: list[Interval] = []
    index = 0
    for iv in kept:
        start = iv.ts
        while index < len(removed) and removed[index].exp <= start:
            index += 1
        cursor = index
        while cursor < len(removed) and removed[cursor].ts < iv.exp:
            cut = removed[cursor]
            if cut.ts > start:
                result.append(Interval(start, cut.ts))
            start = max(start, cut.exp)
            if start >= iv.exp:
                break
            cursor += 1
        if start < iv.exp:
            result.append(Interval(start, iv.exp))
    return result


def cover(intervals: "list[Interval]") -> "list[Interval]":
    """Normalize a list of intervals into disjoint, sorted, coalesced form.

    The result covers exactly the same set of instants as the input.  Used
    by tests to compare the *validity sets* produced by different physical
    operators irrespective of how they chop results into tuples.
    """
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: (iv.ts, iv.exp))
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if last.mergeable(iv):
            merged[-1] = last.union(iv)
        else:
            merged.append(iv)
    return merged
