"""Streaming graph edges and tuples (Definitions 3 and 7).

Two tuple shapes flow through the system:

* :class:`SGE` — a *streaming graph edge* ``(src, trg, label, t)`` as it
  arrives from an external source.  Sges carry a single event timestamp.
* :class:`SGT` — a *streaming graph tuple*
  ``(src, trg, label, [ts, exp), D)``.  Sgts generalize sges: they carry a
  validity interval assigned by the windowing operator and a payload ``D``
  recording the input edges that produced the tuple.  An sgt represents an
  input edge, a *derived* edge (an operator result), or a *materialized
  path* (a sequence of edges).

Vertices and labels are plain hashable Python values (typically ``str`` or
``int``); the library never interprets them beyond equality and hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.intervals import Interval

Vertex = Hashable
Label = str


@dataclass(frozen=True, slots=True)
class SGE:
    """A streaming graph edge: one element of an input graph stream.

    Attributes
    ----------
    src, trg:
        Endpoints of the edge.
    label:
        Edge label drawn from the input alphabet ``phi(E_I)``.
    t:
        Event (application) timestamp assigned by the source.
    """

    src: Vertex
    trg: Vertex
    label: Label
    t: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.src}-[{self.label}@{self.t}]->{self.trg}"


class EdgePayload:
    """Payload of an sgt that represents a single (input or derived) edge.

    A hand-written ``__slots__`` value class (not a frozen dataclass):
    one is allocated per windowed tuple and per derived edge, so cheap
    construction matters — see :class:`repro.core.intervals.Interval`.
    """

    __slots__ = ("src", "trg", "label")

    def __init__(self, src: Vertex, trg: Vertex, label: Label):
        self.src = src
        self.trg = trg
        self.label = label

    def __eq__(self, other: object) -> bool:
        if other.__class__ is EdgePayload:
            return (
                self.src == other.src  # type: ignore[union-attr]
                and self.trg == other.trg  # type: ignore[union-attr]
                and self.label == other.label  # type: ignore[union-attr]
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.src, self.trg, self.label))

    def __repr__(self) -> str:
        return (
            f"EdgePayload(src={self.src!r}, trg={self.trg!r}, "
            f"label={self.label!r})"
        )

    def edges(self) -> "tuple[EdgePayload, ...]":
        return (self,)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.src},{self.label},{self.trg})"


class PathPayload:
    """Payload of an sgt that represents a materialized path.

    The payload stores the ordered sequence of hops that form the path;
    each hop is itself an :class:`EdgePayload`.  Treating paths as data is
    requirement R3 of the paper: queries can return and manipulate them.
    """

    __slots__ = ("hops",)

    def __init__(self, hops: "tuple[EdgePayload, ...]"):
        self.hops = hops

    def __eq__(self, other: object) -> bool:
        if other.__class__ is PathPayload:
            return self.hops == other.hops  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.hops)

    def __repr__(self) -> str:
        return f"PathPayload(hops={self.hops!r})"

    def edges(self) -> "tuple[EdgePayload, ...]":
        return self.hops

    @property
    def length(self) -> int:
        return len(self.hops)

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        """Ordered vertex sequence visited by the path."""
        if not self.hops:
            return ()
        verts = [self.hops[0].src]
        verts.extend(hop.trg for hop in self.hops)
        return tuple(verts)

    def label_sequence(self) -> tuple[Label, ...]:
        """The word phi_p(p): concatenation of the hop labels."""
        return tuple(hop.label for hop in self.hops)

    def concat(self, other: "PathPayload") -> "PathPayload":
        """Concatenate two paths; the endpoints must chain."""
        if self.hops and other.hops and self.hops[-1].trg != other.hops[0].src:
            raise ValueError(
                f"paths do not chain: {self.hops[-1].trg} != {other.hops[0].src}"
            )
        return PathPayload(self.hops + other.hops)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "<" + ", ".join(str(h) for h in self.hops) + ">"


Payload = EdgePayload | PathPayload


class SGT:
    """A streaming graph tuple (Definition 7).

    The *distinguished* attributes are ``src``, ``trg`` and ``label``; two
    sgts are value-equivalent (Definition 10) iff these agree.  The
    *non-distinguished* attributes are the validity ``interval`` and the
    ``payload`` D.

    Equality and hashing cover ``(src, trg, label, interval)`` — the
    payload is excluded, exactly as the former dataclass declared with
    ``field(compare=False)``.  Like :class:`Interval`, this is a
    hand-written ``__slots__`` class because sgts are allocated on every
    operator hop of every tuple.

    The default edge payload is materialized *lazily*: most sgts never
    have their payload read (it matters only at result sinks and for
    materialized paths), so construction skips the
    :class:`EdgePayload` allocation and the ``payload`` property builds
    it on first access.
    """

    __slots__ = ("src", "trg", "label", "interval", "_payload")

    def __init__(
        self,
        src: Vertex,
        trg: Vertex,
        label: Label,
        interval: Interval,
        payload: Payload | None = None,
    ):
        self.src = src
        self.trg = trg
        self.label = label
        self.interval = interval
        self._payload = payload

    @property
    def payload(self) -> Payload:
        payload = self._payload
        if payload is None:
            payload = self._payload = EdgePayload(self.src, self.trg, self.label)
        return payload

    def __eq__(self, other: object) -> bool:
        if other.__class__ is SGT:
            return (
                self.src == other.src  # type: ignore[union-attr]
                and self.trg == other.trg  # type: ignore[union-attr]
                and self.label == other.label  # type: ignore[union-attr]
                and self.interval == other.interval  # type: ignore[union-attr]
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.src, self.trg, self.label, self.interval))

    def __repr__(self) -> str:
        return (
            f"SGT(src={self.src!r}, trg={self.trg!r}, label={self.label!r}, "
            f"interval={self.interval!r}, payload={self.payload!r})"
        )

    # ------------------------------------------------------------------
    # Convenience accessors mirroring the paper's notation
    # ------------------------------------------------------------------
    @property
    def ts(self) -> int:
        return self.interval.ts

    @property
    def exp(self) -> int:
        return self.interval.exp

    def key(self) -> tuple[Vertex, Vertex, Label]:
        """The value-equivalence key (Definition 10)."""
        return (self.src, self.trg, self.label)

    def value_equivalent(self, other: "SGT") -> bool:
        """True iff the two sgts represent the same edge or path."""
        return self.key() == other.key()

    def is_path(self) -> bool:
        # Checked against the raw slot: a lazily defaulted payload is an
        # EdgePayload by construction, no need to materialize it.
        return isinstance(self._payload, PathPayload)

    def valid_at(self, t: int) -> bool:
        return self.interval.contains(t)

    def with_interval(self, interval: Interval) -> "SGT":
        # Forces the payload so both sgts share one object (cold path).
        return SGT(self.src, self.trg, self.label, interval, self.payload)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.src}-[{self.label} {self.interval}]->{self.trg}"


def sgt_from_sge(edge: SGE, interval: Interval) -> SGT:
    """Wrap an input edge into an sgt with the given validity interval."""
    return SGT(edge.src, edge.trg, edge.label, interval)
