"""Batched delta processing: the value type and scheduler shared by the
SGA dataflow executor and the DD baseline engine.

Tuple-at-a-time execution pays Python call overhead at every operator hop
for every sgt, which caps throughput far below what the algorithms allow
and lets the SGA-vs-DD comparison measure interpreter overhead instead of
algorithmic difference.  This module provides the common machinery both
engines are driven by:

* :class:`DeltaBatch` — a group of INSERT/DELETE sgts sharing one slide
  epoch.  The insert-only common case stores bare sgts (no per-event
  wrapper objects at all); mixed batches carry a parallel sign list so
  event order — which is semantically significant for retractions — is
  preserved exactly.
* :class:`SlideStats` / :class:`RunStats` — per-slide wall-clock
  accounting, previously duplicated between the two engines.
* :class:`BatchScheduler` — the one loop that consumes a timestamp-ordered
  sge stream, accumulates edges per slide boundary (optionally capped at a
  batch size), times each flush, and hands `(boundary, edges)` batches to
  an engine-specific ``apply`` callable.  Both engines now share this
  driver, so benchmark differences between them reflect the algorithms,
  not the drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT

#: Event signs (shared convention with :mod:`repro.dataflow.graph`).
INSERT = 1
DELETE = -1


class DeltaBatch:
    """A group of sgt deltas that share one slide epoch.

    Parameters
    ----------
    boundary:
        The slide boundary the batch belongs to (the watermark has been
        advanced to this boundary before the batch flows).
    sgts:
        The sgts, in arrival order — or ``None`` when the batch carries
        ``columns`` instead (rows are then materialized lazily on first
        access, e.g. by the per-tuple fallback shim or a fanout edge).
    signs:
        Parallel list of signs (+1 insert / -1 delete), or ``None`` when
        every delta is an insertion — the hot-path common case, which
        spares one wrapper object per event.
    columns:
        Optional :class:`~repro.core.columns.DeltaColumns` view: the same
        deltas as parallel scalar columns of interned ids.  Columnar
        operators iterate this directly and never touch ``sgts``.

    Order within a batch is meaningful and preserved end to end: a
    retraction must observe the effects of the insertions that preceded
    it, and order-sensitive operators (the expand-only negative-tuple RPQ
    keeps the *first* derivation it finds) produce different — wrong —
    output if a batch is reordered.
    """

    __slots__ = ("boundary", "_sgts", "signs", "columns")

    def __init__(
        self,
        boundary: int,
        sgts: list[SGT] | None = None,
        signs: list[int] | None = None,
        columns=None,
    ):
        if sgts is None and columns is None:
            raise ValueError("DeltaBatch requires sgts or columns")
        length = len(sgts) if sgts is not None else len(columns)
        if signs is not None and len(signs) != length:
            raise ValueError(
                f"signs length {len(signs)} != batch length {length}"
            )
        self.boundary = boundary
        self._sgts = sgts
        self.signs = signs
        self.columns = columns

    @property
    def sgts(self) -> list[SGT]:
        """Row view; materialized from the columns on first access.

        Materialized rows carry interned vertex ids (decoding happens
        only at result-sink read time), a per-row
        :class:`~repro.core.intervals.Interval` and the default edge
        payload — exactly what the row-wise producers would have built.
        """
        rows = self._sgts
        if rows is None:
            cols = self.columns
            label = cols.label
            # row_lists() converts array-backed (vector-mode) columns to
            # plain ints in one C call per column — numpy scalars must
            # never reach SGT fields (decode rejects non-int ids).
            src, dst, ts_col, exp_col = cols.row_lists()
            rows = [
                SGT(s, d, label, Interval(ts, exp))
                for s, d, ts, exp in zip(src, dst, ts_col, exp_col)
            ]
            self._sgts = rows
        return rows

    @property
    def insert_only(self) -> bool:
        return self.signs is None

    def events(self) -> Iterator[tuple[SGT, int]]:
        """Iterate ``(sgt, sign)`` pairs in arrival order."""
        if self.signs is None:
            for sgt in self.sgts:
                yield sgt, INSERT
        else:
            yield from zip(self.sgts, self.signs)

    @property
    def inserts(self) -> list[SGT]:
        if self.signs is None:
            return self.sgts
        return [s for s, sign in zip(self.sgts, self.signs) if sign == INSERT]

    @property
    def deletes(self) -> list[SGT]:
        if self.signs is None:
            return []
        return [s for s, sign in zip(self.sgts, self.signs) if sign == DELETE]

    def __len__(self) -> int:
        if self._sgts is not None:
            return len(self._sgts)
        return len(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "+" if self.signs is None else "±"
        form = "col" if self.columns is not None else "row"
        return f"<DeltaBatch @{self.boundary} {kind}{len(self)} {form}>"


@dataclass
class SlideStats:
    """Wall-clock accounting for one window slide (one DD epoch)."""

    boundary: int
    seconds: float = 0.0
    edges: int = 0
    batches: int = 0


@dataclass
class RunStats:
    """Aggregate statistics of one execution (either engine)."""

    slides: list[SlideStats] = field(default_factory=list)
    total_edges: int = 0
    total_seconds: float = 0.0

    @property
    def epochs(self) -> list[SlideStats]:
        """DD vocabulary: one epoch per slide."""
        return self.slides

    @property
    def total_batches(self) -> int:
        return sum(s.batches for s in self.slides)

    @property
    def throughput(self) -> float:
        """Edges per second over the whole run."""
        if self.total_seconds == 0:
            return float("inf")
        return self.total_edges / self.total_seconds

    def tail_latency(self, quantile: float = 0.99) -> float:
        """The ``quantile`` (default p99) of per-slide processing time."""
        if not self.slides:
            return 0.0
        ordered = sorted(s.seconds for s in self.slides)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]


class BatchScheduler:
    """Accumulates a timestamp-ordered sge stream into per-slide batches.

    Parameters
    ----------
    boundary_of:
        Maps an event timestamp to its slide boundary — either a
        callable, or (the fast path) a positive ``int`` slide interval
        ``beta``, for which the scheduler computes
        ``(t // beta) * beta`` inline instead of paying one Python call
        per stream element.
    batch_size:
        Maximum edges per flush.  ``None`` flushes once per slide (DD's
        epoch batching, and the SGA executor's whole-slide batches); a
        positive value also flushes whenever that many edges of the
        current slide have accumulated, bounding both memory and the
        latency contributed by batching.
    on_late:
        Invoked as ``on_late(edge, boundary)`` for each *late* edge — one
        whose slide boundary precedes ``boundary``, the slide currently
        being accumulated.  When the callback returns ``True`` the edge
        is still appended to the current batch (it keeps its own
        timestamp; it is never reassigned to the wrong slide); ``False``
        discards it.  Without a callback late edges are kept.

    The scheduler times every flush and attributes it to the slide it
    belongs to, so per-slide latency reflects processing cost only (not
    the time spent waiting for stream elements).
    """

    def __init__(
        self,
        boundary_of: Callable[[int], int] | int,
        batch_size: int | None = None,
        on_late: Callable[[SGE, int], bool] | None = None,
    ):
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if isinstance(boundary_of, int) and boundary_of < 1:
            raise ValueError(f"slide must be >= 1, got {boundary_of}")
        self.boundary_of = boundary_of
        self.batch_size = batch_size
        self.on_late = on_late

    def run(
        self,
        stream: Iterable[SGE],
        apply: Callable[[int, list[SGE]], None],
    ) -> RunStats:
        """Drive ``apply(boundary, edges)`` over the whole stream.

        ``apply`` must consume the edge list immediately (it is reused
        between flushes).
        """
        stats = RunStats()
        boundary_of = self.boundary_of
        slide = boundary_of if isinstance(boundary_of, int) else None
        batch_size = self.batch_size
        on_late = self.on_late
        pending: list[SGE] = []
        current: SlideStats | None = None
        start = time.perf_counter()

        for edge in stream:
            if slide is not None:
                boundary = edge.t // slide * slide
            else:
                boundary = boundary_of(edge.t)
            if current is None:
                current = SlideStats(boundary=boundary)
            elif boundary > current.boundary:
                self._flush(pending, current, apply)
                stats.slides.append(current)
                stats.total_edges += current.edges
                current = SlideStats(boundary=boundary)
            elif boundary < current.boundary:
                if on_late is not None and not on_late(edge, current.boundary):
                    continue
            pending.append(edge)
            if batch_size is not None and len(pending) >= batch_size:
                self._flush(pending, current, apply)

        if current is not None:
            self._flush(pending, current, apply)
            stats.slides.append(current)
            stats.total_edges += current.edges
        stats.total_seconds = time.perf_counter() - start
        return stats

    @staticmethod
    def _flush(
        pending: list[SGE],
        current: SlideStats,
        apply: Callable[[int, list[SGE]], None],
    ) -> None:
        if not pending:
            return
        started = time.perf_counter()
        apply(current.boundary, pending)
        current.seconds += time.perf_counter() - started
        current.edges += len(pending)
        current.batches += 1
        pending.clear()
