"""Int64 open-addressing hash table for interned-key operator state.

Under interned execution every hot key is a dense non-negative ``int64``
(vertex ids from :mod:`repro.core.interning`, or a few of them packed
into one word).  Dict-of-tuple state pays a tuple allocation plus a
tuple hash per operation on such keys; this module provides the
arrangement-style alternative: a flat open-addressing table mapping
``int64 → int`` with the key and value columns stored as parallel
arrays — numpy ``int64`` ndarrays when the vector extra is installed,
plain Python lists otherwise (gated through :mod:`repro.core.nplib`,
same policy as every other kernel).

Design notes:

* **Fibonacci hashing** (multiply by the 64-bit golden-ratio constant,
  take the top bits) spreads the dense, low-entropy interned ids across
  the table; probing is linear with wraparound.
* **Deletions** leave tombstones; a rehash (growth or same-size sweep)
  drops them.  Load factor including tombstones is kept under 2/3.
* **Scalar ops** (:meth:`get` / :meth:`put` / :meth:`delete`) are plain
  Python loops — on single keys a CPython ``dict`` is unbeatable, and
  the point of this table is not to race it one key at a time.  The
  win is the **batched ops**: :meth:`get_many` probes a whole key
  column with vectorized array arithmetic (one multiply/shift/gather
  per probe round for the entire batch), which is what the batched
  insert-and-probe join kernel and bulk state rebuilds consume.
* Iteration order over :meth:`items` is table order, **not** insertion
  order — nothing order-sensitive (snapshots, drain paths) may iterate
  this table; owners keep their own insertion-ordered sidecars.

Keys must be non-negative (``-1`` / ``-2`` are the internal
empty/tombstone sentinels); values are arbitrary ints ≥ 0 with ``-1``
reserved as the caller-visible "missing" default.
"""

from __future__ import annotations

from repro.core.nplib import HAVE_NUMPY, np

__all__ = ["Int64Table", "pack2", "pack3", "PACK_LIMIT"]

_MASK64 = (1 << 64) - 1
#: 2**64 / golden ratio, the classic Fibonacci-hashing multiplier.
_PHI = 0x9E3779B97F4A7C15
_EMPTY = -1
_TOMBSTONE = -2

#: Component bound for :func:`pack2` / :func:`pack3` (21 bits each):
#: three packed components stay below 2**63.
PACK_LIMIT = 1 << 21


def pack2(a: int, b: int) -> int:
    """Two interned ids as one int64 key (components < :data:`PACK_LIMIT`)."""
    return (a << 21) | b


def pack3(a: int, b: int, c: int) -> int:
    """Three interned ids as one int64 key (components < :data:`PACK_LIMIT`)."""
    return (a << 42) | (b << 21) | c


class Int64Table:
    """Open-addressing map ``int64 → int`` over parallel key/value columns.

    ``backend`` is ``"auto"`` (numpy when available), ``"numpy"`` or
    ``"python"`` — the python backend runs the identical algorithm over
    plain lists, so the property tests exercise the same probe sequences
    on both.
    """

    __slots__ = ("_keys", "_vals", "_cap", "_shift", "_size", "_used", "_numpy")

    def __init__(self, capacity: int = 16, backend: str = "auto"):
        if backend == "auto":
            use_numpy = HAVE_NUMPY
        elif backend == "numpy":
            if not HAVE_NUMPY:
                raise ImportError("Int64Table(backend='numpy') requires numpy")
            use_numpy = True
        elif backend == "python":
            use_numpy = False
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self._numpy = use_numpy
        cap = 8
        while cap < capacity:
            cap <<= 1
        self._alloc(cap)

    def _alloc(self, cap: int) -> None:
        self._cap = cap
        self._shift = 64 - cap.bit_length() + 1  # cap = 2**k → shift 64-k
        self._size = 0  # live entries
        self._used = 0  # live + tombstones
        if self._numpy:
            self._keys = np.full(cap, _EMPTY, dtype=np.int64)
            self._vals = np.zeros(cap, dtype=np.int64)
        else:
            self._keys = [_EMPTY] * cap
            self._vals = [0] * cap

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.get(key) != -1

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------
    def get(self, key: int, default: int = -1) -> int:
        """The value stored under ``key`` (``default`` when absent)."""
        keys = self._keys
        mask = self._cap - 1
        idx = ((key * _PHI) & _MASK64) >> self._shift
        while True:
            stored = keys[idx]
            if stored == key:
                return int(self._vals[idx])
            if stored == _EMPTY:
                return default
            idx = (idx + 1) & mask

    def put(self, key: int, value: int) -> None:
        """Insert ``key → value`` (overwrites an existing entry)."""
        if key < 0:
            raise ValueError(f"Int64Table keys must be non-negative, got {key}")
        if (self._used + 1) * 3 >= self._cap * 2:
            self._rehash()
        keys = self._keys
        mask = self._cap - 1
        idx = ((key * _PHI) & _MASK64) >> self._shift
        grave = -1
        while True:
            stored = keys[idx]
            if stored == key:
                self._vals[idx] = value
                return
            if stored == _EMPTY:
                if grave >= 0:
                    idx = grave  # reuse the tombstone slot
                else:
                    self._used += 1
                keys[idx] = key
                self._vals[idx] = value
                self._size += 1
                return
            if stored == _TOMBSTONE and grave < 0:
                grave = idx
            idx = (idx + 1) & mask

    def delete(self, key: int) -> bool:
        """Remove ``key``; ``False`` when it was absent."""
        keys = self._keys
        mask = self._cap - 1
        idx = ((key * _PHI) & _MASK64) >> self._shift
        while True:
            stored = keys[idx]
            if stored == key:
                keys[idx] = _TOMBSTONE
                self._size -= 1
                return True
            if stored == _EMPTY:
                return False
            idx = (idx + 1) & mask

    def _rehash(self) -> None:
        """Grow (or sweep tombstones) into a fresh table."""
        old_keys, old_vals = self._keys, self._vals
        old_cap = self._cap
        # Grow only when live entries justify it; a tombstone-heavy
        # table rehashes at the same capacity.
        cap = old_cap * 2 if (self._size + 1) * 3 >= old_cap * 2 else old_cap
        self._alloc(cap)
        keys = self._keys
        vals = self._vals
        mask = cap - 1
        shift = self._shift
        size = 0
        for i in range(old_cap):
            key = old_keys[i]
            if key < 0:
                continue
            key = int(key)
            idx = ((key * _PHI) & _MASK64) >> shift
            while keys[idx] != _EMPTY:
                idx = (idx + 1) & mask
            keys[idx] = key
            vals[idx] = old_vals[i]
            size += 1
        self._size = size
        self._used = size

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def get_many(self, keys):
        """Values for a whole key column (``-1`` where absent).

        Numpy backend: vectorized probing — every unresolved key
        advances one linear-probe step per round, with one hash /
        gather / compare over the entire batch per round.  Python
        backend (or list input): scalar fallback loop.  Returns an
        ``int64`` ndarray (numpy backend with array input) or a list.
        """
        if self._numpy and np is not None and not isinstance(keys, list):
            probe = np.asarray(keys, dtype=np.int64)
            n = probe.shape[0]
            out = np.full(n, -1, dtype=np.int64)
            if n == 0:
                return out
            mask_cap = np.uint64(self._cap - 1)
            idx = (
                (probe.astype(np.uint64) * np.uint64(_PHI))
                >> np.uint64(self._shift)
            ).astype(np.int64)
            pending = np.arange(n)
            table_keys = self._keys
            table_vals = self._vals
            while pending.shape[0]:
                slots = idx[pending]
                stored = table_keys[slots]
                wanted = probe[pending]
                hit = stored == wanted
                if hit.any():
                    rows = pending[hit]
                    out[rows] = table_vals[slots[hit]]
                # Keys neither found nor provably absent probe onward.
                unresolved = ~hit & (stored != _EMPTY)
                pending = pending[unresolved]
                if pending.shape[0]:
                    idx[pending] = (
                        (idx[pending] + 1).astype(np.uint64) & mask_cap
                    ).astype(np.int64)
            return out
        get = self.get
        return [get(int(key)) for key in keys]

    def put_many(self, keys, values) -> None:
        """Bulk insert/overwrite (scalar loop — insertion order is
        semantically relevant for duplicate keys, so batches are not
        reordered)."""
        put = self.put
        for key, value in zip(keys, values):
            put(int(key), int(value))

    def items(self):
        """Live ``(key, value)`` pairs in *table* order (diagnostics /
        tests only — not insertion order; see module docstring)."""
        keys = self._keys
        vals = self._vals
        for i in range(self._cap):
            key = keys[i]
            if key >= 0:
                yield int(key), int(vals[i])
