"""Hierarchical timing wheel: O(1)-amortized window expiry.

Every stateful operator must evict tuples whose validity interval ended
at or before the watermark.  The historical implementation kept one
``heapq`` entry per stored tuple, paying ``O(log n)`` per insertion and
per eviction plus tuple-comparison overhead on every sift.  But expiry
timestamps in this system are heavily quantized — Definition 16 assigns
``exp = floor(t / beta) * beta + T``, so at most one distinct expiry
instant exists per slide — which makes a *timing wheel* the natural
index: a bucket per distinct expiry instant, insertion appends to a
bucket, and advancing the watermark drains whole buckets.  Work is
proportional to what actually expires, never to what is stored, and the
residual heap ordering cost is paid per *distinct expiry instant*
instead of per tuple.

The wheel is hierarchical: entries expiring within ``span`` ticks of the
watermark live in fine buckets (one per exact instant); entries further
out are parked in coarse buckets covering ``span`` ticks each and are
cascaded into fine buckets only when the watermark approaches — so even
pathological far-future expiries (e.g. :data:`~repro.core.intervals.FOREVER`
sentinels) cost one list append, not a heap sift against the whole
wheel.

Drain order matches the heaps it replaces: nondecreasing expiry instant,
FIFO within one instant.
"""

from __future__ import annotations

import heapq

__all__ = ["TimingWheel"]

#: Fine-level span: entries expiring within this many ticks of the
#: current watermark get an exact-instant bucket.  2**16 comfortably
#: covers every window size in the benchmarks (a "31-day" window at the
#: 60-ticks-per-hour convention is 44640 ticks).
_DEFAULT_SPAN = 1 << 16


class TimingWheel:
    """Buckets of items keyed on absolute expiry instants.

    ``schedule(exp, item)`` files ``item`` under instant ``exp``;
    ``advance(t)`` removes and returns every item with ``exp <= t``.
    Items are arbitrary objects (operators schedule the keys they need
    to re-check); like the expiry heaps this replaces, the wheel
    tolerates stale entries — callers re-validate against their state on
    drain.
    """

    __slots__ = ("fine", "_fine_exps", "_coarse", "_span", "_now")

    def __init__(self, span: int = _DEFAULT_SPAN) -> None:
        if span < 1:
            raise ValueError(f"span must be positive, got {span}")
        #: exact expiry instant -> items, FIFO.  Public for the blessed
        #: hot-path insertion idiom used by stateful operators::
        #:
        #:     bucket = wheel.fine.get(exp)
        #:     if bucket is not None:
        #:         bucket.append(item)
        #:     else:
        #:         wheel.schedule(exp, item)
        #:
        #: Appending to an existing fine bucket is always sound (its
        #: drain entry is already queued); expiry instants repeat heavily
        #: (Definition 16 quantizes them per slide), so the fast branch
        #: hits almost always and skips a Python call per insertion.
        self.fine: dict[int, list] = {}
        #: min-heap over ``fine`` keys; one entry per bucket, pushed at
        #: bucket creation
        self._fine_exps: list[int] = []
        #: exp // span -> [(exp, item), ...] for far-future entries
        self._coarse: dict[int, list] = {}
        self._span = span
        self._now = -1

    def schedule(self, exp: int, item) -> None:
        """File ``item`` under expiry instant ``exp``.

        Instants at or before the last ``advance`` are allowed (a
        retraction may cut validity short in the past); such entries
        drain on the next ``advance``.
        """
        if exp - self._now <= self._span:
            bucket = self.fine.get(exp)
            if bucket is None:
                self.fine[exp] = [item]
                heapq.heappush(self._fine_exps, exp)
            else:
                bucket.append(item)
            return
        slot = exp // self._span
        bucket = self._coarse.get(slot)
        if bucket is None:
            self._coarse[slot] = [(exp, item)]
        else:
            bucket.append((exp, item))

    def advance(self, t: int) -> list:
        """Drain every item with ``exp <= t``, in nondecreasing-``exp``
        order (FIFO within one instant).  Advances the watermark."""
        if t > self._now:
            self._now = t
            if self._coarse:
                self._cascade(t)
        exps = self._fine_exps
        if not exps or exps[0] > t:
            return []
        fine = self.fine
        drained: list = []
        while exps and exps[0] <= t:
            drained.extend(fine.pop(heapq.heappop(exps)))
        return drained

    def drain_epochs(self, t: int) -> list:
        """Bulk epoch drain: every due bucket at once, grouped by instant.

        Returns ``[(exp, items), ...]`` for each distinct expiry instant
        ``exp <= t`` in nondecreasing order; ``items`` is the bucket's
        own FIFO list, handed over without copying (ownership transfers
        to the caller).  Flattening the groups reproduces
        :meth:`advance` exactly — this is the batched-maintenance entry
        point: one call hands an operator *all* expiries for a window
        boundary, so it can group repair work per epoch (or per tree)
        instead of discovering expiries one item at a time.
        """
        if t > self._now:
            self._now = t
            if self._coarse:
                self._cascade(t)
        exps = self._fine_exps
        if not exps or exps[0] > t:
            return []
        fine = self.fine
        heappop = heapq.heappop
        epochs: list = []
        while exps and exps[0] <= t:
            exp = heappop(exps)
            epochs.append((exp, fine.pop(exp)))
        return epochs

    def _cascade(self, t: int) -> None:
        """Move coarse buckets entering the fine horizon down a level.

        The coarse dict holds one bucket per ``span`` of far-future
        instants (a handful at most), so scanning its keys is cheap —
        and correct for arbitrarily large watermark jumps, unlike
        enumerating candidate slots near ``t``.
        """
        span = self._span
        horizon_slot = (t + span) // span
        due = [slot for slot in self._coarse if slot <= horizon_slot]
        fine = self.fine
        exps = self._fine_exps
        for slot in sorted(due):
            for exp, item in self._coarse.pop(slot):
                bucket = fine.get(exp)
                if bucket is None:
                    fine[exp] = [item]
                    heapq.heappush(exps, exp)
                else:
                    bucket.append(item)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self, encode=None) -> dict:
        """Serializable snapshot of the wheel's exact bucket layout.

        Per-bucket FIFO order is preserved verbatim: drain order after a
        restore is bit-identical to the original wheel's, which the
        negative-tuple PATH operator's rederivation emission order
        depends on.  ``encode`` optionally maps each stored item to a
        picklable stand-in (items may hold direct references into owner
        state; see ``_HashTable``).
        """
        if encode is None:
            fine = {exp: list(items) for exp, items in self.fine.items()}
            coarse = {
                slot: list(entries) for slot, entries in self._coarse.items()
            }
        else:
            fine = {
                exp: [encode(item) for item in items]
                for exp, items in self.fine.items()
            }
            coarse = {
                slot: [(exp, encode(item)) for exp, item in entries]
                for slot, entries in self._coarse.items()
            }
        return {
            "now": self._now,
            "span": self._span,
            "fine": fine,
            "coarse": coarse,
        }

    def restore(self, state: dict, decode=None) -> None:
        """Rebuild the exact bucket layout captured by :meth:`snapshot`.

        The fine-exp heap is reconstructed by heapify; heap-internal
        array order is irrelevant to drain order (exactly one heap entry
        exists per distinct instant, so pops are fully ordered by
        value).
        """
        self._now = state["now"]
        self._span = state["span"]
        if decode is None:
            self.fine = {exp: list(items) for exp, items in state["fine"].items()}
            self._coarse = {
                slot: list(entries)
                for slot, entries in state["coarse"].items()
            }
        else:
            self.fine = {
                exp: [decode(item) for item in items]
                for exp, items in state["fine"].items()
            }
            self._coarse = {
                slot: [(exp, decode(item)) for exp, item in entries]
                for slot, entries in state["coarse"].items()
            }
        self._fine_exps = list(self.fine)
        heapq.heapify(self._fine_exps)

    def next_due(self) -> int | None:
        """The earliest scheduled fine-level instant (``None`` if the
        wheel holds no near-term entries).  Cheap watermark guard."""
        return self._fine_exps[0] if self._fine_exps else None

    def __len__(self) -> int:
        # Diagnostics only (buckets may receive direct appends, so the
        # count is computed, not maintained).
        return sum(map(len, self.fine.values())) + sum(
            map(len, self._coarse.values())
        )

    def __bool__(self) -> bool:
        # Drained buckets are removed whole, so dict truthiness is exact.
        return bool(self.fine) or bool(self._coarse)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimingWheel {len(self)} items, {len(self.fine)} fine / "
            f"{len(self._coarse)} coarse buckets>"
        )
