"""Input graph streams and streaming graphs (Definitions 4, 8, 9).

An :class:`InputGraphStream` is an ordered sequence of sges as delivered by
an external source.  A :class:`StreamingGraph` is an ordered sequence of
sgts — the format used for operator inputs, intermediate results, and
query outputs.  Both enforce non-decreasing timestamp order on append,
matching the paper's in-order arrival assumption.

:func:`partition_by_label` implements logical partitioning (Definition 9):
splitting a streaming graph into disjoint per-label streams, the shape SGA
operators consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.tuples import SGE, SGT, Label
from repro.errors import StreamOrderError


class InputGraphStream:
    """A continuously growing, timestamp-ordered sequence of sges."""

    def __init__(self, edges: Iterable[SGE] = ()):
        self._edges: list[SGE] = []
        for edge in edges:
            self.append(edge)

    def append(self, edge: SGE) -> None:
        """Append an sge; timestamps must be non-decreasing."""
        if self._edges and edge.t < self._edges[-1].t:
            raise StreamOrderError(
                f"out-of-order sge at t={edge.t}, last t={self._edges[-1].t}"
            )
        self._edges.append(edge)

    def extend(self, edges: Iterable[SGE]) -> None:
        for edge in edges:
            self.append(edge)

    def __iter__(self) -> Iterator[SGE]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index: int) -> SGE:
        return self._edges[index]

    @property
    def labels(self) -> set[Label]:
        return {e.label for e in self._edges}

    @property
    def last_timestamp(self) -> int | None:
        return self._edges[-1].t if self._edges else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InputGraphStream({len(self._edges)} edges)"


class StreamingGraph:
    """A continuously growing, arrival-ordered sequence of sgts.

    Arrival order follows tuple start timestamps (``sgt.ts``), mirroring
    Definition 8 where tuple *i* arrives before tuple *j* for ``i < j``.
    """

    def __init__(self, tuples: Iterable[SGT] = ()):
        self._tuples: list[SGT] = []
        for t in tuples:
            self.append(t)

    def append(self, sgt: SGT) -> None:
        if self._tuples and sgt.ts < self._tuples[-1].ts:
            raise StreamOrderError(
                f"out-of-order sgt at ts={sgt.ts}, last ts={self._tuples[-1].ts}"
            )
        self._tuples.append(sgt)

    def extend(self, tuples: Iterable[SGT]) -> None:
        for t in tuples:
            self.append(t)

    def __iter__(self) -> Iterator[SGT]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __getitem__(self, index: int) -> SGT:
        return self._tuples[index]

    @property
    def labels(self) -> set[Label]:
        return {t.label for t in self._tuples}

    def valid_at(self, t: int) -> list[SGT]:
        """All sgts whose validity interval contains instant ``t``."""
        return [sgt for sgt in self._tuples if sgt.valid_at(t)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingGraph({len(self._tuples)} tuples)"


def partition_by_label(stream: Iterable[SGT]) -> dict[Label, StreamingGraph]:
    """Logical partitioning of a streaming graph by tuple label.

    Definition 9: produces disjoint streaming graphs, one per label, whose
    union is the input.  At the logical level this is a FILTER per label.
    """
    buckets: dict[Label, list[SGT]] = defaultdict(list)
    for sgt in stream:
        buckets[sgt.label].append(sgt)
    return {label: StreamingGraph(ts) for label, ts in buckets.items()}
