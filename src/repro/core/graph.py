"""Materialized path graphs and snapshot extraction (Definitions 6, 12).

A :class:`MaterializedPathGraph` generalizes a directed labeled graph with
a set of first-class paths.  Snapshot graphs — the instantaneous state of a
streaming graph at a time instant — are materialized path graphs and are
the objects the *reference* (one-time) evaluator operates on; snapshot
reducibility ties the streaming operators back to them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.tuples import SGT, Label, PathPayload, Vertex


class MaterializedPathGraph:
    """A directed labeled graph whose paths are first-class citizens.

    Edges and paths are stored as `(src, trg, label)` triples plus, for
    paths, the ordered hop sequence assigned by the incidence function
    ``rho``.  Per Definition 6 the label images of edges and paths are
    disjoint; this class does not enforce the disjointness globally (the
    query layer reserves derived labels) but keeps edges and paths in
    separate collections.
    """

    def __init__(self) -> None:
        self._edges: set[tuple[Vertex, Vertex, Label]] = set()
        self._paths: dict[tuple[Vertex, Vertex, Label], PathPayload] = {}
        self._out: dict[tuple[Vertex, Label], set[Vertex]] = defaultdict(set)
        self._in: dict[tuple[Vertex, Label], set[Vertex]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, src: Vertex, trg: Vertex, label: Label) -> None:
        triple = (src, trg, label)
        if triple in self._edges:
            return
        self._edges.add(triple)
        self._out[(src, label)].add(trg)
        self._in[(trg, label)].add(src)

    def add_path(self, src: Vertex, trg: Vertex, label: Label, path: PathPayload) -> None:
        key = (src, trg, label)
        if key in self._paths:
            return
        self._paths[key] = path
        self._out[(src, label)].add(trg)
        self._in[(trg, label)].add(src)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> set[Vertex]:
        verts: set[Vertex] = set()
        for src, trg, _ in self._edges:
            verts.add(src)
            verts.add(trg)
        for src, trg, _ in self._paths:
            verts.add(src)
            verts.add(trg)
        return verts

    @property
    def edges(self) -> set[tuple[Vertex, Vertex, Label]]:
        return set(self._edges)

    @property
    def paths(self) -> dict[tuple[Vertex, Vertex, Label], PathPayload]:
        return dict(self._paths)

    @property
    def labels(self) -> set[Label]:
        labels = {l for _, _, l in self._edges}
        labels.update(l for _, _, l in self._paths)
        return labels

    def triples(self) -> Iterator[tuple[Vertex, Vertex, Label]]:
        """All (src, trg, label) facts: edges and paths uniformly."""
        yield from self._edges
        yield from self._paths

    def has(self, src: Vertex, trg: Vertex, label: Label) -> bool:
        key = (src, trg, label)
        return key in self._edges or key in self._paths

    def successors(self, src: Vertex, label: Label) -> set[Vertex]:
        """Targets reachable from ``src`` over a single ``label`` fact."""
        return set(self._out.get((src, label), ()))

    def predecessors(self, trg: Vertex, label: Label) -> set[Vertex]:
        return set(self._in.get((trg, label), ()))

    def triples_with_label(self, label: Label) -> list[tuple[Vertex, Vertex]]:
        pairs = [(s, t) for s, t, l in self._edges if l == label]
        pairs.extend((s, t) for s, t, l in self._paths if l == label)
        return pairs

    def __len__(self) -> int:
        return len(self._edges) + len(self._paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaterializedPathGraph({len(self._edges)} edges, "
            f"{len(self._paths)} paths)"
        )


def snapshot(tuples: Iterable[SGT], t: int) -> MaterializedPathGraph:
    """Snapshot graph ``G_t`` of a streaming graph at instant ``t``.

    Definition 12: the graph formed by all sgts whose validity interval
    contains ``t``.  Edge-payload sgts become edges, path-payload sgts
    become materialized paths.
    """
    graph = MaterializedPathGraph()
    for sgt in tuples:
        if not sgt.valid_at(t):
            continue
        if isinstance(sgt.payload, PathPayload):
            graph.add_path(sgt.src, sgt.trg, sgt.label, sgt.payload)
        else:
            graph.add_edge(sgt.src, sgt.trg, sgt.label)
    return graph


def graph_from_triples(
    triples: Iterable[tuple[Vertex, Vertex, Label]],
) -> MaterializedPathGraph:
    """Build a path-free materialized path graph from raw triples."""
    graph = MaterializedPathGraph()
    for src, trg, label in triples:
        graph.add_edge(src, trg, label)
    return graph
