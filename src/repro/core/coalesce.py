"""The coalesce primitive (Definition 11).

SGA operators may produce several value-equivalent sgts whose validity
intervals overlap or are adjacent.  Coalescing merges such sgts into one,
taking the smallest start and the largest expiry, and combining payloads
with an operator-specific aggregation function ``f_agg``.  Coalescing is
what gives snapshot graphs their *set* semantics: at any instant, an edge
or path exists at most once.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Sequence

from repro.core.intervals import Interval
from repro.core.tuples import SGT, Payload
from repro.errors import InvalidIntervalError

#: Aggregation function combining the payloads of merged sgts.  Receives
#: the payloads ordered consistently with the merged intervals.
PayloadAgg = Callable[[Sequence[Payload]], Payload]


def keep_first_payload(payloads: Sequence[Payload]) -> Payload:
    """Default ``f_agg``: keep the payload of the first tuple."""
    return payloads[0]


def keep_longest_payload(payloads: Sequence[Payload]) -> Payload:
    """``f_agg`` used by S-PATH: keep the payload of the tuple that expires
    furthest in the future (the caller orders payloads by expiry)."""
    return payloads[-1]


def coalesce(
    tuples: Sequence[SGT],
    f_agg: PayloadAgg = keep_first_payload,
) -> SGT:
    """Merge value-equivalent sgts with mergeable intervals into one sgt.

    Raises
    ------
    InvalidIntervalError
        If the tuples are not value-equivalent or their intervals do not
        form one contiguous block (coalescing disjoint intervals would
        fabricate validity).
    """
    if not tuples:
        raise InvalidIntervalError("coalesce requires at least one tuple")
    head = tuples[0]
    if any(t.key() != head.key() for t in tuples):
        raise InvalidIntervalError("coalesce requires value-equivalent tuples")

    ordered = sorted(tuples, key=lambda t: (t.ts, t.exp))
    merged = ordered[0].interval
    for t in ordered[1:]:
        if not merged.mergeable(t.interval):
            raise InvalidIntervalError(
                f"intervals {merged} and {t.interval} are disjoint; "
                "coalesce applies only to overlapping or adjacent intervals"
            )
        merged = merged.union(t.interval)

    by_exp = sorted(ordered, key=lambda t: t.exp)
    payload = f_agg([t.payload for t in by_exp])
    return SGT(head.src, head.trg, head.label, merged, payload)


def coalesce_stream(
    tuples: Iterable[SGT],
    f_agg: PayloadAgg = keep_first_payload,
) -> list[SGT]:
    """Coalesce an arbitrary collection of sgts.

    Tuples are grouped by their value-equivalence key; within each group,
    runs of mergeable intervals are collapsed.  Disjoint runs stay separate
    tuples (an edge that existed twice with a gap is two facts).  The result
    is sorted by (key, ts) and satisfies the set semantics of Definition 12:
    for each key, intervals are pairwise disjoint and non-adjacent.
    """
    groups: dict[tuple, list[SGT]] = defaultdict(list)
    for t in tuples:
        groups[t.key()].append(t)

    out: list[SGT] = []
    for key in sorted(groups, key=repr):
        run: list[SGT] = []
        run_interval: Interval | None = None
        for t in sorted(groups[key], key=lambda t: (t.ts, t.exp)):
            if run_interval is None or run_interval.mergeable(t.interval):
                run.append(t)
                run_interval = (
                    t.interval if run_interval is None else run_interval.union(t.interval)
                )
            else:
                out.append(coalesce(run, f_agg))
                run = [t]
                run_interval = t.interval
        if run:
            out.append(coalesce(run, f_agg))
    return out
