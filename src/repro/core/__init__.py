"""Core streaming graph data model (Section 3 of the paper).

This package defines the vocabulary the rest of the library is written in:

* :class:`~repro.core.intervals.Interval` — half-open validity intervals
  ``[ts, exp)`` (Definition 5).
* :class:`~repro.core.tuples.SGE` — streaming graph edges carrying an event
  timestamp (Definition 3).
* :class:`~repro.core.tuples.SGT` — streaming graph tuples carrying a
  validity interval and a payload (Definition 7).
* :class:`~repro.core.streams.InputGraphStream` and
  :class:`~repro.core.streams.StreamingGraph` — ordered sequences of sges
  and sgts (Definitions 4 and 8).
* :func:`~repro.core.coalesce.coalesce` — the coalesce primitive
  (Definition 11).
* :class:`~repro.core.graph.MaterializedPathGraph` — graphs with paths as
  first-class citizens (Definition 6) and snapshot extraction
  (Definition 12).
* :class:`~repro.core.windows.SlidingWindow` — time-based sliding window
  specifications used by the WSCAN operator (Definition 16).
* :class:`~repro.core.batch.DeltaBatch` and
  :class:`~repro.core.batch.BatchScheduler` — batched delta processing:
  the per-slide batch value type and the scheduler shared by the SGA
  executor and the DD baseline engine.
"""

from repro.core.batch import BatchScheduler, DeltaBatch, RunStats, SlideStats
from repro.core.coalesce import coalesce, coalesce_stream, keep_longest_payload
from repro.core.graph import MaterializedPathGraph, snapshot
from repro.core.intervals import Interval
from repro.core.streams import InputGraphStream, StreamingGraph, partition_by_label
from repro.core.tuples import SGE, SGT, EdgePayload, PathPayload
from repro.core.windows import SlidingWindow

__all__ = [
    "BatchScheduler",
    "DeltaBatch",
    "RunStats",
    "SlideStats",
    "Interval",
    "SGE",
    "SGT",
    "EdgePayload",
    "PathPayload",
    "InputGraphStream",
    "StreamingGraph",
    "partition_by_label",
    "coalesce",
    "coalesce_stream",
    "keep_longest_payload",
    "MaterializedPathGraph",
    "snapshot",
    "SlidingWindow",
]
