"""Hash partitioning primitives for sharded (multi-core) execution.

The sharded engine (:mod:`repro.engine.sharded`) runs N shard workers,
each evaluating the same compiled plan over the full input stream, with
the *stateful* work divided between them:

* PATH operators partition their Δ-tree forests by **root vertex** —
  every shard maintains the full windowed adjacency (traversals need the
  whole snapshot graph) but only expands/repairs the spanning trees whose
  root it owns, which is where the operator's time goes;
* PATTERN operators partition every internal symmetric hash join by its
  **join key**: a binding is stored and probed only on the key's owner
  shard, and bindings produced on the "wrong" shard are exchanged;
* derived streams are re-partitioned between operators the way a shuffle
  would, via the exchange operators of :mod:`repro.physical.exchange`.

Vertices are interned dense ints under columnar execution (the only
execution mode the sharded engine supports), so ownership is a cheap
modulo.  All ownership functions here are **deterministic across
processes**: they use only integer arithmetic and Python's
seed-independent hashing of ints/int-tuples, never string hashing, so an
inline shard and a multiprocessing worker agree on every routing
decision.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "vertex_owner",
    "key_owner",
    "ShardContext",
]


def vertex_owner(vertex, num_shards: int) -> int:
    """The shard owning a vertex (dense interned id in the fast path)."""
    if type(vertex) is int:
        return vertex % num_shards
    return hash(vertex) % num_shards


def key_owner(key: tuple, num_shards: int) -> int:
    """The shard owning a join-key tuple.

    Single-component keys (the overwhelmingly common join shape) route
    by the component so join ownership and vertex ownership agree when
    the key *is* a vertex; wider keys hash the whole tuple.
    """
    if len(key) == 1:
        return vertex_owner(key[0], num_shards)
    return hash(key) % num_shards


class ShardContext:
    """One shard's identity plus its routing fabric.

    The context is handed to every partition-aware operator at compile
    time.  Operators ask ownership questions through it and hand
    cross-shard deltas to :meth:`send`; what "send" means is the
    transport's business:

    * the **inline** deterministic scheduler wires ``send`` to a
      synchronous call into the destination shard's registered endpoint,
      so the global execution order is exactly the serial engine's;
    * the **process** transport wires ``send`` to an outbox that the
      engine drains into per-slide exchange rounds between workers.

    Endpoints are registered under integer uids assigned during
    compilation; compilation is deterministic, so uid ``k`` names the
    *same* logical operator on every shard.
    """

    __slots__ = ("shard_id", "num_shards", "endpoints", "_send")

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        send: "Callable[[int, int, tuple], None] | None" = None,
    ):
        if not 0 <= shard_id < num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {num_shards} shards"
            )
        self.shard_id = shard_id
        self.num_shards = num_shards
        #: uid -> operator endpoint on *this* shard (receive side)
        self.endpoints: dict[int, object] = {}
        self._send = send

    # -- ownership ------------------------------------------------------
    def owns_vertex(self, vertex) -> bool:
        return vertex_owner(vertex, self.num_shards) == self.shard_id

    def owner_of_key(self, key: tuple) -> int:
        return key_owner(key, self.num_shards)

    # -- wiring ---------------------------------------------------------
    def register(self, uid: int, endpoint: object) -> None:
        """Expose an operator as the receive side of exchange uid."""
        self.endpoints[uid] = endpoint

    def unregister_endpoints(self, dead_ids: set[int]) -> None:
        """Drop endpoints whose operator left the dataflow (pruning)."""
        stale = [
            uid
            for uid, op in self.endpoints.items()
            if id(op) in dead_ids
        ]
        for uid in stale:
            del self.endpoints[uid]

    def set_transport(
        self, send: "Callable[[int, int, tuple], None]"
    ) -> None:
        self._send = send

    # -- routing --------------------------------------------------------
    def send(self, dest: int, uid: int, payload: tuple) -> None:
        """Hand one delta to the shard ``dest``'s endpoint ``uid``.

        ``payload`` is a flat tuple of scalars (interned ids, interval
        bounds, signs) — nothing that needs more than pickling a few
        ints crosses a shard boundary.
        """
        self._send(dest, uid, payload)

    def broadcast(self, uid: int, payload: tuple) -> None:
        """Send one delta to every *other* shard's endpoint ``uid``."""
        send = self._send
        me = self.shard_id
        for dest in range(self.num_shards):
            if dest != me:
                send(dest, uid, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardContext {self.shard_id}/{self.num_shards}>"
