"""Optional-numpy gate for the vector execution mode.

numpy is an *optional extra* (``pip install repro[vector]``): every
module that can run vectorized imports :data:`np` from here and guards
the fast path on :data:`HAVE_NUMPY` (or, equivalently, ``np is not
None``).  The engine itself must import and run without numpy — the
``"vector"`` execution mode then degrades to ``"columnar"`` (see
:class:`repro.engine.session.EngineConfig`).

Two invariants this module exists to protect:

* **No stray numpy imports.**  ``import numpy`` happens exactly once,
  here, inside a ``try``.  Kernel modules never import numpy directly.
* **No numpy scalars in row-land.**  ``np.int64`` is not ``int``, and
  :meth:`repro.core.interning.Interner.value` deliberately rejects
  non-``int`` identifiers (a dense id that arrives as a different type
  is a bug, not a value to decode).  Every point where array-backed
  columns are materialized back into per-row Python objects must pass
  through :func:`as_list`, which converts an ndarray to a plain list of
  Python ints in one C-level call.
"""

from __future__ import annotations

from typing import Any, Sequence

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: The numpy module, or ``None`` when the extra is not installed.
np = _np

#: True iff numpy imported successfully.
HAVE_NUMPY = _np is not None


def require_numpy(context: str) -> None:
    """Raise a clear error for an *explicit* vector request sans numpy."""
    if _np is None:
        raise ImportError(
            f"{context} requires numpy, which is not installed; "
            'install the optional extra (pip install "repro[vector]") '
            'or use execution="columnar"'
        )


def is_array(column: Any) -> bool:
    """True iff ``column`` is a numpy ndarray (False when no numpy)."""
    return _np is not None and type(column) is _np.ndarray


def as_list(column: Sequence[int]) -> list[int]:
    """A plain ``list`` of Python ints for any column representation.

    ndarray → ``tolist()`` (one C call, yields builtin ``int``); plain
    lists pass through **unchanged** (zero copy — callers rely on this
    for the columnar mode where columns already are lists).
    """
    if _np is not None and type(column) is _np.ndarray:
        return column.tolist()
    if type(column) is list:
        return column
    return list(column)


def as_array(column: Sequence[int]):
    """An int64 ndarray view/copy of ``column`` (numpy required)."""
    if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
        require_numpy("as_array()")
    if type(column) is _np.ndarray:
        return column
    return _np.asarray(column, dtype=_np.int64)
