"""Regular Queries as binary Datalog with transitive closure (Definition 13).

An RQ program is a finite set of rules ``head <- body_1, ..., body_n``
where every body atom is either

* a plain binary atom ``l(x, y)`` over an EDB or IDB label ``l``, or
* a transitive-closure atom ``l+(x, y) as d``: the closure of ``l``,
  exported under the fresh IDB label ``d``.

Heads are binary atoms over IDB labels; the distinguished predicate
``Answer`` names the query result.  Programs must be non-recursive
(acyclic dependency graph) — see :mod:`repro.query.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tuples import Label

#: The reserved result predicate of an RQ program.
ANSWER = "Answer"


@dataclass(frozen=True, slots=True)
class Atom:
    """A plain binary atom ``label(src, trg)``.

    ``src`` and ``trg`` are variable names.  Repeated variables express
    equality constraints (e.g. ``l(x, x)`` matches self-loops).
    """

    label: Label
    src: str
    trg: str

    @property
    def variables(self) -> tuple[str, str]:
        return (self.src, self.trg)

    def __str__(self) -> str:
        return f"{self.label}({self.src}, {self.trg})"


@dataclass(frozen=True, slots=True)
class ClosureAtom:
    """A transitive-closure atom ``label+(src, trg) as name``.

    Matches pairs connected by a path of one or more ``label`` facts; the
    derived paths are exported as the IDB label ``name`` so downstream
    rules (and query outputs) can refer to the materialized paths.
    """

    label: Label
    src: str
    trg: str
    name: Label

    @property
    def variables(self) -> tuple[str, str]:
        return (self.src, self.trg)

    def __str__(self) -> str:
        return f"{self.label}+({self.src}, {self.trg}) as {self.name}"


BodyAtom = Atom | ClosureAtom


@dataclass(frozen=True, slots=True)
class Rule:
    """A Datalog rule ``head_label(head_src, head_trg) <- body``."""

    head_label: Label
    head_src: str
    head_trg: str
    body: tuple[BodyAtom, ...]

    @property
    def head_variables(self) -> tuple[str, str]:
        return (self.head_src, self.head_trg)

    @property
    def body_variables(self) -> frozenset[str]:
        variables: set[str] = set()
        for atom in self.body:
            variables.update(atom.variables)
        return frozenset(variables)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head_label}({self.head_src}, {self.head_trg}) <- {body}"


@dataclass(frozen=True, slots=True)
class RQProgram:
    """A Regular Query: an ordered collection of rules.

    The program is a value object; validation lives in
    :func:`repro.query.validation.validate_rq` and is invoked by the
    parser and by :class:`repro.query.sgq.SGQ`.
    """

    rules: tuple[Rule, ...]

    @property
    def head_labels(self) -> frozenset[Label]:
        """IDB labels defined by rule heads."""
        return frozenset(r.head_label for r in self.rules)

    @property
    def closure_labels(self) -> frozenset[Label]:
        """IDB labels defined by closure atoms (``... as name``)."""
        names: set[Label] = set()
        for rule in self.rules:
            for atom in rule.body:
                if isinstance(atom, ClosureAtom):
                    names.add(atom.name)
        return frozenset(names)

    @property
    def idb_labels(self) -> frozenset[Label]:
        return self.head_labels | self.closure_labels

    @property
    def edb_labels(self) -> frozenset[Label]:
        """Labels that refer to input graph edges (phi(E_I))."""
        referenced: set[Label] = set()
        for rule in self.rules:
            for atom in rule.body:
                referenced.add(atom.label)
        return frozenset(referenced - self.idb_labels)

    def rules_for(self, label: Label) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head_label == label)

    def closure_atoms(self) -> tuple[ClosureAtom, ...]:
        atoms: list[ClosureAtom] = []
        seen: set[Label] = set()
        for rule in self.rules:
            for atom in rule.body:
                if isinstance(atom, ClosureAtom) and atom.name not in seen:
                    seen.add(atom.name)
                    atoms.append(atom)
        return tuple(atoms)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)
