"""Well-formedness checks for Regular Queries (Definition 13).

A valid RQ program must satisfy:

1. every rule has a non-empty body;
2. head variables occur in the rule body (safety);
3. head labels never collide with EDB labels (IDB/EDB separation — derived
   labels are drawn from ``Sigma \\ phi(E_I)``);
4. closure names (``... as d``) are unique per closed label and never
   collide with EDB labels or head labels;
5. the dependency graph is acyclic (non-recursiveness) — recursion is only
   available through the transitive-closure construct;
6. ``Answer`` appears as a head and never in a body.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter

from repro.core.tuples import Label
from repro.errors import QueryValidationError
from repro.query.datalog import ANSWER, ClosureAtom, RQProgram


def dependency_graph(program: RQProgram) -> dict[Label, set[Label]]:
    """Predicate dependency graph: ``deps[p]`` = labels ``p`` depends on.

    There is an edge from head predicate ``p`` to ``q`` when ``q`` appears
    in the body of a rule with head ``p``.  Closure atoms contribute two
    edges: the rule head depends on the closure name, and the closure name
    depends on the closed label.
    """
    deps: dict[Label, set[Label]] = {}
    for rule in program.rules:
        deps.setdefault(rule.head_label, set())
        for atom in rule.body:
            if isinstance(atom, ClosureAtom):
                deps[rule.head_label].add(atom.name)
                deps.setdefault(atom.name, set()).add(atom.label)
            else:
                deps[rule.head_label].add(atom.label)
    return deps


def topological_order(program: RQProgram) -> list[Label]:
    """Labels in dependency order (leaves first).

    Raises :class:`QueryValidationError` when the program is recursive.
    """
    deps = dependency_graph(program)
    sorter: TopologicalSorter[Label] = TopologicalSorter()
    for label, below in deps.items():
        sorter.add(label, *sorted(below))
    try:
        return list(sorter.static_order())
    except CycleError as exc:
        cycle = exc.args[1] if len(exc.args) > 1 else "?"
        raise QueryValidationError(f"program is recursive: cycle {cycle}") from exc


def validate_rq(program: RQProgram) -> None:
    """Raise :class:`QueryValidationError` unless ``program`` is a valid RQ."""
    if not program.rules:
        raise QueryValidationError("program has no rules")

    head_labels = program.head_labels
    closure_labels = program.closure_labels
    edb_labels = program.edb_labels

    if ANSWER not in head_labels:
        raise QueryValidationError(f"program must define the {ANSWER} predicate")

    overlap = head_labels & closure_labels
    if overlap:
        raise QueryValidationError(
            f"labels defined both by rules and closures: {sorted(overlap)}"
        )

    closure_name_for: dict[Label, Label] = {}
    for rule in program.rules:
        if not rule.body:
            raise QueryValidationError(f"rule for {rule.head_label} has empty body")
        missing = set(rule.head_variables) - set(rule.body_variables)
        if missing:
            raise QueryValidationError(
                f"unsafe rule for {rule.head_label}: head variables "
                f"{sorted(missing)} not bound in body"
            )
        for atom in rule.body:
            if atom.label == ANSWER:
                raise QueryValidationError(f"{ANSWER} cannot appear in a rule body")
            if isinstance(atom, ClosureAtom):
                if atom.name in edb_labels:
                    raise QueryValidationError(
                        f"closure name {atom.name!r} collides with an input label"
                    )
                if atom.name == atom.label:
                    raise QueryValidationError(
                        f"closure name {atom.name!r} must differ from closed label"
                    )
                previous = closure_name_for.get(atom.name)
                if previous is not None and previous != atom.label:
                    raise QueryValidationError(
                        f"closure name {atom.name!r} closes both {previous!r} "
                        f"and {atom.label!r}"
                    )
                closure_name_for[atom.name] = atom.label

    # Non-recursiveness (also raises on cycles through closures).
    topological_order(program)
