"""Streaming Graph Queries (Section 4).

SGQ is a streaming generalization of the *Regular Query* (RQ) model: the
binary, non-recursive subset of Datalog extended with transitive closure.
This package provides:

* :mod:`repro.query.datalog` — rules, atoms, and RQ programs,
* :mod:`repro.query.validation` — the Definition-13 well-formedness checks
  (binary predicates, acyclic dependency graph, EDB/IDB separation),
* :mod:`repro.query.parser` — a textual Datalog parser
  (``Answer(x, y) <- likes(x, m), follows+(x, y) as FP, posts(y, m)``),
* :mod:`repro.query.sgq` — SGQ = RQ + time-based sliding window
  (Definition 15).
"""

from repro.query.datalog import Atom, ClosureAtom, RQProgram, Rule
from repro.query.parser import parse_rq
from repro.query.sgq import SGQ
from repro.query.validation import dependency_graph, validate_rq

__all__ = [
    "Atom",
    "ClosureAtom",
    "Rule",
    "RQProgram",
    "parse_rq",
    "validate_rq",
    "dependency_graph",
    "SGQ",
]
