"""Textual Datalog parser for Regular Queries.

Syntax (one rule per ``.``-terminated statement or per line):

.. code-block:: text

    RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
    Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
    Answer(u, m) <- Notify(u, m).

* ``<-`` and ``:-`` are interchangeable.
* ``label+(x, y) as Name`` is a transitive-closure atom; ``*`` is accepted
  as a synonym for ``+`` (the paper uses both for the closure construct).
  When ``as Name`` is omitted, the name defaults to ``<label>_tc``.
* ``#`` and ``%`` start comments that run to end of line.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.datalog import Atom, BodyAtom, ClosureAtom, RQProgram, Rule
from repro.query.validation import validate_rq

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_TOKEN_RE = re.compile(
    rf"\s*(?:(?P<ident>{_IDENT})"
    r"|(?P<arrow><-|:-)"
    r"|(?P<punct>[(),.+*]))"
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    # Blank out comments (replacing them with spaces, not removing them)
    # so token positions keep pointing into the *original* text — the
    # caret excerpts of :class:`~repro.errors.ParseError` depend on it.
    lines = []
    for line in text.split("\n"):
        for marker in ("#", "%"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index] + " " * (len(line) - index)
        lines.append(line)
    source = "\n".join(lines)

    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            if source[pos:].strip() == "":
                break
            raise ParseError(
                f"unexpected character {source[pos]!r}", pos, source=text
            )
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind), match.start(kind)))
        pos = match.end()
    return tokens


class _RuleParser:
    def __init__(self, tokens: list[tuple[str, str, int]], source: str = ""):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _fail(self, message: str, pos: int | None) -> ParseError:
        if pos is None:
            pos = len(self._source)
        return ParseError(message, pos, source=self._source)

    def _peek(self) -> tuple[str, str, int] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        token = self._peek()
        if token is None or token[1] != value:
            found = token[1] if token else "end of input"
            pos = token[2] if token else None
            raise self._fail(f"expected {value!r}, found {found!r}", pos)
        self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token is None or token[0] != "ident":
            found = token[1] if token else "end of input"
            pos = token[2] if token else None
            raise self._fail(f"expected identifier, found {found!r}", pos)
        return self._advance()[1]

    def parse_program(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._peek() is not None:
            rules.append(self._rule())
            token = self._peek()
            if token is not None and token[1] == ".":
                self._advance()
        return rules

    def _rule(self) -> Rule:
        head_label = self._expect_ident()
        self._expect("(")
        head_src = self._expect_ident()
        self._expect(",")
        head_trg = self._expect_ident()
        self._expect(")")
        token = self._peek()
        if token is None or token[0] != "arrow":
            found = token[1] if token else "end of input"
            pos = token[2] if token else None
            raise self._fail(f"expected '<-' or ':-', found {found!r}", pos)
        self._advance()

        body: list[BodyAtom] = [self._body_atom()]
        while True:
            token = self._peek()
            if token is None or token[1] != ",":
                break
            self._advance()
            body.append(self._body_atom())
        return Rule(head_label, head_src, head_trg, tuple(body))

    def _body_atom(self) -> BodyAtom:
        label = self._expect_ident()
        closed = False
        token = self._peek()
        if token is not None and token[1] in ("+", "*"):
            self._advance()
            closed = True
        self._expect("(")
        src = self._expect_ident()
        self._expect(",")
        trg = self._expect_ident()
        self._expect(")")
        if not closed:
            return Atom(label, src, trg)

        name = f"{label}_tc"
        token = self._peek()
        if token is not None and token[0] == "ident" and token[1] == "as":
            self._advance()
            name = self._expect_ident()
        return ClosureAtom(label, src, trg, name)


def parse_rq(text: str, validate: bool = True) -> RQProgram:
    """Parse a textual Datalog program into a validated :class:`RQProgram`.

    Set ``validate=False`` to skip Definition-13 checks (used by tests that
    construct deliberately malformed programs).
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty program")
    rules = _RuleParser(tokens, text).parse_program()
    program = RQProgram(tuple(rules))
    if validate:
        validate_rq(program)
    return program
