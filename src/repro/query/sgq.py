"""Streaming Graph Queries: RQ + time-based sliding window (Definition 15).

An :class:`SGQ` couples a Regular Query with the window specification its
WSCAN operators apply.  Queries over multiple input streams (Example 4 of
the paper joins a social stream with a transaction stream) may override
the window per input label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tuples import Label
from repro.core.windows import SlidingWindow
from repro.errors import QueryValidationError
from repro.query.datalog import RQProgram
from repro.query.parser import parse_rq
from repro.query.validation import validate_rq


@dataclass(frozen=True)
class SGQ:
    """A persistent streaming graph query.

    Parameters
    ----------
    program:
        The Regular Query (validated on construction).
    window:
        Default time-based sliding window applied to every input label.
    label_windows:
        Optional per-input-label overrides, e.g. a 24 h window on the
        social stream joined with a 30 d window on the transaction stream.
    """

    program: RQProgram
    window: SlidingWindow
    label_windows: dict[Label, SlidingWindow] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_rq(self.program)
        unknown = set(self.label_windows) - self.program.edb_labels
        if unknown:
            raise QueryValidationError(
                f"window overrides for non-input labels: {sorted(unknown)}"
            )

    @classmethod
    def from_text(
        cls,
        text: str,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
    ) -> "SGQ":
        """Parse Datalog text and attach a window specification."""
        return cls(parse_rq(text), window, dict(label_windows or {}))

    def window_for(self, label: Label) -> SlidingWindow:
        """The window applied to the input stream of ``label``."""
        return self.label_windows.get(label, self.window)

    @property
    def input_labels(self) -> frozenset[Label]:
        return self.program.edb_labels

    def __str__(self) -> str:
        return f"SGQ[{self.window}]\n{self.program}"
