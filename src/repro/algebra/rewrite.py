"""SGA transformation rules and plan-space enumeration (Section 5.4).

The rules implemented here are exactly the ones the paper highlights:

* **WSCAN commutation** — ``W(sigma(S)) = sigma(W(S))``: push a FILTER
  below the window (:func:`push_filter_into_wscan`), shrinking windowing
  state.
* **PATH alternation** — ``P[a|b](Sa, Sb) = P[a] U P[b]``
  (:func:`split_alternation`).
* **PATH concatenation** — ``P[a.b](Sa, Sb) = PATTERN[trg1=src2](Sa, Sb)``
  (:func:`concat_to_pattern`) and its inverse
  (:func:`fuse_pattern_into_path`), which inlines a linear join chain into
  the regex.  Composing these produces the paper's plans P1–P3 for Q4
  (Section 7.4): the canonical plan evaluates ``P[d+](PATTERN(a, b, c))``
  while P1 evaluates ``P[(a.b.c)+]`` directly, and P2/P3 inline only a
  2-symbol prefix/suffix.

:func:`enumerate_plans` applies the rules exhaustively (bounded) to
explore the space of equivalent plans.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Plan,
    Relabel,
    Union,
    WScan,
    walk,
)
from repro.core.tuples import Label
from repro.errors import PlanError
from repro.regex.ast import Alternation, Concat, Plus, RegexNode, Symbol

# ----------------------------------------------------------------------
# Rule 1: WSCAN / FILTER commutation
# ----------------------------------------------------------------------
def push_filter_into_wscan(plan: Plan) -> Plan | None:
    """``FILTER[phi](WSCAN(S))`` → ``WSCAN(sigma_phi(S))``.

    Returns the rewritten plan, or None when the rule does not apply at
    the root of ``plan``.
    """
    if not isinstance(plan, Filter) or not isinstance(plan.child, WScan):
        return None
    scan = plan.child
    if scan.prefilter is not None:
        merged = scan.prefilter.conditions + plan.predicate.conditions
        predicate = type(plan.predicate)(merged)
    else:
        predicate = plan.predicate
    return WScan(scan.label, scan.window, predicate)


# ----------------------------------------------------------------------
# Rule 2: PATH alternation split
# ----------------------------------------------------------------------
def split_alternation(plan: Plan) -> Plan | None:
    """``P[R1|R2]`` → ``P[R1] UNION P[R2]``.

    Applies when the PATH regex is a top-level alternation.  Both branches
    are non-nullable because the whole regex is (PATH forbids nullable
    regexes), so the rewrite is exact.
    """
    if not isinstance(plan, Path) or not isinstance(plan.regex, Alternation):
        return None
    regex = plan.regex
    inputs = plan.input_map
    left = _path_for(regex.left, inputs, plan.label)
    right = _path_for(regex.right, inputs, plan.label)
    return Union(left, right, plan.label)


def _path_for(regex: RegexNode, inputs: dict[Label, Plan], label: Label) -> Plan:
    """A plan evaluating ``regex``; collapses single symbols to the child.

    ``P[a](Sa)`` is the identity modulo relabeling, so a single-symbol
    branch reuses the child plan wrapped in a renaming PATTERN only when
    the output label differs.
    """
    alphabet = regex.alphabet()
    if isinstance(regex, Symbol):
        child = inputs[regex.label]
        if child.out_label == label:
            return child
        return Relabel(child, label)
    return Path.over({l: inputs[l] for l in alphabet}, regex, label)


# ----------------------------------------------------------------------
# Rule 3: PATH concatenation → PATTERN join
# ----------------------------------------------------------------------
def concat_to_pattern(plan: Plan) -> Plan | None:
    """``P[R1.R2]`` → ``PATTERN[trg1=src2](P[R1], P[R2])``.

    Applies when the PATH regex is a top-level concatenation.  Exact
    because PATTERN's interval intersection mirrors PATH's simultaneous
    validity requirement (Definitions 19/20).
    """
    if not isinstance(plan, Path) or not isinstance(plan.regex, Concat):
        return None
    regex = plan.regex
    inputs = plan.input_map
    left = _path_for(regex.left, inputs, f"{plan.label}.l")
    right = _path_for(regex.right, inputs, f"{plan.label}.r")
    return Pattern(
        (
            PatternInput(left, "x", "z"),
            PatternInput(right, "z", "y"),
        ),
        "x",
        "y",
        plan.label,
    )


# ----------------------------------------------------------------------
# Rule 4 (inverse of 3, through a closure): inline a linear join chain
# ----------------------------------------------------------------------
def fuse_pattern_into_path(plan: Plan) -> Plan | None:
    """``P[d+](PATTERN-chain(l1, ..., ln))`` → ``P[(l1...ln)+]``.

    The canonical Q4 plan computes the base pattern ``a.b.c`` with joins
    and applies ``d+`` on the derived edges; this rewrite produces the
    paper's P1, which runs the whole expression inside a single PATH.
    Applies when the PATH regex is ``d+`` (or ``d``), its only input is a
    PATTERN forming a linear variable chain, and the chain's child plans
    emit pairwise-distinct labels.
    """
    if not isinstance(plan, Path):
        return None
    regex = plan.regex
    if isinstance(regex, Plus) and isinstance(regex.inner, Symbol):
        derived = regex.inner.label
        wrap_plus = True
    elif isinstance(regex, Symbol):
        derived = regex.label
        wrap_plus = False
    else:
        return None

    inputs = plan.input_map
    if set(inputs) != {derived}:
        return None
    child = inputs[derived]
    if not isinstance(child, Pattern):
        return None
    chain = _linear_chain(child)
    if chain is None:
        return None

    labels = [conjunct.plan.out_label for conjunct in chain]
    if len(set(labels)) != len(labels):
        return None

    fused: RegexNode = Symbol(labels[0])
    for label in labels[1:]:
        fused = Concat(fused, Symbol(label))
    if wrap_plus:
        fused = Plus(fused)
    new_inputs = {
        conjunct.plan.out_label: conjunct.plan for conjunct in chain
    }
    return Path.over(new_inputs, fused, plan.label)


def _linear_chain(pattern: Pattern) -> tuple[PatternInput, ...] | None:
    """Order the conjuncts into a chain x0 -> x1 -> ... -> xn, or None.

    The chain must start at ``pattern.src_var``, end at ``pattern.trg_var``
    and use each intermediate variable exactly twice (once as a target,
    once as a source) — i.e. the PATTERN is a pure concatenation join.
    """
    by_src = {c.src_var: c for c in pattern.inputs}
    if len(by_src) != len(pattern.inputs):
        return None
    ordered: list[PatternInput] = []
    var = pattern.src_var
    seen_vars = {var}
    for _ in range(len(pattern.inputs)):
        conjunct = by_src.get(var)
        if conjunct is None or conjunct.trg_var in seen_vars:
            return None
        ordered.append(conjunct)
        var = conjunct.trg_var
        seen_vars.add(var)
    if var != pattern.trg_var or len(ordered) != len(pattern.inputs):
        return None
    return tuple(ordered)


# ----------------------------------------------------------------------
# Composite rewrites used by the Section 7.4 micro-benchmarks
# ----------------------------------------------------------------------
def group_concat_prefix(plan: Path, size: int, new_label: Label) -> Path:
    """Replace the first ``size`` symbols of a ``(l1...ln)+`` PATH by a
    PATTERN-derived label, yielding e.g. P3 = ``P[(d.c)+](Z(a, b), c)``.

    ``plan`` must have regex ``(l1. ... .ln)+`` with distinct symbols.
    """
    return _group_concat(plan, 0, size, new_label)


def group_concat_suffix(plan: Path, size: int, new_label: Label) -> Path:
    """Replace the last ``size`` symbols, yielding e.g.
    P2 = ``P[(a.d)+](a, Z(b, c))``."""
    symbols = _plus_chain_symbols(plan)
    return _group_concat(plan, len(symbols) - size, size, new_label)


def _plus_chain_symbols(plan: Path) -> list[str]:
    regex = plan.regex
    if not isinstance(regex, Plus):
        raise PlanError("expected a regex of the form (l1 ... ln)+")
    symbols: list[str] = []

    def collect(node: RegexNode) -> None:
        if isinstance(node, Concat):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, Symbol):
            symbols.append(node.label)
        else:
            raise PlanError("expected a pure concatenation of symbols under +")

    collect(regex.inner)
    if len(set(symbols)) != len(symbols):
        raise PlanError("grouping requires pairwise distinct symbols")
    return symbols


def _group_concat(plan: Path, start: int, size: int, new_label: Label) -> Path:
    symbols = _plus_chain_symbols(plan)
    if size < 2 or start < 0 or start + size > len(symbols):
        raise PlanError(
            f"cannot group {size} symbols at offset {start} of {symbols}"
        )
    inputs = plan.input_map
    grouped = symbols[start : start + size]

    conjuncts = []
    for index, label in enumerate(grouped):
        conjuncts.append(PatternInput(inputs[label], f"v{index}", f"v{index + 1}"))
    pattern = Pattern(tuple(conjuncts), "v0", f"v{len(grouped)}", new_label)

    remaining = symbols[:start] + [new_label] + symbols[start + size :]
    fused: RegexNode = Symbol(remaining[0])
    for label in remaining[1:]:
        fused = Concat(fused, Symbol(label))
    new_inputs: dict[Label, Plan] = {new_label: pattern}
    for label in remaining:
        if label != new_label:
            new_inputs[label] = inputs[label]
    return Path.over(new_inputs, Plus(fused), plan.label)


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
_ROOT_RULES = (
    push_filter_into_wscan,
    split_alternation,
    concat_to_pattern,
    fuse_pattern_into_path,
)


def rewrite_once(plan: Plan) -> list[Plan]:
    """All plans obtained by applying one rule at one node of ``plan``."""
    results: list[Plan] = []
    for rule in _ROOT_RULES:
        rewritten = rule(plan)
        if rewritten is not None:
            results.append(rewritten)
    for index, child in enumerate(plan.children()):
        for new_child in rewrite_once(child):
            results.append(_replace_child(plan, index, new_child))
    return results


def _replace_child(plan: Plan, index: int, new_child: Plan) -> Plan:
    if isinstance(plan, Filter):
        return Filter(new_child, plan.predicate)
    if isinstance(plan, Relabel):
        return Relabel(new_child, plan.label)
    if isinstance(plan, Union):
        if index == 0:
            return Union(new_child, plan.right, plan.label)
        return Union(plan.left, new_child, plan.label)
    if isinstance(plan, Pattern):
        conjuncts = list(plan.inputs)
        old = conjuncts[index]
        conjuncts[index] = PatternInput(new_child, old.src_var, old.trg_var)
        return Pattern(tuple(conjuncts), plan.src_var, plan.trg_var, plan.label)
    if isinstance(plan, Path):
        pairs = list(plan.inputs)
        label, _ = pairs[index]
        pairs[index] = (label, new_child)
        return Path(tuple(pairs), plan.regex, plan.label)
    raise PlanError(f"cannot replace child of {plan!r}")


def enumerate_plans(plan: Plan, limit: int = 64) -> list[Plan]:
    """Explore the plan space reachable through the transformation rules.

    Breadth-first closure over :func:`rewrite_once`, bounded by ``limit``
    distinct plans.  The input plan is always first in the result.
    """
    seen: dict[Plan, None] = {plan: None}
    frontier = [plan]
    while frontier and len(seen) < limit:
        next_frontier: list[Plan] = []
        for current in frontier:
            for rewritten in rewrite_once(current):
                if rewritten not in seen:
                    seen[rewritten] = None
                    next_frontier.append(rewritten)
                    if len(seen) >= limit:
                        break
            if len(seen) >= limit:
                break
        frontier = next_frontier
    return list(seen)


def plan_size(plan: Plan) -> int:
    """Number of operator nodes (used to rank enumerated plans)."""
    return sum(1 for _ in walk(plan))
