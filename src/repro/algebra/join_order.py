"""Greedy join ordering for PATTERN conjuncts.

The paper's prototype "uses the ordering of predicates in PATTERN to
construct the join tree and leaves the problem of finding efficient join
plans for future investigation" (Section 6.2.2).  This module provides
that next step in its simplest defensible form: reorder the conjuncts of
every PATTERN before the physical planner builds its left-deep tree,

1. starting from the conjunct with the lowest estimated cardinality, and
2. greedily appending the cheapest conjunct that shares a variable with
   the atoms chosen so far (avoiding Cartesian products entirely unless
   the pattern is disconnected).

Cardinality estimates come from label frequencies observed in a sample
stream (or uniform defaults when none is given).  Reordering never
changes results — PATTERN is a natural join, which is commutative and
associative — a fact the tests verify against the reference evaluator.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Plan,
    Relabel,
    Union,
)
from repro.core.tuples import SGE


def label_frequencies(sample: Iterable[SGE]) -> dict[str, int]:
    """Edge counts per label from a sample stream."""
    return dict(Counter(edge.label for edge in sample))


def estimate_cardinality(plan: Plan, frequencies: dict[str, int]) -> float:
    """A coarse cardinality estimate for one conjunct's input plan.

    Input labels map to sampled frequencies; derived plans combine their
    children: UNION adds, PATTERN multiplies with a join discount, PATH
    squares its base (closure can produce up to quadratically many pairs).
    """
    from repro.algebra.operators import WScan

    if isinstance(plan, WScan):
        return float(frequencies.get(plan.label, 100))
    if isinstance(plan, (Filter, Relabel)):
        return estimate_cardinality(plan.children()[0], frequencies)
    if isinstance(plan, Union):
        return sum(estimate_cardinality(c, frequencies) for c in plan.children())
    if isinstance(plan, Pattern):
        product = 1.0
        for conjunct in plan.inputs:
            product *= estimate_cardinality(conjunct.plan, frequencies)
        # Each equi-join predicate cuts the cross product; discount one
        # order of magnitude per join.
        discount = 10.0 ** max(0, len(plan.inputs) - 1)
        return max(1.0, product / discount)
    if isinstance(plan, Path):
        base = sum(
            estimate_cardinality(child, frequencies) for child in plan.children()
        )
        return max(1.0, base ** 1.5)
    return 100.0


def order_conjuncts(
    inputs: tuple[PatternInput, ...],
    frequencies: dict[str, int],
) -> tuple[PatternInput, ...]:
    """Greedy connected ordering, cheapest-cardinality first."""
    remaining = list(inputs)
    if len(remaining) <= 1:
        return tuple(remaining)

    costs = {
        id(conjunct): estimate_cardinality(conjunct.plan, frequencies)
        for conjunct in remaining
    }
    ordered: list[PatternInput] = []
    bound: set[str] = set()

    first = min(remaining, key=lambda c: costs[id(c)])
    ordered.append(first)
    remaining.remove(first)
    bound.update((first.src_var, first.trg_var))

    while remaining:
        connected = [
            c
            for c in remaining
            if c.src_var in bound or c.trg_var in bound
        ]
        pool = connected or remaining  # disconnected patterns: fall back
        chosen = min(pool, key=lambda c: costs[id(c)])
        ordered.append(chosen)
        remaining.remove(chosen)
        bound.update((chosen.src_var, chosen.trg_var))
    return tuple(ordered)


def reorder_joins(plan: Plan, sample: Iterable[SGE] | None = None) -> Plan:
    """Reorder every PATTERN's conjuncts throughout a plan.

    ``sample`` supplies label frequencies; omit it for uniform estimates
    (the ordering then prefers structurally cheaper conjuncts and
    connectivity).
    """
    frequencies = label_frequencies(sample) if sample is not None else {}
    return _rewrite(plan, frequencies)


def _rewrite(plan: Plan, frequencies: dict[str, int]) -> Plan:
    import dataclasses

    if isinstance(plan, Pattern):
        conjuncts = tuple(
            dataclasses.replace(c, plan=_rewrite(c.plan, frequencies))
            for c in plan.inputs
        )
        return dataclasses.replace(
            plan, inputs=order_conjuncts(conjuncts, frequencies)
        )
    if isinstance(plan, Filter):
        return Filter(_rewrite(plan.child, frequencies), plan.predicate)
    if isinstance(plan, Relabel):
        return Relabel(_rewrite(plan.child, frequencies), plan.label)
    if isinstance(plan, Union):
        return Union(
            _rewrite(plan.left, frequencies),
            _rewrite(plan.right, frequencies),
            plan.label,
        )
    if isinstance(plan, Path):
        import dataclasses

        pairs = tuple(
            (label, _rewrite(child, frequencies))
            for label, child in plan.inputs
        )
        return dataclasses.replace(plan, inputs=pairs)
    return plan
