"""One-time reference evaluation over snapshots (snapshot reducibility).

Definition 14 defines the semantics of every streaming operator through
its non-streaming counterpart: the snapshot at time *t* of a streaming
operator's output must equal the non-streaming operator applied to the
input snapshots at *t*.  This module implements those non-streaming
counterparts directly (set-based joins, BFS over product automata) and is
the ground truth the physical operators are tested against.

It is deliberately simple and obviously correct rather than fast.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable

from repro.algebra.operators import Filter, Path, Pattern, Plan, Relabel, Union, WScan
from repro.core.tuples import SGE, Label, Vertex
from repro.errors import PlanError
from repro.query.datalog import ANSWER, ClosureAtom, RQProgram, Rule
from repro.query.validation import topological_order
from repro.regex.ast import RegexNode
from repro.regex.dfa import dfa_from_regex

Pair = tuple[Vertex, Vertex]
Triples = dict[Label, set[Pair]]


# ----------------------------------------------------------------------
# Plan evaluation
# ----------------------------------------------------------------------
def evaluate_plan_at(
    plan: Plan,
    streams: dict[Label, Iterable[SGE]],
    t: int,
) -> set[Pair]:
    """Evaluate a logical plan over input-stream snapshots at instant t.

    ``streams`` maps each input label to its raw sge sequence; the WSCAN
    leaves apply their window definitions to decide which edges are live
    at ``t``.
    """
    return _eval(plan, streams, t)


def _eval(plan: Plan, streams: dict[Label, Iterable[SGE]], t: int) -> set[Pair]:
    if isinstance(plan, WScan):
        live: set[Pair] = set()
        for edge in streams.get(plan.label, ()):
            if edge.label != plan.label:
                continue
            if plan.prefilter is not None and not plan.prefilter.evaluate(
                edge.src, edge.trg, edge.label
            ):
                continue
            if plan.window.interval_for(edge.t).contains(t):
                live.add((edge.src, edge.trg))
        return live
    if isinstance(plan, Filter):
        label = plan.child.out_label
        return {
            (u, v)
            for u, v in _eval(plan.child, streams, t)
            if plan.predicate.evaluate(u, v, label)
        }
    if isinstance(plan, Relabel):
        return _eval(plan.child, streams, t)
    if isinstance(plan, Union):
        return _eval(plan.left, streams, t) | _eval(plan.right, streams, t)
    if isinstance(plan, Pattern):
        relations = [
            (_eval(conjunct.plan, streams, t), conjunct.src_var, conjunct.trg_var)
            for conjunct in plan.inputs
        ]
        return _join_pattern(relations, plan.src_var, plan.trg_var)
    if isinstance(plan, Path):
        facts = {label: _eval(child, streams, t) for label, child in plan.inputs}
        return regex_reachability(facts, plan.regex)
    raise PlanError(f"cannot evaluate plan node {plan!r}")


def _join_pattern(
    relations: list[tuple[set[Pair], str, str]],
    out_src: str,
    out_trg: str,
) -> set[Pair]:
    """Natural join of binary relations via backtracking over bindings."""
    results: set[Pair] = set()

    def extend(index: int, binding: dict[str, Vertex]) -> None:
        if index == len(relations):
            results.add((binding[out_src], binding[out_trg]))
            return
        facts, src_var, trg_var = relations[index]
        bound_src = binding.get(src_var)
        bound_trg = binding.get(trg_var)
        for u, v in facts:
            if bound_src is not None and u != bound_src:
                continue
            if bound_trg is not None and v != bound_trg:
                continue
            if src_var == trg_var and u != v:
                continue
            added = []
            if src_var not in binding:
                binding[src_var] = u
                added.append(src_var)
            if trg_var not in binding:
                binding[trg_var] = v
                added.append(trg_var)
            extend(index + 1, binding)
            for var in added:
                del binding[var]

    extend(0, {})
    return results


def regex_reachability(
    facts: dict[Label, set[Pair]],
    regex: RegexNode | str,
) -> set[Pair]:
    """All vertex pairs connected by a path spelling a word in L(regex).

    BFS over the product of the graph with the regex DFA (the classical
    one-time RPQ evaluation under arbitrary path semantics).
    """
    dfa = dfa_from_regex(regex)
    adjacency: dict[Vertex, list[tuple[Label, Vertex]]] = defaultdict(list)
    sources: set[Vertex] = set()
    for label, pairs in facts.items():
        for u, v in pairs:
            adjacency[u].append((label, v))
            sources.add(u)

    results: set[Pair] = set()
    # Only labels with a transition out of the DFA start state can begin
    # a path, so only their sources are useful BFS roots.
    start_labels = set(dfa.transitions.get(dfa.start, {}))
    for root in sources:
        if not any(label in start_labels for label, _ in adjacency[root]):
            continue
        seen = {(root, dfa.start)}
        queue = deque([(root, dfa.start)])
        while queue:
            vertex, state = queue.popleft()
            for label, nxt in adjacency.get(vertex, ()):
                target = dfa.delta(state, label)
                if target is None or (nxt, target) in seen:
                    continue
                seen.add((nxt, target))
                if dfa.is_accepting(target):
                    results.add((root, nxt))
                queue.append((nxt, target))
    return results


# ----------------------------------------------------------------------
# Direct Datalog (RQ) evaluation over a static graph
# ----------------------------------------------------------------------
def evaluate_rq(program: RQProgram, edb: Triples) -> set[Pair]:
    """Evaluate a Regular Query over a static edge relation.

    ``edb`` maps input labels to their (src, trg) pairs.  Used as ground
    truth for the DD baseline engine and for plan-translation tests.
    """
    facts: Triples = {label: set(pairs) for label, pairs in edb.items()}
    closures = {atom.name: atom for atom in program.closure_atoms()}

    for label in topological_order(program):
        if label in facts:
            continue
        if label in closures:
            atom = closures[label]
            facts[label] = transitive_closure(facts.get(atom.label, set()))
        else:
            derived: set[Pair] = set()
            for rule in program.rules_for(label):
                derived |= _eval_rule(rule, facts)
            facts[label] = derived
    return facts.get(ANSWER, set())


def _eval_rule(rule: Rule, facts: Triples) -> set[Pair]:
    relations = []
    for atom in rule.body:
        label = atom.name if isinstance(atom, ClosureAtom) else atom.label
        relations.append((facts.get(label, set()), atom.src, atom.trg))
    return _join_pattern(relations, rule.head_src, rule.head_trg)


def transitive_closure(pairs: set[Pair]) -> set[Pair]:
    """One-or-more-step transitive closure via per-source BFS."""
    adjacency: dict[Vertex, set[Vertex]] = defaultdict(set)
    for u, v in pairs:
        adjacency[u].add(v)

    closure: set[Pair] = set()
    for root in list(adjacency):
        seen: set[Vertex] = set()
        queue = deque(adjacency[root])
        while queue:
            vertex = queue.popleft()
            if vertex in seen:
                continue
            seen.add(vertex)
            closure.add((root, vertex))
            queue.extend(adjacency.get(vertex, ()))
    return closure
