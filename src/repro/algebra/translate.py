"""SGQ → canonical SGA translation (Algorithm SGQParser, Theorem 1).

The translation walks the predicates of the Regular Query in dependency
order and builds one SGA sub-plan per predicate:

* each EDB label becomes a ``WSCAN`` over its input stream,
* each transitive-closure atom ``l+(x, y) as d`` becomes a ``PATH`` with
  regex ``l+``,
* each rule becomes a ``PATTERN`` over the plans of its body atoms,
* multiple rules with the same head are merged with ``UNION``.

The result is the *canonical* plan; :mod:`repro.algebra.rewrite` explores
equivalent alternatives.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Path,
    Pattern,
    PatternInput,
    Plan,
    Relabel,
    Union,
    WScan,
)
from repro.core.tuples import Label
from repro.errors import PlanError
from repro.query.datalog import ANSWER, Atom, ClosureAtom, RQProgram, Rule
from repro.query.sgq import SGQ
from repro.query.validation import topological_order
from repro.regex.ast import Plus, Symbol


def sgq_to_sga(query: SGQ) -> Plan:
    """Translate a streaming graph query into its canonical SGA plan."""
    return _translate(query.program, query)


def rq_to_sga(program: RQProgram, query: SGQ) -> Plan:
    """Translate an RQ with the window specification of ``query``."""
    return _translate(program, query)


def _translate(program: RQProgram, query: SGQ) -> Plan:
    exp: dict[Label, Plan] = {}
    edb = program.edb_labels

    # Closure atoms are keyed by their exported name; collect one each.
    closures = {atom.name: atom for atom in program.closure_atoms()}

    for label in topological_order(program):
        if label in edb:
            exp[label] = WScan(label, query.window_for(label))
        elif label in closures:
            atom = closures[label]
            exp[label] = Path.over(
                {atom.label: exp[atom.label]},
                Plus(Symbol(atom.label)),
                label,
            )
        else:
            plan: Plan | None = None
            for rule in program.rules_for(label):
                rule_plan = _translate_rule(rule, exp)
                plan = rule_plan if plan is None else Union(plan, rule_plan, label)
            if plan is None:
                raise PlanError(f"predicate {label!r} has no defining rule")
            exp[label] = plan

    if ANSWER not in exp:
        raise PlanError(f"program does not define {ANSWER}")
    return exp[ANSWER]


def _translate_rule(rule: Rule, exp: dict[Label, Plan]) -> Plan:
    if single_atom_is_rename(rule):
        atom = rule.body[0]
        label = atom.name if isinstance(atom, ClosureAtom) else atom.label
        if label not in exp:
            raise PlanError(f"no plan for body predicate {label!r}")
        # Payload-preserving rename: materialized paths flow through.
        return Relabel(exp[label], rule.head_label)
    inputs = []
    for atom in rule.body:
        label = atom.name if isinstance(atom, ClosureAtom) else atom.label
        if label not in exp:
            raise PlanError(f"no plan for body predicate {label!r}")
        inputs.append(PatternInput(exp[label], atom.src, atom.trg))
    return Pattern(tuple(inputs), rule.head_src, rule.head_trg, rule.head_label)


def single_atom_is_rename(rule: Rule) -> bool:
    """True when a rule merely renames its single body atom.

    ``Answer(x, y) <- Notify(x, y)`` is a rename: the physical planner
    compiles such PATTERNs to a zero-state relabeling map instead of a
    join tree.
    """
    if len(rule.body) != 1:
        return False
    atom = rule.body[0]
    if isinstance(atom, (Atom, ClosureAtom)):
        return atom.variables == rule.head_variables and atom.src != atom.trg
    return False
