"""Human-readable rendering of logical plans."""

from __future__ import annotations

from repro.algebra.operators import Filter, Path, Pattern, Plan, Relabel, Union, WScan
from repro.errors import PlanError


def explain(plan: Plan) -> str:
    """Render a plan as an indented operator tree.

    >>> from repro.core import SlidingWindow
    >>> from repro.algebra.operators import WScan
    >>> print(explain(WScan("likes", SlidingWindow(24))))
    WSCAN likes W(T=24, beta=1)
    """
    lines: list[str] = []
    _render(plan, 0, lines)
    return "\n".join(lines)


def _render(plan: Plan, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    if isinstance(plan, WScan):
        suffix = f" WHERE {plan.prefilter}" if plan.prefilter else ""
        lines.append(f"{pad}WSCAN {plan.label} {plan.window}{suffix}")
        return
    if isinstance(plan, Filter):
        lines.append(f"{pad}FILTER {plan.predicate}")
        _render(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Relabel):
        lines.append(f"{pad}RELABEL -> {plan.label}")
        _render(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Union):
        tag = f" -> {plan.label}" if plan.label else ""
        lines.append(f"{pad}UNION{tag}")
        _render(plan.left, depth + 1, lines)
        _render(plan.right, depth + 1, lines)
        return
    if isinstance(plan, Pattern):
        vars_ = ", ".join(
            f"({c.src_var},{c.trg_var})" for c in plan.inputs
        )
        lines.append(
            f"{pad}PATTERN ({plan.src_var},{plan.trg_var}) -> {plan.label} "
            f"over {vars_}"
        )
        for conjunct in plan.inputs:
            _render(conjunct.plan, depth + 1, lines)
        return
    if isinstance(plan, Path):
        lines.append(f"{pad}PATH {plan.regex} -> {plan.label}")
        for _, child in plan.inputs:
            _render(child, depth + 1, lines)
        return
    raise PlanError(f"cannot explain plan node {plan!r}")
