"""Logical SGA operators (Section 5.1, Definitions 16-20).

Plans are immutable trees of frozen dataclasses, so structural equality
and hashing come for free — the rewriter and its tests rely on both.
Every operator consumes and produces *streaming graphs*; closedness of the
algebra is closedness of this type.

The five operators:

* :class:`WScan` — windowing; assigns validity intervals (Definition 16).
* :class:`Filter` — predicate over distinguished attributes (Definition 17).
* :class:`Union` — merge with optional relabeling (Definition 18).
* :class:`Pattern` — streaming subgraph pattern; a conjunctive query whose
  equality constraints are expressed by repeated variables (Definition 19).
* :class:`Path` — streaming path navigation under a label regex
  (Definition 20); results carry materialized paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.tuples import Label
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.regex.ast import RegexNode


@dataclass(frozen=True, slots=True)
class Predicate:
    """A conjunction of equality/inequality conditions on sgt attributes.

    Each condition is ``(attribute, op, value)`` with attribute in
    ``{"src", "trg", "label"}`` and op in ``{"==", "!="}``.  Keeping
    predicates first-order (rather than opaque callables) keeps plans
    hashable and lets the rewriter reason about them.
    """

    conditions: tuple[tuple[str, str, object], ...]

    def __post_init__(self) -> None:
        for attribute, op, _ in self.conditions:
            if attribute not in ("src", "trg", "label"):
                raise PlanError(f"unknown predicate attribute {attribute!r}")
            if op not in ("==", "!="):
                raise PlanError(f"unknown predicate operator {op!r}")

    def evaluate(self, src: object, trg: object, label: Label) -> bool:
        values = {"src": src, "trg": trg, "label": label}
        for attribute, op, expected in self.conditions:
            actual = values[attribute]
            if op == "==" and actual != expected:
                return False
            if op == "!=" and actual == expected:
                return False
        return True

    def __str__(self) -> str:
        return " AND ".join(f"{a} {op} {v!r}" for a, op, v in self.conditions)


class Plan:
    """Base class for logical plan nodes."""

    #: label of the sgts this operator emits
    out_label: Label

    def children(self) -> tuple["Plan", ...]:
        raise NotImplementedError

    def input_labels(self) -> frozenset[Label]:
        """All EDB labels scanned anywhere below this node."""
        labels: set[Label] = set()
        for node in walk(self):
            if isinstance(node, WScan):
                labels.add(node.label)
        return frozenset(labels)


@dataclass(frozen=True, slots=True)
class WScan(Plan):
    """Windowing scan over the input stream of ``label`` (Definition 16).

    The optional ``prefilter`` models the Section 5.4 rule that pushes a
    FILTER below the window: the predicate is applied to raw sges before
    validity intervals are assigned, reducing windowing state.
    """

    label: Label
    window: SlidingWindow
    prefilter: Predicate | None = None

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        return self.label

    def children(self) -> tuple[Plan, ...]:
        return ()

    def __str__(self) -> str:
        suffix = f" | {self.prefilter}" if self.prefilter else ""
        return f"WSCAN[{self.window}]({self.label}{suffix})"


@dataclass(frozen=True, slots=True)
class Filter(Plan):
    """FILTER: keep sgts satisfying a predicate (Definition 17)."""

    child: Plan
    predicate: Predicate

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        return self.child.out_label

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"FILTER[{self.predicate}]({self.child})"


@dataclass(frozen=True, slots=True)
class Union(Plan):
    """UNION with optional output relabeling (Definition 18)."""

    left: Plan
    right: Plan
    label: Label | None = None

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        if self.label is not None:
            return self.label
        if self.left.out_label == self.right.out_label:
            return self.left.out_label
        raise PlanError(
            "UNION of differently-labeled inputs "
            f"({self.left.out_label!r}, {self.right.out_label!r}) "
            "requires an explicit output label"
        )

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        tag = f"[{self.label}]" if self.label else ""
        return f"UNION{tag}({self.left}, {self.right})"


@dataclass(frozen=True, slots=True)
class Relabel(Plan):
    """Relabel a stream while preserving payloads.

    Not one of the paper's five operators but the degenerate single-input
    UNION of Definition 18 (whose optional output label performs the
    relabeling).  Pure rename rules such as ``Answer(x, y) <- K(x, y)``
    compile to Relabel so that materialized paths survive to the output —
    a PATTERN would replace the payload with a derived edge.
    """

    child: Plan
    label: Label

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        return self.label

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"RELABEL[{self.label}]({self.child})"


@dataclass(frozen=True, slots=True)
class PatternInput:
    """One conjunct of a PATTERN: a child plan bound to two variables."""

    plan: Plan
    src_var: str
    trg_var: str

    def __str__(self) -> str:
        return f"{self.plan}:({self.src_var},{self.trg_var})"


@dataclass(frozen=True, slots=True)
class Pattern(Plan):
    """PATTERN: streaming subgraph pattern matching (Definition 19).

    The equality constraints Phi of Definition 19 are encoded by repeated
    variables across :class:`PatternInput` conjuncts, exactly as in the
    Datalog formulation of SGQ.  The result's endpoints are the values of
    ``src_var`` and ``trg_var``; its validity interval is the intersection
    of the participating tuples' intervals.
    """

    inputs: tuple[PatternInput, ...]
    src_var: str
    trg_var: str
    label: Label

    def __post_init__(self) -> None:
        if not self.inputs:
            raise PlanError("PATTERN requires at least one input")
        bound = self.variables
        for var in (self.src_var, self.trg_var):
            if var not in bound:
                raise PlanError(f"PATTERN output variable {var!r} not bound")

    @property
    def variables(self) -> frozenset[str]:
        names: set[str] = set()
        for conjunct in self.inputs:
            names.add(conjunct.src_var)
            names.add(conjunct.trg_var)
        return frozenset(names)

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        return self.label

    def children(self) -> tuple[Plan, ...]:
        return tuple(conjunct.plan for conjunct in self.inputs)

    def __str__(self) -> str:
        ins = ", ".join(str(c) for c in self.inputs)
        return f"PATTERN[{self.src_var},{self.trg_var},{self.label}]({ins})"


@dataclass(frozen=True, slots=True)
class Path(Plan):
    """PATH: streaming path navigation (Definition 20).

    ``inputs`` maps each alphabet label of ``regex`` to the child plan
    producing that label's streaming graph (stored as a sorted tuple of
    pairs to stay hashable).  Results are materialized paths labeled
    ``label`` whose label sequences belong to ``L(regex)``.
    """

    inputs: tuple[tuple[Label, Plan], ...]
    regex: RegexNode
    label: Label

    def __post_init__(self) -> None:
        if isinstance(self.regex, str):
            from repro.regex.parser import parse_regex

            object.__setattr__(self, "regex", parse_regex(self.regex))
        provided = {l for l, _ in self.inputs}
        needed = set(self.regex.alphabet())
        if not needed:
            raise PlanError("PATH regex has an empty alphabet")
        missing = needed - provided
        if missing:
            raise PlanError(f"PATH regex labels without inputs: {sorted(missing)}")
        extra = provided - needed
        if extra:
            raise PlanError(f"PATH inputs not used by regex: {sorted(extra)}")
        if self.regex.nullable():
            raise PlanError(
                "PATH regex accepts the empty word; zero-length paths have "
                "no endpoints (use the closure form l+ / R R*)"
            )

    @staticmethod
    def over(inputs: dict[Label, Plan], regex: RegexNode, label: Label) -> "Path":
        """Convenience constructor taking a plain dict of inputs."""
        ordered = tuple(sorted(inputs.items(), key=lambda kv: kv[0]))
        return Path(ordered, regex, label)

    @property
    def input_map(self) -> dict[Label, Plan]:
        return dict(self.inputs)

    @property
    def out_label(self) -> Label:  # type: ignore[override]
        return self.label

    def children(self) -> tuple[Plan, ...]:
        return tuple(plan for _, plan in self.inputs)

    def __str__(self) -> str:
        ins = ", ".join(f"{l}={p}" for l, p in self.inputs)
        return f"PATH[{self.regex},{self.label}]({ins})"


def walk(plan: Plan) -> Iterator[Plan]:
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)
