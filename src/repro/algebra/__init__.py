"""Streaming Graph Algebra (Section 5).

Logical SGA operator trees (:mod:`repro.algebra.operators`), the
``SGQParser`` translation from SGQ to canonical SGA expressions
(:mod:`repro.algebra.translate`, Algorithm 1 / Theorem 1), the one-time
*reference* evaluator over snapshot graphs used to check snapshot
reducibility (:mod:`repro.algebra.reference`), and the Section 5.4
transformation rules with plan enumeration (:mod:`repro.algebra.rewrite`).
"""

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Plan,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.algebra.reference import evaluate_plan_at, evaluate_rq
from repro.algebra.rewrite import (
    concat_to_pattern,
    enumerate_plans,
    fuse_pattern_into_path,
    push_filter_into_wscan,
    split_alternation,
)
from repro.algebra.join_order import reorder_joins
from repro.algebra.optimizer import choose_plan, static_cost
from repro.algebra.translate import sgq_to_sga
from repro.algebra.explain import explain

__all__ = [
    "Plan",
    "WScan",
    "Filter",
    "Union",
    "Pattern",
    "PatternInput",
    "Path",
    "Predicate",
    "Relabel",
    "sgq_to_sga",
    "evaluate_plan_at",
    "evaluate_rq",
    "enumerate_plans",
    "split_alternation",
    "concat_to_pattern",
    "fuse_pattern_into_path",
    "push_filter_into_wscan",
    "explain",
    "choose_plan",
    "static_cost",
    "reorder_joins",
]
