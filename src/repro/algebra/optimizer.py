"""A sampling-based plan optimizer (the paper's "ongoing research").

Section 7.4 shows that the transformation rules of Section 5.4 span a
plan space whose members differ by tens of percent in throughput, and
names an SGA-based optimizer as ongoing work.  This module provides a
first, honest cut at one:

1. enumerate equivalent plans with the transformation rules
   (:func:`repro.algebra.rewrite.enumerate_plans`);
2. score each candidate either with a *calibration run* over a sample
   prefix of the stream (ground truth, costs sample × plans work), or
   with a cheap static cost model;
3. return the winner.

The static model is deliberately simple — it captures the two first-order
effects visible in Figures 12-14: every stateful operator pays for its
retained state, and PATH state grows with (automaton states × closure
depth), while PATTERN joins pay per conjunct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algebra.operators import Path, Pattern, Plan, Union, WScan, walk
from repro.algebra.rewrite import enumerate_plans
from repro.core.tuples import SGE
from repro.regex.ast import Plus, RegexNode, Star
from repro.regex.dfa import dfa_from_regex


# ----------------------------------------------------------------------
# Static cost model
# ----------------------------------------------------------------------
def static_cost(plan: Plan) -> float:
    """A unitless cost estimate; lower is better.

    Counts operator state drivers: PATH pays per automaton state and per
    input label (each extends the product space the Δ-PATH index spans),
    doubled under unbounded recursion; PATTERN pays per join conjunct;
    UNION and WSCAN are nearly free.
    """
    cost = 0.0
    for node in walk(plan):
        if isinstance(node, Path):
            dfa = dfa_from_regex(node.regex)
            states = max(1, len(dfa.states) - 1)
            recursion = 2.0 if _recursive(node.regex) else 1.0
            cost += 3.0 * states * recursion + len(node.inputs)
        elif isinstance(node, Pattern):
            cost += 2.0 * len(node.inputs)
        elif isinstance(node, Union):
            cost += 0.5
        elif isinstance(node, WScan):
            cost += 0.1
    return cost


def _recursive(regex: RegexNode) -> bool:
    if isinstance(regex, (Plus, Star)):
        return True
    return any(_recursive(child) for child in _regex_children(regex))


def _regex_children(regex: RegexNode):
    for attr in ("left", "right", "inner"):
        child = getattr(regex, attr, None)
        if child is not None:
            yield child


# ----------------------------------------------------------------------
# Calibration (measured) costs
# ----------------------------------------------------------------------
def measured_cost(plan: Plan, sample: list[SGE], path_impl: str = "negative") -> float:
    """Seconds to run ``plan`` over the sample stream (lower is better)."""
    import time

    from repro.engine.session import EngineConfig, StreamingGraphEngine

    engine = StreamingGraphEngine(
        EngineConfig(path_impl=path_impl, materialize_paths=False)
    )
    engine.register(plan, name="trial")
    start = time.perf_counter()
    engine.push_many(sample)
    return time.perf_counter() - start


@dataclass
class OptimizerReport:
    """The chosen plan plus per-candidate scores for inspection."""

    best: Plan
    scores: list[tuple[Plan, float]]

    @property
    def candidates(self) -> int:
        return len(self.scores)


def choose_plan(
    plan: Plan,
    sample: Iterable[SGE] | None = None,
    limit: int = 16,
    path_impl: str = "negative",
) -> OptimizerReport:
    """Pick the cheapest equivalent plan.

    With a ``sample`` stream, candidates are scored by calibration runs
    (accurate, costs one sample pass per candidate); without one, the
    static model decides.
    """
    candidates = enumerate_plans(plan, limit=limit)
    sample_list = list(sample) if sample is not None else None
    scores: list[tuple[Plan, float]] = []
    for candidate in candidates:
        if sample_list:
            score = measured_cost(candidate, sample_list, path_impl)
        else:
            score = static_cost(candidate)
        scores.append((candidate, score))
    scores.sort(key=lambda pair: pair[1])
    return OptimizerReport(best=scores[0][0], scores=scores)
