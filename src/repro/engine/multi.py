"""Multi-query processing with cross-query operator sharing.

Several persistent queries often scan the same input streams, apply the
same windows, and even share whole sub-patterns (every query of a
recommendation service starts from the same follows-closure).  Because
logical plans are immutable value objects, compiling all queries into
one dataflow with a shared compilation cache deduplicates every common
sub-expression automatically: one WSCAN per (label, window), one Δ-PATH
index per shared closure, one join tree per shared pattern.

This is the spirit of multi-view sharing systems (Graphsurge's shared
arrangements, discussed in the paper's Section 2.2) realized at the
logical-plan level of the SGA framework.

Example::

    multi = MultiQueryProcessor(path_impl="spath")
    multi.register("reach", SGQ.from_text("Answer(x,y) <- knows+(x,y) as K.", w))
    multi.register("pairs", SGQ.from_text(
        "Answer(x,z) <- knows+(x,y) as K, likes(y,z).", w))
    multi.run(stream)
    multi.valid_at("reach", t), multi.valid_at("pairs", t)

Both queries above share the ``knows+`` Δ-PATH operator: the closure is
maintained once, its results fan out to both consumers.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.operators import Plan, WScan, walk
from repro.algebra.translate import sgq_to_sga
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, Label, Vertex
from repro.dataflow.executor import Executor, RunStats
from repro.dataflow.graph import DataflowGraph, PhysicalOperator, SinkOp
from repro.errors import ExecutionError, PlanError
from repro.physical.planner import compile_into
from repro.query.sgq import SGQ


class MultiQueryProcessor:
    """Evaluates several persistent queries over shared input streams."""

    def __init__(
        self,
        path_impl: str = "spath",
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        batch_size: int | None = None,
    ):
        self._path_impl = path_impl
        self._materialize_paths = materialize_paths
        self._coalesce_intermediate = coalesce_intermediate
        self._batch_size = batch_size
        self._graph = DataflowGraph()
        self._cache: dict[Plan, PhysicalOperator] = {}
        self._sinks: dict[str, SinkOp] = {}
        self._plans: dict[str, Plan] = {}
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, query: SGQ | Plan) -> None:
        """Register a query under ``name``; shares operators with every
        previously registered query.  Registration must precede pushing."""
        if self._executor is not None:
            raise ExecutionError(
                "cannot register queries after streaming has started"
            )
        if name in self._sinks:
            raise PlanError(f"query name {name!r} already registered")
        plan = sgq_to_sga(query) if isinstance(query, SGQ) else query
        self._plans[name] = plan
        self._sinks[name] = compile_into(
            plan,
            self._graph,
            self._cache,
            self._path_impl,
            self._materialize_paths,
            self._coalesce_intermediate,
        )

    @property
    def query_names(self) -> tuple[str, ...]:
        return tuple(self._plans)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if not self._plans:
                raise ExecutionError("no queries registered")
            slide = min(
                node.window.slide
                for plan in self._plans.values()
                for node in walk(plan)
                if isinstance(node, WScan)
            )
            self._executor = Executor(
                self._graph, slide, batch_size=self._batch_size
            )
        return self._executor

    def push(self, edge: SGE) -> None:
        self._ensure_executor().push_edge(edge)

    def delete(self, edge: SGE) -> None:
        self._ensure_executor().delete_edge(edge)

    def advance_to(self, t: int) -> None:
        self._ensure_executor().advance_to(t)

    def run(self, stream: Iterable[SGE]) -> RunStats:
        return self._ensure_executor().run(stream)

    # ------------------------------------------------------------------
    # Results (per query)
    # ------------------------------------------------------------------
    def _sink(self, name: str) -> SinkOp:
        try:
            return self._sinks[name]
        except KeyError as exc:
            raise PlanError(f"unknown query {name!r}") from exc

    def results(self, name: str) -> list[SGT]:
        return self._sink(name).results()

    def coverage(self, name: str) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        return self._sink(name).coverage()

    def valid_at(self, name: str, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        return self._sink(name).valid_at(t)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def operator_count(self) -> int:
        """Operators in the shared dataflow (excluding sinks)."""
        return sum(
            1 for op in self._graph.operators if not isinstance(op, SinkOp)
        )

    def sharing_savings(self) -> int:
        """Operators saved by sharing, vs compiling each query alone."""
        from repro.physical.planner import compile_plan

        isolated = 0
        for plan in self._plans.values():
            physical = compile_plan(
                plan,
                self._path_impl,
                self._materialize_paths,
                self._coalesce_intermediate,
            )
            isolated += sum(
                1
                for op in physical.graph.operators
                if not isinstance(op, SinkOp)
            )
        return isolated - self.operator_count()

    def state_size(self) -> int:
        return self._graph.state_size()
