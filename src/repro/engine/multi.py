"""Deprecated multi-query facade over :mod:`repro.engine.session`.

.. deprecated::
    :class:`MultiQueryProcessor` is a thin compatibility shim over
    :class:`~repro.engine.session.StreamingGraphEngine` and will be
    removed one release after the session API landed.  The session API
    is a superset: it additionally supports a ``late_policy`` (which
    this facade historically lacked), per-result callbacks, *live*
    registration/unregistration mid-stream, and the ``dd`` backend.
    Migrate::

        # old
        multi = MultiQueryProcessor(path_impl="spath")
        multi.register("reach", sgq)
        multi.run(stream); multi.valid_at("reach", t)

        # new
        engine = StreamingGraphEngine(EngineConfig(path_impl="spath"))
        reach = engine.register(sgq, name="reach")
        engine.push_many(stream); reach.valid_at(t)

Cross-query operator sharing is unchanged (it lives in the engine):
logical plans are immutable value objects, so compiling all queries into
one dataflow with a shared compilation cache deduplicates every common
sub-expression — one WSCAN per (label, window), one Δ-PATH index per
shared closure, one join tree per shared pattern.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.algebra.operators import Plan
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, Label, Vertex
from repro.dataflow.executor import RunStats
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import ExecutionError
from repro.query.sgq import SGQ

_DEPRECATION = (
    "MultiQueryProcessor is deprecated; use StreamingGraphEngine — it "
    "shares operators the same way and additionally supports live "
    "register/unregister, late policies, callbacks and the dd backend "
    "(see repro.engine.session)"
)


class MultiQueryProcessor:
    """Evaluates several persistent queries over shared input streams.

    Deprecated: see the module docstring for the migration path.
    """

    def __init__(
        self,
        path_impl: str = "spath",
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        batch_size: int | None = None,
        late_policy: str = "allow",
    ):
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        self._engine = StreamingGraphEngine(
            EngineConfig(
                backend="sga",
                path_impl=path_impl,
                materialize_paths=materialize_paths,
                coalesce_intermediate=coalesce_intermediate,
                batch_size=batch_size,
                late_policy=late_policy,
            )
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, query: SGQ | Plan) -> None:
        """Register a query under ``name``; shares operators with every
        previously registered query.

        This facade keeps its historical contract that registration must
        precede pushing; the session API it wraps supports live
        registration (:meth:`StreamingGraphEngine.register`).
        """
        if self._engine.started:
            raise ExecutionError(
                "cannot register queries after streaming has started"
            )
        self._engine.register(query, name=name)

    @property
    def query_names(self) -> tuple[str, ...]:
        return self._engine.query_names

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def push(self, edge: SGE) -> None:
        self._engine.push(edge)

    def delete(self, edge: SGE) -> None:
        self._engine.delete(edge)

    def advance_to(self, t: int) -> None:
        self._engine.advance_to(t)

    def run(self, stream: Iterable[SGE]) -> RunStats:
        return self._engine.push_many(stream)

    @property
    def late_count(self) -> int:
        """Late edges discarded under ``late_policy="drop"``."""
        return self._engine.late_count

    # ------------------------------------------------------------------
    # Results (per query)
    # ------------------------------------------------------------------
    def results(self, name: str) -> list[SGT]:
        return self._engine.handle(name).results()

    def coverage(self, name: str) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        return self._engine.handle(name).coverage()

    def valid_at(self, name: str, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        return self._engine.handle(name).valid_at(t)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def operator_count(self) -> int:
        """Operators in the shared dataflow (excluding sinks)."""
        return self._engine.operator_count()

    def sharing_savings(self) -> int:
        """Operators saved by sharing, vs compiling each query alone."""
        return self._engine.sharing_savings()

    def state_size(self) -> int:
        return self._engine.state_size()
