"""One engine API: ``StreamingGraphEngine`` sessions with query handles.

The paper's core claim is that a single algebra evaluates many persistent
queries over one streaming graph.  This module is that claim as an API: a
long-lived engine session that queries attach to and detach from *while
the stream is live*, in the spirit of the shared-arrangement multi-view
systems (e.g. Graphsurge) discussed in the paper's Section 2.2.

* :class:`EngineConfig` — one frozen, validated configuration object
  replacing the kwarg sprawl of the historical facades
  (``path_impl`` / ``materialize_paths`` / ``coalesce_intermediate`` /
  ``batch_size`` / ``late_policy``), plus ``backend`` selection.
* :class:`StreamingGraphEngine` — owns one dataflow + scheduler;
  ``register`` returns a :class:`QueryHandle`, ``unregister`` detaches a
  query and prunes now-unshared operators from the live dataflow.
* :class:`QueryHandle` — per-query surface: ``results()``, ``valid_at``,
  ``coverage``, ``stats()``, ``explain()``, push (``on_result``
  callbacks) and pull delivery over the same event stream.
* ``backend="sga" | "dd"`` — the SGA dataflow or the DD baseline behind
  the *same* handle API, so SGA-vs-DD comparisons are a one-line config
  flip (both are driven by the shared
  :class:`~repro.core.batch.BatchScheduler`).

Live lifecycle semantics
------------------------

**Register mid-stream** splices the compiled operators into the shared
dataflow: common sub-expressions re-share the cached operators, new
sources/operators are aligned to the current watermark
(:meth:`~repro.dataflow.graph.DataflowGraph.sync_watermarks`), and the
new query *backfills* from retained window state where possible:

* shared stateful operators (a Δ-PATH closure, a join's delta index)
  already hold the live window's tuples, so future results incorporate
  edges that arrived before registration;
* if the whole plan is already compiled for another live query, the new
  sink additionally backfills that query's accumulated result events, so
  ``results()`` parity is immediate;
* state that only *non-shared* operators would have held is gone — a
  partially-shared query registered mid-stream misses results whose
  non-shared constituents arrived before registration, until those edges
  would have expired anyway.  (The ``dd`` backend never backfills: a
  query registered mid-stream starts from an empty window.)

**Unregister mid-stream** detaches the sink and prunes every operator
reachable only through it; shared operators keep serving the surviving
queries untouched.  The handle stays readable (its accumulated results
are retained) but no longer receives new results.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.algebra.operators import Plan, WScan
from repro.algebra.translate import sgq_to_sga
from repro.checkpoint.rebalance import rebalance_states
from repro.checkpoint.topology import load_operator_states, operator_keys
from repro.core.batch import BatchScheduler, RunStats
from repro.core.coalesce import coalesce_stream
from repro.core.interning import Interner, intern_plan
from repro.core.nplib import HAVE_NUMPY
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, Label, Vertex
from repro.dataflow.executor import LATE_POLICIES, Executor
from repro.dataflow.graph import INSERT, DataflowGraph, PhysicalOperator, SinkOp
from repro.dd.runtime import DDRuntime
from repro.engine.sharded import (
    MergedTapSink,
    ShardedSgaRuntime,
    merged_coverage,
)
from repro.errors import (
    CheckpointError,
    ExecutionError,
    HorizonError,
    PlanError,
    StreamOrderError,
)
from repro.fault.policy import CheckpointPolicy
from repro.physical.planner import (
    PATH_IMPLS,
    compile_into,
    compile_plan,
    evict_dead,
    plan_slide,
)
from repro.physical.state_arrays import apply_state_layout
from repro.ql.query import Query
from repro.query.datalog import ANSWER
from repro.query.sgq import SGQ

#: Engine implementations selectable behind the same handle API.
BACKENDS = ("sga", "dd")

#: Execution representations for the sga backend.  ``"vector"`` (the
#: default whenever numpy is importable) carries interned deltas as
#: numpy int64 column arrays through vectorized operator kernels;
#: ``"columnar"`` interns vertices to dense ids at ingress and streams
#: deltas as parallel scalar *list* columns; ``"rows"`` is the
#: historical object-graph path (per-tuple events, or row batches when
#: ``batch_size`` is set).  The two non-default modes are kept
#: selectable as golden references proving all three produce identical
#: decoded results.  ``"auto"`` — the config default — resolves to
#: ``"vector"`` when numpy is available and degrades to ``"columnar"``
#: (with a single warning) when it is not.
EXECUTIONS = ("vector", "columnar", "rows")

#: Shard transports for ``shards > 1`` (see :mod:`repro.engine.sharded`):
#: ``"inline"`` is the in-process deterministic scheduler (exact serial
#: semantics, used by golden tests), ``"process"`` the multiprocessing
#: backend (real multi-core speedup).
SHARD_TRANSPORTS = ("inline", "process")

#: Config fields a single query may override at ``register`` time (they
#: only affect how *that* query's plan is compiled).  The remaining
#: fields — ``backend``, ``batch_size``, ``late_policy`` — configure the
#: shared scheduler and are engine-wide.
PER_QUERY_OPTIONS = frozenset(
    {"path_impl", "materialize_paths", "coalesce_intermediate"}
)

#: One degrade warning per process (not one per EngineConfig).
_warned_vector_degrade = False


def _resolve_auto_execution() -> str:
    """``"vector"`` when numpy is importable, else ``"columnar"``.

    The degrade path warns exactly once per process: engines are
    constructed freely in tests and benchmarks, and the actionable fact
    — numpy missing, vector default unavailable — does not change
    between constructions.
    """
    if HAVE_NUMPY:
        return "vector"
    global _warned_vector_degrade
    if not _warned_vector_degrade:
        _warned_vector_degrade = True
        warnings.warn(
            "numpy is not installed: execution='auto' degrades to "
            "'columnar' (install the optional extra, pip install "
            '"repro[vector]", for the vectorized default)',
            RuntimeWarning,
            stacklevel=4,
        )
    return "columnar"


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Validated, immutable engine configuration.

    Parameters
    ----------
    backend:
        ``"sga"`` (the paper's algebra, the default) or ``"dd"`` (the
        Differential-Dataflow-style baseline) — same handle API either
        way.
    path_impl:
        Physical PATH implementation for the sga backend
        (``"spath"`` or ``"negative"``; Table 3 swaps these).
    materialize_paths:
        Whether PATH operators reconstruct hop sequences (requirement
        R3) or emit bare reachability pairs.
    coalesce_intermediate:
        Whether the Section 5.1 coalescing stage is inserted on
        stateful→stateful edges.
    batch_size:
        Edges per scheduler flush; ``None`` = one flush per slide for
        columnar sga execution (per-tuple for ``execution="rows"``), one
        whole epoch per slide for dd.
    late_policy:
        ``"allow"`` / ``"drop"`` / ``"raise"`` for edges behind the
        current slide boundary.
    execution:
        ``"auto"`` (the default) resolves at construction time to
        ``"vector"`` when numpy is importable, else to ``"columnar"``
        (warning once per process).  ``"vector"`` carries interned
        deltas as numpy int64 arrays through vectorized kernels and
        *requires* numpy — an explicit request without it raises.
        ``"columnar"`` is interned ids + column-at-a-time operators over
        plain lists; ``"rows"`` the historical object-per-tuple path.
        All three decode transparently at every read surface.  sga
        backend only; the dd baseline ignores it.
    columnar_min_run:
        Minimum same-label ingress run length that flows as a columnar
        batch (shorter runs dispatch per event, where batch overhead
        does not amortize); applies to the columnar and vector
        executions.  Default 8 (the measured break-even of the batch
        fixed costs on the benchmark workloads).
    shards:
        Number of partition-parallel shard workers (default 1 = the
        unsharded engine, bit-identical to historical behavior).  With
        ``shards > 1`` the sga backend hash-partitions the stateful work
        of every registered plan — PATH forests by root vertex, PATTERN
        joins by join key — across that many shards behind the same
        handle API (see :mod:`repro.engine.sharded`).  Requires
        ``backend="sga"`` and an interned execution (``"columnar"`` or
        ``"vector"`` — dense interned ids are what shards exchange).
    shard_transport:
        ``"inline"`` (default): all shards in this process, stepped
        deterministically — exact serial semantics, full live-lifecycle
        support, no parallel speedup.  ``"process"``: one OS process per
        shard for real multi-core throughput; queries must be registered
        before streaming starts and push callbacks are unsupported.
    checkpoint_policy:
        A :class:`~repro.fault.policy.CheckpointPolicy` (or the
        equivalent dict) arming fault tolerance.  On the sharded
        process transport it turns on *supervision*: crashed shard
        workers are respawned, restored from a bounded in-memory
        snapshot + replay log, and the recovered engine is
        bit-identical to an uninterrupted run (retry budget and
        backoff come from ``checkpoint_policy.retry``).  It is also the
        default cadence for
        :meth:`StreamingGraphEngine.enable_auto_checkpoint` and the
        serve layer's periodic durable checkpoints.  ``None`` (default)
        keeps the historical fail-fast behavior.
    """

    backend: str = "sga"
    path_impl: str = "spath"
    materialize_paths: bool = True
    coalesce_intermediate: bool = True
    batch_size: int | None = None
    late_policy: str = "allow"
    execution: str = "auto"
    columnar_min_run: int = 8
    shards: int = 1
    shard_transport: str = "inline"
    checkpoint_policy: "CheckpointPolicy | None" = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.execution == "auto":
            # Resolve the numpy-optional default once, at construction:
            # downstream code only ever sees a concrete execution.
            object.__setattr__(
                self, "execution", _resolve_auto_execution()
            )
        elif self.execution == "vector" and not HAVE_NUMPY:
            raise ValueError(
                "execution='vector' requires numpy, which is not "
                'installed; install the optional extra (pip install '
                '"repro[vector]") or use execution="columnar"'
            )
        if self.execution not in EXECUTIONS:
            raise ValueError(
                f"unknown execution {self.execution!r}; "
                f"expected one of {EXECUTIONS} (or 'auto')"
            )
        if not isinstance(self.columnar_min_run, int) or isinstance(
            self.columnar_min_run, bool
        ) or self.columnar_min_run < 1:
            raise ValueError(
                f"columnar_min_run must be an int >= 1, "
                f"got {self.columnar_min_run!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(f"shards must be an int >= 1, got {self.shards!r}")
        if self.shard_transport not in SHARD_TRANSPORTS:
            raise ValueError(
                f"unknown shard_transport {self.shard_transport!r}; "
                f"expected one of {SHARD_TRANSPORTS}"
            )
        if self.shards > 1:
            if self.backend != "sga":
                raise ValueError(
                    "shards > 1 requires backend='sga' (the dd baseline "
                    "is single-threaded by design)"
                )
            if self.execution not in ("columnar", "vector"):
                raise ValueError(
                    "shards > 1 requires an interned execution "
                    "('columnar' or 'vector'; shards exchange interned "
                    "columnar deltas)"
                )
        if self.path_impl not in PATH_IMPLS:
            raise PlanError(
                f"unknown PATH implementation {self.path_impl!r}; "
                f"expected one of {PATH_IMPLS}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.late_policy not in LATE_POLICIES:
            raise ValueError(
                f"unknown late policy {self.late_policy!r}; "
                f"expected one of {LATE_POLICIES}"
            )
        if isinstance(self.checkpoint_policy, dict):
            # Checkpoint round trip: EngineConfig(**asdict(config))
            # hands the nested policy back as a plain dict.
            object.__setattr__(
                self,
                "checkpoint_policy",
                CheckpointPolicy(**self.checkpoint_policy),
            )
        elif self.checkpoint_policy is not None and not isinstance(
            self.checkpoint_policy, CheckpointPolicy
        ):
            raise ValueError(
                "checkpoint_policy must be a CheckpointPolicy (or None), "
                f"got {self.checkpoint_policy!r}"
            )

    def with_overrides(self, **overrides: object) -> "EngineConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ValueError(
                f"unknown EngineConfig field(s): {sorted(unknown)}"
            )
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class QueryStats:
    """Per-query execution counters (see :meth:`QueryHandle.stats`)."""

    name: str
    backend: str
    #: Coalesced result count (sga) / current Answer size (dd).
    results: int
    #: Raw result insertions delivered (sga) / cumulative Answer
    #: additions across epochs (dd).
    inserts: int
    #: Raw result retractions delivered (sga) / cumulative Answer
    #: removals across epochs (dd).
    retractions: int
    #: Retained tuples: the whole shared dataflow for sga (state is
    #: shared between queries and not attributable), this query's
    #: relations + closures for dd.
    state_size: int
    live: bool
    #: Raw result events delivered (inserts + retractions) — the
    #: push-delivery volume a subscriber to this query observes.
    events: int = 0
    #: Last performed window movement (engine boundary for sga, this
    #: query's epoch for dd); ``None`` before streaming starts.
    watermark: int | None = None
    #: Wall-clock time (``time.time()``) of the most recent window
    #: movement; ``None`` before streaming starts.  ``time.time() -
    #: last_advance_at`` is the watermark lag the serving layer's
    #: ``/metrics`` endpoint reports.
    last_advance_at: float | None = None


class QueryHandle:
    """A registered persistent query: results, stats, lifecycle."""

    def __init__(self, engine: "StreamingGraphEngine", name: str):
        self._engine = engine
        self.name = name
        self._live = True

    @property
    def is_live(self) -> bool:
        """False once the query has been unregistered (the handle stays
        readable; it just receives no new results)."""
        return self._live

    def unregister(self) -> None:
        """Detach this query from the engine (see
        :meth:`StreamingGraphEngine.unregister`)."""
        self._engine.unregister(self.name)

    # Per-backend surface -------------------------------------------------
    def results(self):
        raise NotImplementedError

    def coverage(self):
        raise NotImplementedError

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        raise NotImplementedError

    def result_count(self) -> int:
        raise NotImplementedError

    def clear_results(self) -> None:
        raise NotImplementedError

    def stats(self) -> QueryStats:
        raise NotImplementedError

    def explain(self, level: str = "logical") -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._live else "detached"
        return f"<QueryHandle {self.name!r} ({state})>"


def _plan_max_window(plan: Plan) -> int:
    """The largest WSCAN window size in a plan (expiry-horizon bound)."""
    sizes = [0]
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, WScan):
            sizes.append(node.window.size)
        stack.extend(node.children())
    return max(sizes)


class SgaQueryHandle(QueryHandle):
    """Handle over a query compiled into the shared SGA dataflow."""

    def __init__(
        self,
        engine: "StreamingGraphEngine",
        name: str,
        plan: Plan,
        sink: SinkOp,
        root: PhysicalOperator | None,
        options: tuple,
    ):
        super().__init__(engine, name)
        self.plan = plan
        self._sink = sink
        self._root = root
        self._options = options
        self._plan_slide = plan_slide(plan)
        self._max_window = _plan_max_window(plan)

    def results(self) -> list[SGT]:
        """Coalesced result sgts (non-destructive, repeatable pull)."""
        return self._sink.results()

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per result key, honouring retractions."""
        return self._sink.coverage()

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Result keys valid at instant ``t``.

        Temporal-read contract (uniform across backends, exclusive at
        interval ends: a result expiring at ``t`` is *not* valid at
        ``t``):

        * ``t`` at or behind the last performed window movement (this
          query's slide grid): answered exactly from retained covers;
        * ``t`` at or past the expiry horizon — the instant by which
          everything ingested so far has expired: exactly the empty set;
        * in between: raises :class:`~repro.errors.HorizonError` (the
          engine has not performed those window movements; call
          ``engine.advance_to(t)`` first), mirroring the dd backend.
        """
        if not self._engine._sga_can_read_at(
            t, self._plan_slide, self._max_window
        ):
            return set()
        return self._sink.valid_at(t)

    def result_count(self) -> int:
        """Raw (pre-coalescing) result insertions delivered."""
        return self._sink.insert_count

    def clear_results(self) -> None:
        """Drop accumulated results (operator state is kept)."""
        self._sink.clear()

    def stats(self) -> QueryStats:
        inserts = self._sink.insert_count
        total = len(self._sink.events)
        return QueryStats(
            name=self.name,
            backend="sga",
            results=len(self._sink.results()),
            inserts=inserts,
            retractions=total - inserts,
            state_size=self._engine.state_size(),
            live=self._live,
            events=total,
            watermark=self._engine.watermark,
            last_advance_at=self._engine.last_advance_at,
        )

    def explain(self, level: str = "logical") -> str:
        """Render this query's plan at a pipeline stage.

        ``"logical"`` (default) is the plan the query was registered
        with; ``"optimized"`` shows it after the relabel-fusion rewrite;
        ``"physical"`` compiles a standalone dataflow with this query's
        options (inside the session the actual dataflow is shared, so
        operators may be fused with other queries' plans).
        """
        from repro.ql.pipeline import explain_plan_stage

        return explain_plan_stage(self.plan, level, self._options)


class ShardedQueryHandle(QueryHandle):
    """Handle over a query partitioned across shard workers.

    The same surface as :class:`SgaQueryHandle`; every read merges the
    per-shard sinks.  Each result event lives on exactly one shard
    (partitioned outputs are emitted once, replicated outputs are
    partition-filtered in front of the sinks), so the merged stream is
    the serial engine's event multiset and the set/cover surfaces are
    identical to ``shards=1``.
    """

    def __init__(
        self,
        engine: "StreamingGraphEngine",
        name: str,
        plan: Plan,
        options: tuple,
    ):
        super().__init__(engine, name)
        self.plan = plan
        self._options = options
        self._plan_slide = plan_slide(plan)
        self._max_window = _plan_max_window(plan)
        #: per-shard sinks (inline transport): held directly so the
        #: handle stays readable after unregister prunes them
        self._sinks = engine._sharded.sink_refs(name)

    def _events(self):
        if self._sinks is not None:
            out = []
            for sink in self._sinks:
                out.extend(sink.events)
            return out
        return self._engine._sharded.events(self.name)

    def results(self) -> list[SGT]:
        """Coalesced decoded result sgts, merged across shards."""
        interner = self._engine._interner
        decode = interner.decode_sgt
        return coalesce_stream(
            decode(e.sgt) for e in self._events() if e.sign == INSERT
        )

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per result key, merged across shards."""
        return merged_coverage(self._events(), self._engine._interner)

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Result keys valid at instant ``t`` (see
        :meth:`SgaQueryHandle.valid_at` for the temporal-read contract,
        which is identical)."""
        if not self._engine._sga_can_read_at(
            t, self._plan_slide, self._max_window
        ):
            return set()
        return {
            key
            for key, intervals in self.coverage().items()
            if any(iv.contains(t) for iv in intervals)
        }

    def _event_counts(self) -> tuple[int, int]:
        """(inserts, total) across shards — via the held sink refs when
        inline (detached handles stay countable), else counted inside
        the workers (no events cross a process boundary)."""
        if self._sinks is not None:
            inserts = sum(sink.insert_count for sink in self._sinks)
            total = sum(len(sink.events) for sink in self._sinks)
            return inserts, total
        return self._engine._sharded.event_counts(self.name)

    def result_count(self) -> int:
        """Raw (pre-coalescing) result insertions across all shards."""
        return self._event_counts()[0]

    def clear_results(self) -> None:
        """Drop accumulated results on every shard (state is kept)."""
        if self._sinks is not None:
            for sink in self._sinks:
                sink.clear()
            return
        self._engine._sharded.clear_results(self.name)

    def stats(self) -> QueryStats:
        inserts, total = self._event_counts()
        return QueryStats(
            name=self.name,
            backend="sga",
            results=len(self.results()),
            inserts=inserts,
            retractions=total - inserts,
            state_size=self._engine.state_size(),
            live=self._live,
            events=total,
            watermark=self._engine.watermark,
            last_advance_at=self._engine.last_advance_at,
        )

    def explain(self, level: str = "logical") -> str:
        """Render this query's plan (see :meth:`SgaQueryHandle.explain`;
        the physical level shows the unsharded compilation — each shard
        runs that topology plus the spliced exchange operators)."""
        from repro.ql.pipeline import explain_plan_stage

        return explain_plan_stage(self.plan, level, self._options)


class DDQueryHandle(QueryHandle):
    """Handle over a query evaluated by the DD baseline runtime.

    The DD baseline is snapshot-based: it maintains the *current* Answer
    relation per epoch and has neither validity intervals nor
    materialized paths.  ``valid_at(t)`` therefore answers from the
    recorded per-epoch history (advancing through empty epochs if ``t``
    lies ahead of the stream), ``results()`` returns the current Answer
    keys, and ``coverage()`` is unsupported.
    """

    def __init__(
        self,
        engine: "StreamingGraphEngine",
        name: str,
        sgq: SGQ,
        runtime: DDRuntime,
        on_result: Callable | None,
    ):
        super().__init__(engine, name)
        self.sgq = sgq
        self.window = sgq.window
        self._runtime = runtime
        self._callback = on_result
        self._boundaries: list[int] = []
        self._answers: list[frozenset] = []
        self._last_answer: frozenset = frozenset()
        #: wall-clock time of the most recent epoch movement
        self._last_advance_at: float | None = None

    # Epoch bookkeeping ---------------------------------------------------
    def advance_epoch(self, boundary: int, inserts: list[SGE]) -> set:
        """Apply one epoch (see :meth:`DDRuntime.advance_epoch`) and
        record its Answer snapshot for :meth:`valid_at` history.

        A time-based sliding window moves at *every* multiple of the
        slide interval (Definition 16), so a jump over quiet slides
        first steps through the intervening empty epochs — expirations
        are then attributed to the epoch that performs them, which keeps
        :meth:`valid_at` exact for instants between batches of arrivals.
        The stepping is bounded by the window extent, not the gap: once
        the runtime's retained state drains, the Answer is constantly
        empty and the remaining distance is one direct jump."""
        current = self._runtime.boundary
        if current is not None:
            slide = self.window.slide
            step = current + slide
            while step < boundary and self._runtime.has_retained_state:
                self._record(step, self._runtime.advance_epoch(step, []))
                step += slide
        answer = self._runtime.advance_epoch(boundary, inserts)
        if current is None or boundary > current:
            self._last_advance_at = time.time()
        self._record(boundary, answer)
        return answer

    def _record(self, boundary: int, answer: set) -> None:
        """Record one epoch's Answer for history/callbacks/counters.

        Only *changes* are stored: the Answer is constant between
        recorded boundaries, so :meth:`valid_at`'s latest-at-or-before
        lookup stays exact while an unchanged epoch costs one set
        equality and no allocation (the common case in quiet stretches —
        this bookkeeping sits inside the benchmark-timed apply loop).
        Per-epoch delta sets are computed only for push delivery; the
        pull-side counters derive lazily from the history
        (:meth:`_delivery_counts`).
        """
        if answer == self._last_answer:
            return
        frozen = frozenset(answer)
        if self._callback is not None:
            for pair in frozen - self._last_answer:
                self._callback((pair, 1))
            for pair in self._last_answer - frozen:
                self._callback((pair, -1))
        self._last_answer = frozen
        if self._boundaries and self._boundaries[-1] == boundary:
            self._answers[-1] = frozen
        else:
            self._boundaries.append(boundary)
            self._answers.append(frozen)

    def _delivery_counts(self) -> tuple[int, int]:
        """Cumulative Answer (additions, removals) across the recorded
        history — the pull-side equivalent of the callback deltas."""
        inserts = 0
        retractions = 0
        previous: frozenset = frozenset()
        for snapshot in self._answers:
            inserts += len(snapshot - previous)
            retractions += len(previous - snapshot)
            previous = snapshot
        return inserts, retractions

    def _ingest(self, edges: list[SGE]) -> None:
        """Apply a timestamp-ordered edge batch, one epoch per run of
        same-boundary edges; late runs join the current epoch with their
        true timestamps (subject to the engine's late policy)."""
        window = self.window
        i = 0
        n = len(edges)
        while i < n:
            boundary = window.slide_boundary(edges[i].t)
            j = i + 1
            while j < n and window.slide_boundary(edges[j].t) == boundary:
                j += 1
            run = edges[i:j]
            i = j
            current = self._runtime.boundary
            if current is not None and boundary < current:
                kept = [
                    e for e in run if self._engine._keep_late(e, current)
                ]
                if kept:
                    self.advance_epoch(current, kept)
            else:
                self.advance_epoch(boundary, run)

    def _advance_to(self, t: int) -> None:
        boundary = self.window.slide_boundary(t)
        if self._runtime.boundary is None or boundary > self._runtime.boundary:
            self.advance_epoch(boundary, [])

    # Query surface -------------------------------------------------------
    def answer(self) -> set:
        """The current Answer relation (DD vocabulary: vertex pairs)."""
        return self._runtime.answer()

    def results(self) -> list[tuple[Vertex, Vertex, Label]]:
        """Current Answer keys, ``(src, trg, "Answer")``, deterministic
        order.  No validity intervals, no paths — the baseline cannot
        produce them (which is part of the paper's point)."""
        return sorted(
            ((u, v, ANSWER) for u, v in self._runtime.answer()),
            key=repr,
        )

    def coverage(self):
        raise ExecutionError(
            "the dd backend does not track validity intervals; "
            "use valid_at(t) or answer()"
        )

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Answer keys at the epoch snapshot containing instant ``t``.

        DD batches a whole slide into one logical timestamp, so the
        epoch at boundary ``B`` corresponds to the snapshot at the
        epoch's *final* instant ``B + beta - 1`` — compare against the
        sga backend at those instants (mid-epoch instants are below
        DD's temporal resolution).

        This is a **pure read** following the same temporal-read
        contract as the sga backend (interval ends exclusive): instants
        up to the last performed epoch answer from the recorded history,
        instants at or past the runtime's expiry horizon are exactly the
        empty set (every inserted edge has expired by then), and the
        instants in between — window movements the baseline has *not yet
        performed* — raise :class:`~repro.errors.HorizonError` rather
        than silently advancing the stream; call
        :meth:`StreamingGraphEngine.advance_to` first.
        """
        boundary = self.window.slide_boundary(t)
        current = self._runtime.boundary
        if current is None or boundary > current:
            if boundary >= self._runtime.horizon:
                return set()
            raise HorizonError(
                f"instant {t} is ahead of the last performed window "
                f"movement (epoch {current}); the dd backend cannot "
                f"answer about epochs it has not evaluated — call "
                f"engine.advance_to({t}) first"
            )
        index = bisect.bisect_right(self._boundaries, boundary) - 1
        if index < 0:
            return set()
        return {(u, v, ANSWER) for u, v in self._answers[index]}

    def result_count(self) -> int:
        """Cumulative Answer additions across epochs."""
        return self._delivery_counts()[0]

    def clear_results(self) -> None:
        """Drop the recorded epoch history (runtime state is kept)."""
        self._boundaries.clear()
        self._answers.clear()

    def stats(self) -> QueryStats:
        inserts, retractions = self._delivery_counts()
        return QueryStats(
            name=self.name,
            backend="dd",
            results=len(self._runtime.answer()),
            inserts=inserts,
            retractions=retractions,
            state_size=self._runtime.state_size(),
            live=self._live,
            events=inserts + retractions,
            watermark=self._runtime.boundary,
            last_advance_at=self._last_advance_at,
        )

    def explain(self, level: str = "logical") -> str:
        """The Regular Query program and window the runtime evaluates.

        The dd baseline interprets the rule program directly — there is
        no plan pipeline, so every level renders the same program (the
        ``level`` parameter exists for handle-API parity with the sga
        backend: code written against one backend must not crash on the
        documented one-line backend flip).
        """
        if level not in ("source", "logical", "optimized", "physical"):
            raise PlanError(
                f"unknown explain level {level!r}; expected 'source', "
                "'logical', 'optimized' or 'physical'"
            )
        return f"DD[{self.window}]\n{self.sgq.program}"


class StreamingGraphEngine:
    """A long-lived engine session evaluating many persistent queries.

    One engine owns one scheduler and (for the sga backend) one shared
    :class:`~repro.dataflow.graph.DataflowGraph` with a common
    sub-expression cache per compile-option set: queries registered with
    the same options share every common sub-plan — one WSCAN per
    (label, window), one Δ-PATH index per shared closure.

    Example::

        engine = StreamingGraphEngine(EngineConfig(path_impl="spath"))
        reach = engine.register(SGQ.from_text(REACH, w), name="reach")
        pairs = engine.register(SGQ.from_text(PAIRS, w), name="pairs")
        engine.push_many(stream)
        reach.valid_at(t), pairs.results()
        engine.unregister("pairs")      # prunes now-unshared operators

    Flipping ``EngineConfig(backend="dd")`` runs the same queries on the
    DD baseline behind the same handles.
    """

    def __init__(self, config: EngineConfig | None = None, **overrides: object):
        if config is None:
            config = EngineConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            config = config.with_overrides(**overrides)
        self._config = config
        self._handles: dict[str, QueryHandle] = {}
        self._auto = 0
        #: serializes lifecycle and streaming mutations (register /
        #: unregister / push / push_many / advance_to / delete / tap /
        #: close) so one session can be driven from several threads —
        #: the serving layer's per-tenant workers and any direct
        #: multi-threaded embedding.  Reentrant: an on_result callback
        #: (fired under the lock, inside push_many) may itself call
        #: register/unregister on the same thread.
        self._lifecycle_lock = threading.RLock()
        # sga backend state
        self._graph = DataflowGraph()
        self._caches: dict[tuple, dict[Plan, PhysicalOperator]] = {}
        self._executor: Executor | None = None
        #: vertex dictionary for interned execution (columnar or vector):
        #: ids flow inside the dataflow, every read surface decodes
        #: through this table
        self._interner: Interner | None = (
            Interner()
            if config.backend == "sga"
            and config.execution in ("columnar", "vector")
            else None
        )
        #: taps observe raw intermediate event streams, whose order the
        #: vector mode's label grouping would change; any tap therefore
        #: pins ingress to segmented runs (see _refresh_vector_mode)
        self._has_tap = False
        #: partition-parallel runtime (``shards > 1``); the session
        #: delegates every streaming and lifecycle call to it
        self._sharded: ShardedSgaRuntime | None = (
            ShardedSgaRuntime(config, self._interner)
            if config.shards > 1
            else None
        )
        # dd backend state: distinct dropped edges (every registered
        # query consults the late policy for the same edge in turn, so
        # the counter must dedupe across queries).
        self._dd_late_dropped: set[tuple] = set()
        # periodic auto-checkpointing (enable_auto_checkpoint): armed
        # with a store + policy, checked after every ingest/advance at
        # the watermark boundary the operation just reached
        self._auto_store = None
        self._auto_policy: CheckpointPolicy | None = None
        self._auto_boundary: int | None = None
        self._auto_time = time.monotonic()
        #: periodic checkpoints taken / last id (observability surface)
        self.auto_checkpoint_count = 0
        self.last_auto_checkpoint_id: str | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def backend(self) -> str:
        return self._config.backend

    @property
    def query_names(self) -> tuple[str, ...]:
        """Live query names in registration order."""
        return tuple(self._handles)

    @property
    def started(self) -> bool:
        """True once the engine has consumed stream input."""
        if self._sharded is not None:
            return self._sharded.started
        if self._config.backend == "sga":
            return (
                self._executor is not None
                and self._executor.current_boundary is not None
            )
        return any(
            h._runtime.boundary is not None
            for h in self._dd_handles()
        )

    @property
    def slide(self) -> int:
        """The slide interval driving watermark/epoch advancement."""
        if self._sharded is not None:
            return self._sharded.slide
        if self._config.backend == "sga":
            if self._executor is not None:
                return self._executor.slide
            return self._watermark_slide()
        handles = self._dd_handles()
        if not handles:
            raise ExecutionError("no queries registered")
        return min(h.window.slide for h in handles)

    @property
    def late_count(self) -> int:
        """Late edges discarded under ``late_policy="drop"``."""
        if self._sharded is not None:
            return self._sharded.late_count
        if self._config.backend == "sga":
            return self._executor.late_count if self._executor else 0
        return len(self._dd_late_dropped)

    @property
    def watermark(self) -> int | None:
        """The last performed window movement (``None`` before the
        stream starts).  For the dd backend: the furthest epoch any
        registered query has performed."""
        if self._sharded is not None:
            return self._sharded._boundary
        if self._config.backend == "sga":
            return (
                self._executor.current_boundary
                if self._executor is not None
                else None
            )
        boundaries = [
            h._runtime.boundary
            for h in self._dd_handles()
            if h._runtime.boundary is not None
        ]
        return max(boundaries) if boundaries else None

    @property
    def last_advance_at(self) -> float | None:
        """Wall-clock time of the most recent window movement (``None``
        before the stream starts) — ``time.time() - last_advance_at``
        is the watermark lag the serving layer reports."""
        if self._sharded is not None:
            return self._sharded.last_advance_at
        if self._config.backend == "sga":
            return (
                self._executor.last_advance_at
                if self._executor is not None
                else None
            )
        stamps = [
            h._last_advance_at
            for h in self._dd_handles()
            if h._last_advance_at is not None
        ]
        return max(stamps) if stamps else None

    def handle(self, name: str) -> QueryHandle:
        """The handle of a live query by name."""
        try:
            return self._handles[name]
        except KeyError as exc:
            raise PlanError(f"unknown query {name!r}") from exc

    def decode(self, ident: int) -> Vertex:
        """The original vertex value behind an interned id.

        Under columnar execution the dataflow carries dense vertex ids;
        every engine read surface decodes transparently, but code
        attached *directly* to the shared graph (custom operators or
        sinks) observes raw ids — this is the sanctioned way to map them
        back.  Under ``execution="rows"`` no interning happens and the
        value is returned unchanged.

        Raises
        ------
        DecodeError
            For an id this engine never interned (negative, out of
            range, or minted by a *different* engine instance — dense
            ids are engine-private).
        """
        if self._interner is None:
            return ident
        return self._interner.value(ident)

    # ------------------------------------------------------------------
    # Lifecycle: register / unregister (live)
    # ------------------------------------------------------------------
    def register(
        self,
        query: "Query | SGQ | Plan",
        name: str | None = None,
        on_result: Callable | None = None,
        **overrides: object,
    ) -> QueryHandle:
        """Attach a persistent query; works while the stream is live.

        Parameters
        ----------
        query:
            A first-class :class:`~repro.ql.query.Query` (any dialect;
            its :class:`~repro.ql.query.CompileOptions` become per-query
            overrides, with explicit ``overrides`` kwargs winning), an
            :class:`~repro.query.sgq.SGQ` (Regular Query + window), or
            a hand-built logical :class:`~repro.algebra.operators.Plan`
            (sga backend only — the dd baseline needs the rule program).
        name:
            Handle name (auto-generated ``"q<N>"`` when omitted).
        on_result:
            Push-delivery callback.  For sga it receives each raw result
            :class:`~repro.dataflow.graph.Event` as it is emitted —
            coalescing the received events yields exactly ``results()``.
            For dd it receives ``((src, trg), sign)`` Answer deltas per
            epoch.
        overrides:
            Per-query :class:`EngineConfig` overrides; only the
            compile-time fields (``path_impl``, ``materialize_paths``,
            ``coalesce_intermediate``) may differ per query.

        See the module docstring for mid-stream registration semantics
        (operator re-sharing, watermark alignment, backfill rules).
        """
        with self._lifecycle_lock:
            if name is None:
                name = f"q{self._auto}"
                self._auto += 1
            if name in self._handles:
                raise PlanError(f"query name {name!r} already registered")
            if isinstance(query, Query):
                overrides = {**query.options.overrides(), **overrides}
            bad = set(overrides) - PER_QUERY_OPTIONS
            if bad:
                raise ValueError(
                    f"engine-wide config field(s) {sorted(bad)} cannot be "
                    f"overridden per query; per-query options are "
                    f"{sorted(PER_QUERY_OPTIONS)}"
                )
            if self._config.backend == "sga":
                handle = self._register_sga(query, name, on_result, overrides)
            else:
                handle = self._register_dd(query, name, on_result, overrides)
            self._handles[name] = handle
            self._refresh_vector_mode()
            return handle

    def unregister(self, name: str) -> None:
        """Detach a query; works while the stream is live.

        For the sga backend, every operator reachable only through the
        query's sink is pruned from the dataflow and the corresponding
        shared-subexpression cache entries are evicted; operators still
        shared with surviving queries (or pinned by :meth:`tap` sinks)
        are untouched.  The returned-earlier handle stays readable but
        receives no further results.
        """
        with self._lifecycle_lock:
            handle = self._handles.get(name)
            if handle is None:
                raise PlanError(f"unknown query {name!r}")
            if isinstance(handle, ShardedQueryHandle):
                self._sharded.unregister(name)  # may refuse (process)
            del self._handles[name]
            handle._live = False
            if isinstance(handle, SgaQueryHandle):
                removed = self._graph.prune([handle._sink])
                for cache in self._caches.values():
                    evict_dead(cache, removed)
            self._refresh_vector_mode()

    def _register_sga(
        self,
        query: SGQ | Plan,
        name: str,
        on_result: Callable | None,
        overrides: dict,
    ) -> QueryHandle:
        config = self._config.with_overrides(**overrides)
        if isinstance(query, Query):
            plan = query.plan()
        elif isinstance(query, SGQ):
            plan = sgq_to_sga(query)
        else:
            plan = query
        options = (
            config.path_impl,
            config.materialize_paths,
            config.coalesce_intermediate,
        )
        interner = self._interner
        if self._sharded is not None:
            compiled = intern_plan(plan, interner)
            callback = (
                _decoding_callback(on_result, interner)
                if on_result is not None
                else None
            )
            self._sharded.register(name, compiled, options, callback)
            return ShardedQueryHandle(self, name, plan, options)
        cache = self._caches.setdefault(options, {})
        live = self.started
        # Under interned execution, vertex-valued predicate constants
        # must compare against ids; the translated plan is compiled (and
        # keys the shared-subexpression cache), the original stays on the
        # handle for explain().
        compiled = intern_plan(plan, interner) if interner is not None else plan
        sink = compile_into(compiled, self._graph, cache, *options)
        sink.interner = interner
        if self._config.execution == "vector":
            # Vector execution runs hot operator state in the
            # struct-of-arrays layout (int64 join tables, flat-pair
            # adjacency, slotted spanning trees).  Applied post-compile
            # over the whole dataflow: freshly compiled operators are
            # empty, shared cached operators are already configured and
            # the call is a no-op for them.
            apply_state_layout(self._graph.operators, "arrays")
        if on_result is not None:
            if interner is not None:
                on_result = _decoding_callback(on_result, interner)
            sink.set_callback(on_result)
        root = self._graph.producer_of(sink)
        handle = SgaQueryHandle(self, name, plan, sink, root, options)
        if live:
            self._splice_live(handle, plan, sink, root)
        return handle

    def _splice_live(
        self,
        handle: SgaQueryHandle,
        plan: Plan,
        sink: SinkOp,
        root: PhysicalOperator | None,
    ) -> None:
        """Align a mid-stream registration with the live dataflow."""
        executor = self._executor
        assert executor is not None and executor.current_boundary is not None
        # A finer-slided query tightens the watermark cadence from here
        # on (boundaries stay monotone; already-passed coarse boundaries
        # are not revisited).  The gcd — not the min — keeps the current
        # boundary on the new grid: with slide 10 at boundary 30, a
        # min() switch to slide 4 would step 30→34→38→42 and overshoot
        # boundary 40, making perfectly ordered edges look late.
        executor.slide = math.gcd(executor.slide, plan_slide(plan))
        # Initialize new sources to the current boundary (a no-op for
        # existing sources) and cascade watermarks across the freshly
        # spliced cached-producer -> new-consumer edges.
        self._graph.push_watermark(executor.current_boundary)
        self._graph.sync_watermarks()
        # Full-plan re-share: backfill the accumulated result events of
        # the richest live handle rooted at the same operator.
        donor: SgaQueryHandle | None = None
        for other in self._handles.values():
            if (
                isinstance(other, SgaQueryHandle)
                and other is not handle
                and other._root is root
            ):
                if donor is None or len(other._sink.events) > len(
                    donor._sink.events
                ):
                    donor = other
        if donor is not None:
            for event in list(donor._sink.events):
                sink.on_event(0, event)

    def _register_dd(
        self,
        query: SGQ | Plan,
        name: str,
        on_result: Callable | None,
        overrides: dict,
    ) -> DDQueryHandle:
        if overrides:
            raise ValueError(
                "the dd backend compiles no physical plans; per-query "
                f"overrides {sorted(overrides)} do not apply"
            )
        if isinstance(query, Query):
            # Any dialect with a rule program works; rpq raises inside.
            query = query.sgq()
        if not isinstance(query, SGQ):
            raise PlanError(
                "the dd backend evaluates Regular Query programs; "
                "register an SGQ (program + window), not a physical plan"
            )
        runtime = DDRuntime(
            query.program,
            query.window,
            query.label_windows,
            batch_size=self._config.batch_size,
        )
        return DDQueryHandle(self, name, query, runtime, on_result)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def push(self, edge: SGE) -> None:
        """Insert one streaming graph edge (advances the window first)."""
        with self._lifecycle_lock:
            if self._sharded is not None:
                self._sharded.push(edge)
            elif self._config.backend == "sga":
                self._ensure_executor().push_edge(edge)
            else:
                for handle in self._require_dd_handles():
                    handle._ingest([edge])
            self._maybe_auto_checkpoint()

    def delete(self, edge: SGE) -> None:
        """Explicitly delete a previously inserted edge (negative tuple).

        sga backend only: the DD baseline models removal exclusively as
        window expiry.
        """
        if self._config.backend != "sga":
            raise ExecutionError(
                "explicit deletions are not supported by the dd backend"
            )
        with self._lifecycle_lock:
            if self._sharded is not None:
                self._sharded.delete(edge)
            else:
                self._ensure_executor().delete_edge(edge)
            self._maybe_auto_checkpoint()

    def advance_to(self, t: int) -> None:
        """Advance the window/epochs without inserting (stream silence)."""
        with self._lifecycle_lock:
            if self._sharded is not None:
                self._sharded.advance_to(t)
            elif self._config.backend == "sga":
                self._ensure_executor().advance_to(t)
            else:
                for handle in self._require_dd_handles():
                    handle._advance_to(t)
            self._maybe_auto_checkpoint()

    def push_many(self, stream: Iterable[SGE]) -> RunStats:
        """Feed a whole timestamp-ordered stream through the shared
        batch scheduler — the fast path: edges are accumulated per slide
        (optionally capped at ``batch_size``) and flushed through the
        engine in bulk, with no per-edge Python call overhead.  Returns
        per-slide timing statistics.

        Streaming holds the engine's lifecycle lock for the whole run:
        concurrent ``register`` / ``unregister`` calls from other
        threads serialize against it — each observes the stream either
        entirely before or entirely after its own splice point, exactly
        as if the calls had been issued between ``push_many`` batches.
        """
        with self._lifecycle_lock:
            if self._sharded is not None:
                stats = self._sharded.push_many(stream)
            elif self._config.backend == "sga":
                stats = self._ensure_executor().run(stream)
            else:
                handles = self._require_dd_handles()
                min_slide = min(h.window.slide for h in handles)

                def apply(boundary: int, edges: list[SGE]) -> None:
                    for handle in handles:
                        handle._ingest(edges)

                scheduler = BatchScheduler(min_slide, self._config.batch_size)
                stats = scheduler.run(stream, apply)
            self._maybe_auto_checkpoint()
            return stats

    #: ``run`` is the familiar name from the legacy facades.
    run = push_many

    # ------------------------------------------------------------------
    # Resource lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-held OS resources.

        With ``shards > 1`` and ``shard_transport="process"`` this stops
        the forked shard workers — read results *before* closing; reads
        and streaming after close raise :class:`ExecutionError`.  A
        no-op for every other configuration, so generic code can always
        call it — or use the engine as a context manager::

            with StreamingGraphEngine(EngineConfig(shards=4,
                    shard_transport="process")) as engine:
                ...

        Idempotent and thread-safe: a double (or concurrent) close is a
        no-op, and a handle read racing the close gets either its result
        or the poisoned :class:`ExecutionError` — the server drains
        tenants concurrently with subscriber reads.
        """
        with self._lifecycle_lock:
            if self._sharded is not None:
                self._sharded.shutdown()

    def __enter__(self) -> "StreamingGraphEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shared-dataflow introspection (sga backend)
    # ------------------------------------------------------------------
    def tap(self, label: Label) -> "SinkOp | MergedTapSink":
        """Attach a sink to the intermediate stream of a derived label.

        SGA is closed — every operator's output is a streaming graph —
        so intermediate results are first-class streams too.  The
        returned sink collects the label's sgts from the moment of the
        call on.  A tap pins its producer: :meth:`unregister` never
        prunes operators a tap still observes.

        Sharded sessions (inline transport) tap every shard's instance
        of the producing operator and return a
        :class:`~repro.engine.sharded.MergedTapSink` exposing the same
        read surface, with events merged back into the global emission
        order — the same event multiset (and results / coverage /
        ``valid_at``) as the ``shards=1`` tap stream.
        """
        self._require_sga("tap")
        with self._lifecycle_lock:
            if self._sharded is not None:
                sink = self._sharded.tap(label, self._interner)
                self._has_tap = True
                return sink
            for op in self._graph.operators:
                produced = getattr(op, "out_label", None)
                if produced is None:
                    produced = getattr(op, "label", None)
                if produced == label and not isinstance(op, SinkOp):
                    sink = SinkOp(name=f"tap[{label}]")
                    if self._interner is not None:
                        # Tap events are user-facing raw stream data:
                        # decode on arrival so ``tap.events`` carries
                        # real vertices.
                        sink.interner = self._interner
                        sink.decode_eagerly = True
                    self._graph.add(sink)
                    self._graph.connect(op, sink, 0)
                    self._has_tap = True
                    self._refresh_vector_mode()
                    return sink
            raise PlanError(f"no operator produces label {label!r}")

    def operator_count(self) -> int:
        """Operators in the shared dataflow (excluding sinks).

        Sharded: one shard's topology — every shard runs the same
        operator set (including the spliced exchange operators).
        """
        self._require_sga("operator_count")
        if self._sharded is not None:
            return self._sharded.operator_count()
        return sum(
            1 for op in self._graph.operators if not isinstance(op, SinkOp)
        )

    def sharing_savings(self) -> int:
        """Operators saved by sharing, vs compiling each query alone."""
        self._require_sga("sharing_savings")
        if self._sharded is not None:
            raise ExecutionError(
                "sharing_savings requires shards=1 (per-shard topologies "
                "include exchange operators the isolated compile lacks)"
            )
        isolated = 0
        for handle in self._handles.values():
            assert isinstance(handle, SgaQueryHandle)
            physical = compile_plan(handle.plan, *handle._options)
            isolated += sum(
                1
                for op in physical.graph.operators
                if not isinstance(op, SinkOp)
            )
        return isolated - self.operator_count()

    def state_size(self) -> int:
        """Total tuples retained across the engine's stateful operators.

        Sharded: summed over all shards — replicated state (windowed
        adjacencies, replication-zone operators) counts once per shard.

        Takes the lifecycle lock: the walk iterates operator-internal
        dicts, which a concurrent ``push_many`` resizes (``stats()``
        from a reader thread must not crash mid-ingest).
        """
        with self._lifecycle_lock:
            if self._sharded is not None:
                return self._sharded.state_size()
            if self._config.backend == "sga":
                return self._graph.state_size()
            return sum(h._runtime.state_size() for h in self._dd_handles())

    def state_breakdown(self) -> dict[str, dict]:
        """Per-operator ``{"rows": n, "bytes": estimate}`` across the
        engine's stateful operators (sharded: aggregated over shards;
        dd: one entry per query's runtime).  The diagnostics surface
        behind the serving layer's ``/metrics`` state section.
        """
        with self._lifecycle_lock:
            if self._sharded is not None:
                return self._sharded.state_breakdown()
            if self._config.backend == "sga":
                return self._graph.state_breakdown()
            return {
                f"dd[{h.name}]": h._runtime.state_breakdown()
                for h in self._dd_handles()
            }

    def set_result_callback(
        self, name: str, on_result: Callable | None
    ) -> None:
        """Install (or clear, with ``None``) a live query's push-delivery
        callback after registration.

        Semantics match the ``on_result`` parameter of :meth:`register`
        (decoded events for sga, Answer deltas for dd).  The serving
        layer uses this to re-attach subscriptions to queries that were
        re-registered by :meth:`restore`.
        """
        with self._lifecycle_lock:
            handle = self._handles.get(name)
            if handle is None:
                raise PlanError(f"unknown query {name!r}")
            if isinstance(handle, DDQueryHandle):
                handle._callback = on_result
                return
            callback = on_result
            if callback is not None and self._interner is not None:
                callback = _decoding_callback(callback, self._interner)
            if isinstance(handle, ShardedQueryHandle):
                self._sharded.set_callback(name, callback)
                return
            assert isinstance(handle, SgaQueryHandle)
            handle._sink.set_callback(callback)

    # ------------------------------------------------------------------
    # Durability: checkpoint / restore
    # ------------------------------------------------------------------
    def enable_auto_checkpoint(self, store, policy=None) -> None:
        """Arm periodic background checkpointing into ``store``.

        ``policy`` (default: ``config.checkpoint_policy``) decides the
        cadence: after every ingest/advance the engine checks, at the
        watermark boundary the operation just reached, whether
        ``every_slides`` slides or ``every_seconds`` seconds have
        elapsed since the last checkpoint and snapshots if so — the
        engine is quiescent between flushes, so every periodic
        checkpoint is as consistent as an explicit one.  A checkpoint
        failure propagates out of the triggering ingest call (the
        caller owns the store); the serve layer catches and counts
        these instead.  Pass ``store=None`` to disarm.
        """
        with self._lifecycle_lock:
            if store is None:
                self._auto_store = None
                self._auto_policy = None
                return
            policy = policy or self._config.checkpoint_policy
            if policy is None:
                raise ValueError(
                    "no checkpoint cadence: pass a CheckpointPolicy or "
                    "set EngineConfig.checkpoint_policy"
                )
            if not isinstance(policy, CheckpointPolicy):
                raise ValueError(
                    f"policy must be a CheckpointPolicy, got {policy!r}"
                )
            self._auto_store = store
            self._auto_policy = policy
            self._auto_boundary = self.watermark
            self._auto_time = time.monotonic()

    def _maybe_auto_checkpoint(self) -> None:
        """Cadence check after a streaming mutation (lock held)."""
        store = self._auto_store
        if store is None:
            return
        policy = self._auto_policy
        watermark = self.watermark
        slides = 0
        if watermark is not None:
            if self._auto_boundary is None:
                # First boundary observed becomes the cadence base.
                self._auto_boundary = watermark
            else:
                slides = (watermark - self._auto_boundary) // self.slide
        if not policy.due(
            slides_since=slides,
            seconds_since=time.monotonic() - self._auto_time,
        ):
            return
        self.last_auto_checkpoint_id = self.checkpoint(store, trigger="policy")
        self.auto_checkpoint_count += 1
        self._auto_boundary = watermark
        self._auto_time = time.monotonic()

    def inject_faults(self, plan) -> None:
        """Thread a :class:`~repro.fault.plan.FaultPlan` into the engine
        (tests/chaos drills).  Worker-site faults ship to the sharded
        process workers at spawn; arm the plan *before* streaming
        starts.  Checkpoint-store faults are configured on the store
        itself, serve-layer faults on the
        :class:`~repro.serve.tenants.TenantManager`.
        """
        with self._lifecycle_lock:
            if self._sharded is not None:
                self._sharded.fault_plan = plan

    def heartbeat(self, timeout: float = 5.0) -> list[bool]:
        """Liveness of the engine's execution backends, one flag per
        shard.  Serial engines (and inline shards) are in-process and
        trivially alive; the sharded process transport pings every
        worker — under supervision a dead worker is recovered before
        this returns ``True`` for it, without supervision it poisons
        the pool and raises (see
        :meth:`~repro.engine.sharded.ShardedSgaRuntime.heartbeat`).
        """
        if self._sharded is not None:
            return self._sharded.heartbeat(timeout)
        return [True]

    @property
    def recoveries(self) -> int:
        """Automatic worker recoveries performed (0 when unsupervised)."""
        return self._sharded.recoveries if self._sharded is not None else 0

    def checkpoint(self, store, **meta) -> str:
        """Snapshot this session into ``store``; returns the checkpoint id.

        The snapshot captures everything :meth:`restore` needs to rebuild
        an engine whose suffix replay is bit-identical to never having
        stopped: the full configuration, every registered query (plan +
        per-query options, in registration order), the vertex interner,
        the watermark clock, and each stateful operator's exact state
        (per shard, when ``shards > 1``).  Accumulated result events are
        included, so per-query sequence numbering continues seamlessly.

        Checkpoints are consistent by construction: the engine's
        lifecycle lock is held for the duration, so the snapshot sits on
        a watermark boundary between flushes — no in-flight deltas exist
        mid-lock.  Tap sinks are *not* checkpointed (they are
        observability surfaces; re-attach them after restore).

        Extra keyword arguments become manifest metadata (JSON values
        only) — the serving layer stamps tenant information this way.
        """
        writer = store.begin()
        try:
            self.write_checkpoint(writer)
            writer.set_meta(
                kind="engine",
                backend=self._config.backend,
                shards=self._config.shards,
                boundary=self.watermark,
                queries=list(self._handles),
                **meta,
            )
            return writer.commit()
        except BaseException:
            writer.abort()
            raise

    def write_checkpoint(self, writer, prefix: str = "") -> None:
        """Write this engine's snapshot blobs into an open
        :class:`~repro.checkpoint.store.CheckpointWriter`.

        The serving layer checkpoints many tenants into one atomic
        checkpoint by calling this with per-tenant prefixes
        (``tenants/<name>/``); :meth:`checkpoint` is the
        single-engine convenience over it.  Restore with
        :meth:`restore_from_reader` and the same prefix.
        """
        with self._lifecycle_lock:
            self._write_checkpoint(writer, prefix)

    def _write_checkpoint(self, writer, prefix: str) -> None:
        config = self._config
        queries: list[tuple] = []
        for name, handle in self._handles.items():
            if isinstance(handle, DDQueryHandle):
                queries.append(
                    (
                        name,
                        "dd",
                        handle.sgq,
                        {
                            "boundaries": list(handle._boundaries),
                            "answers": list(handle._answers),
                            "last_advance_at": handle._last_advance_at,
                        },
                    )
                )
            else:
                queries.append((name, "sga", handle.plan, handle._options))
        if self._sharded is not None:
            boundary = self._sharded._boundary
            late = self._sharded.late_count
            states = self._sharded.snapshot_shards()
        elif config.backend == "sga":
            if self._executor is not None:
                clock = self._executor.snapshot_clock()
                boundary, late = clock["boundary"], clock["late_count"]
            else:
                boundary, late = None, 0
            keys = operator_keys(
                [(n, h._sink) for n, h in self._handles.items()], self._graph
            )
            state: dict = {}
            for key, op in keys.items():
                blob = op.snapshot_state()
                if blob is not None:
                    state[key] = blob
            states = [state]
        else:
            boundary = self.watermark
            late = len(self._dd_late_dropped)
            states = [
                {
                    h.name: h._runtime.snapshot_state()
                    for h in self._dd_handles()
                }
            ]
        writer.put(
            f"{prefix}engine",
            {
                "backend": config.backend,
                "config": dataclasses.asdict(config),
                "queries": queries,
                "auto": self._auto,
                "boundary": boundary,
                "late_count": late,
                "interner": (
                    self._interner.snapshot_state()
                    if self._interner is not None
                    else None
                ),
                "dd_late_dropped": sorted(self._dd_late_dropped),
            },
        )
        for shard_id, state in enumerate(states):
            writer.put(f"{prefix}state-{shard_id}", state)

    @classmethod
    def restore(
        cls,
        store,
        config: EngineConfig | None = None,
        checkpoint_id: str | None = None,
        **overrides: object,
    ) -> "StreamingGraphEngine":
        """Rebuild an engine from a checkpoint in ``store``.

        Opens the latest checkpoint (or ``checkpoint_id``), re-registers
        every query in its original order and loads each stateful
        operator's snapshot, so replaying the stream suffix from the
        checkpointed watermark yields bit-identical results to the
        uninterrupted run.

        ``config`` / ``overrides`` may differ from the stored
        configuration **only** in ``shards`` and ``shard_transport``:
        restoring ``shards=N`` state under ``shards=M`` (both >= 2)
        re-partitions operator ownership offline
        (:func:`repro.checkpoint.rebalance.rebalance_states`) — result
        *sets*, coverage and ``valid_at`` are preserved exactly; raw
        event interleavings only for same-count restores.  Any other
        difference raises :class:`~repro.errors.CheckpointError`.

        Failures are all-or-nothing at the API level: a corrupted blob,
        a version mismatch or a topology mismatch raises a typed
        :class:`~repro.errors.CheckpointError` naming the offending
        piece, and no engine is returned — never a half-restored one.
        """
        reader = store.open(checkpoint_id)
        return cls.restore_from_reader(reader, config=config, **overrides)

    @classmethod
    def restore_from_reader(
        cls,
        reader,
        prefix: str = "",
        config: EngineConfig | None = None,
        **overrides: object,
    ) -> "StreamingGraphEngine":
        """:meth:`restore`, but from an already-open
        :class:`~repro.checkpoint.store.CheckpointReader` and an optional
        blob-name ``prefix`` — the counterpart of
        :meth:`write_checkpoint` for multi-engine checkpoints."""
        state = reader.get(f"{prefix}engine")
        try:
            stored = EngineConfig(**state["config"])
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {reader.checkpoint_id}: stored engine config "
                f"does not validate: {exc}"
            ) from exc
        if config is None:
            config = stored.with_overrides(**overrides) if overrides else stored
        elif overrides:
            config = config.with_overrides(**overrides)
        _check_restore_config(stored, config, reader.checkpoint_id)
        engine = cls(config)
        engine._restore_from(reader, state, stored.shards, prefix)
        return engine

    def _restore_from(
        self, reader, state: dict, old_shards: int, prefix: str = ""
    ) -> None:
        checkpoint_id = reader.checkpoint_id
        if self._interner is not None:
            values = state.get("interner")
            if values is None:
                raise CheckpointError(
                    f"checkpoint {checkpoint_id}: blob '{prefix}engine' "
                    "holds no interner table (field 'interner' is null)"
                )
            self._interner.restore_state(values)
        for entry in state["queries"]:
            name, kind = entry[0], entry[1]
            if kind == "sga":
                plan, options = entry[2], entry[3]
                self.register(
                    plan,
                    name=name,
                    path_impl=options[0],
                    materialize_paths=options[1],
                    coalesce_intermediate=options[2],
                )
            elif kind == "dd":
                self.register(entry[2], name=name)
            else:
                raise CheckpointError(
                    f"checkpoint {checkpoint_id}: query {name!r} has "
                    f"unknown kind {kind!r} in blob '{prefix}engine'"
                )
        blobs = [reader.get(f"{prefix}state-{i}") for i in range(old_shards)]
        boundary = state["boundary"]
        late = state["late_count"]
        if self._config.backend == "dd":
            table = blobs[0]
            for entry in state["queries"]:
                name, _, _, history = entry
                handle = self._handles[name]
                assert isinstance(handle, DDQueryHandle)
                blob = table.get(name)
                if blob is None:
                    raise CheckpointError(
                        f"checkpoint {checkpoint_id}: blob "
                        f"'{prefix}state-0' holds no runtime state for "
                        f"query {name!r}"
                    )
                handle._runtime.restore_state(blob)
                handle._boundaries = list(history["boundaries"])
                handle._answers = [frozenset(a) for a in history["answers"]]
                handle._last_answer = (
                    handle._answers[-1] if handle._answers else frozenset()
                )
                handle._last_advance_at = history["last_advance_at"]
            self._dd_late_dropped = {
                tuple(item) for item in state["dd_late_dropped"]
            }
        elif self._sharded is not None:
            if len(blobs) != self._config.shards:
                blobs = rebalance_states(blobs, self._config.shards)
            self._sharded.restore_shards(blobs, boundary, late)
        else:
            keys = operator_keys(
                [(n, h._sink) for n, h in self._handles.items()], self._graph
            )
            load_operator_states(keys, blobs[0])
            if boundary is not None:
                self._ensure_executor().restore_clock(
                    {"boundary": boundary, "late_count": late}
                )
        self._auto = state["auto"]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sga_can_read_at(
        self, t: int, query_slide: int, max_window: int
    ) -> bool:
        """The sga temporal-read guard shared by all sga-family handles.

        Returns True when ``valid_at(t)`` may answer from retained
        covers (``t``'s epoch on the query's slide grid is at or behind
        the last performed window movement), False when the exact answer
        is the empty set (engine not started, or ``t`` at/past the
        expiry horizon — every assigned validity interval has ended by
        ``boundary + engine_slide + max_window``), and raises
        :class:`~repro.errors.HorizonError` for the instants in between,
        mirroring the dd backend's contract.
        """
        if self._sharded is not None:
            boundary = self._sharded._boundary
            engine_slide = self._sharded._slide
        elif self._executor is not None:
            boundary = self._executor.current_boundary
            engine_slide = self._executor.slide
        else:
            boundary = None
            engine_slide = None
        if boundary is None:
            return False  # nothing ingested: the answer is exactly empty
        if t // query_slide * query_slide <= boundary:
            return True
        if t >= boundary + engine_slide + max_window:
            return False  # past the horizon: everything has expired
        raise HorizonError(
            f"instant {t} is ahead of the last performed window "
            f"movement (boundary {boundary}) but before the expiry "
            f"horizon; call engine.advance_to({t}) first"
        )

    def _require_sga(self, what: str) -> None:
        if self._config.backend != "sga":
            raise ExecutionError(f"{what} requires the sga backend")

    def _dd_handles(self) -> list[DDQueryHandle]:
        return [
            h for h in self._handles.values() if isinstance(h, DDQueryHandle)
        ]

    def _require_dd_handles(self) -> list[DDQueryHandle]:
        handles = self._dd_handles()
        if not handles:
            raise ExecutionError("no queries registered")
        return handles

    def _watermark_slide(self) -> int:
        """The watermark cadence covering every registered plan.

        The gcd — not the min — of the plan slides: the executor's
        boundary grid must hit *every* plan's slide multiples (the
        negative-tuple PATH performs its expiry re-derivations exactly
        on those movements), and with e.g. slides 10 and 4 a min() grid
        of 0,4,8,… would skip boundary 10 entirely.
        """
        slides = [
            plan_slide(h.plan)
            for h in self._handles.values()
            if isinstance(h, SgaQueryHandle)
        ]
        if not slides:
            raise ExecutionError("no queries registered")
        return math.gcd(*slides)

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            self._executor = Executor(
                self._graph,
                self._watermark_slide(),
                batch_size=self._config.batch_size,
                late_policy=self._config.late_policy,
                interner=self._interner,
                columnar_min_run=self._config.columnar_min_run,
                vector=self._config.execution == "vector",
            )
            self._refresh_vector_mode()
        return self._executor

    def _refresh_vector_mode(self) -> None:
        """Recompute the vector executor's ingress-grouping decision.

        The compile pipeline's analysis
        (:func:`repro.ql.pipeline.vector_ingress_mode`) proves or
        refutes that every registered plan is insensitive to
        within-slide cross-label reordering; the executor groups each
        slide per label only on proof.  Re-run on every register /
        unregister / tap, so live lifecycle changes take effect from the
        next slide on.
        """
        executor = self._executor
        if executor is None or not executor.vector:
            return
        from repro.ql.pipeline import vector_ingress_mode

        plans = [
            (h.plan, h._options)
            for h in self._handles.values()
            if isinstance(h, SgaQueryHandle)
        ]
        executor.vector_grouped = (
            not self._has_tap and vector_ingress_mode(plans) == "grouped"
        )

    def _keep_late(self, edge: SGE, boundary: int) -> bool:
        """Apply the engine's late policy to a dd-backend edge.

        Every registered query consults the policy for the same edge in
        turn (lateness depends on each query's window slide), so the
        drop counter collects distinct edge values — ``late_count``
        counts dropped *edges*, not per-query drops.  An exact duplicate
        of an already-dropped edge is not counted again.
        """
        policy = self._config.late_policy
        if policy == "allow":
            return True
        if policy == "raise":
            raise StreamOrderError(
                f"edge at t={edge.t} arrived behind the epoch boundary "
                f"{boundary}"
            )
        self._dd_late_dropped.add((edge.src, edge.trg, edge.label, edge.t))
        return False


def _decoding_callback(callback: Callable, interner: Interner) -> Callable:
    """Wrap a user on_result callback to decode interned events."""

    def deliver(event):
        callback(interner.decode_event(event))

    return deliver


def _check_restore_config(
    stored: EngineConfig, requested: EngineConfig, checkpoint_id: str
) -> None:
    """Reject restore-time config drift (only the shard layout may move).

    Operator state blobs are exact internal structures — restoring them
    under a different path implementation, execution mode or coalescing
    setting would attach state to operators that never produce it.  The
    shard count/transport is the sanctioned exception: the per-shard
    topologies are isomorphic across counts >= 2, so state re-partitions
    (see :mod:`repro.checkpoint.rebalance`); serial and sharded compiles
    differ structurally (exchange operators), so crossing the 1-shard
    boundary is refused.
    """
    # checkpoint_policy shapes supervision/cadence, not operator state,
    # so it may change freely between snapshot and restore.
    movable = {"shards", "shard_transport", "checkpoint_policy"}
    stored_fields = dataclasses.asdict(stored)
    requested_fields = dataclasses.asdict(requested)
    drift = sorted(
        name
        for name, value in requested_fields.items()
        if name not in movable and value != stored_fields[name]
    )
    if drift:
        raise CheckpointError(
            f"checkpoint {checkpoint_id} was taken under a different "
            f"engine configuration (field(s) {drift} differ); only "
            "'shards', 'shard_transport' and 'checkpoint_policy' may "
            "change on restore"
        )
    if stored.shards != requested.shards and (
        stored.shards < 2 or requested.shards < 2
    ):
        raise CheckpointError(
            f"checkpoint {checkpoint_id}: cannot restore shards="
            f"{stored.shards} state into shards={requested.shards} — "
            "re-partitioned restore requires both shard counts >= 2 "
            "(serial and sharded dataflows compile different topologies)"
        )


