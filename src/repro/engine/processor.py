"""The streaming graph query processor facade.

Ties the whole stack together:

1. accept a query — an :class:`~repro.query.sgq.SGQ` (Datalog text plus a
   window), a G-CORE statement, or a hand-built logical plan;
2. translate to the canonical SGA expression (Algorithm SGQParser) unless
   a plan was given;
3. compile to a physical dataflow (:mod:`repro.physical.planner`);
4. execute persistently: push sges (and deletions), pull result sgts.

Typical use::

    from repro import SGE, SlidingWindow, StreamingGraphQueryProcessor

    processor = StreamingGraphQueryProcessor.from_datalog(
        "Answer(x, y) <- knows+(x, y) as K.",
        window=SlidingWindow(size=100, slide=10),
    )
    for edge in edges:
        processor.push(edge)
    for result in processor.results():
        print(result, result.payload)
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.operators import Plan
from repro.algebra.translate import sgq_to_sga
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, Label, Vertex
from repro.core.windows import SlidingWindow
from repro.dataflow.executor import Executor, RunStats
from repro.physical.planner import PhysicalPlan, compile_plan
from repro.query.sgq import SGQ


class StreamingGraphQueryProcessor:
    """Registers one persistent query and evaluates it incrementally."""

    def __init__(
        self,
        plan: Plan,
        path_impl: str = "spath",
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        batch_size: int | None = None,
        late_policy: str = "allow",
    ):
        self.plan = plan
        self.path_impl = path_impl
        self._physical: PhysicalPlan = compile_plan(
            plan, path_impl, materialize_paths, coalesce_intermediate
        )
        self._executor = Executor(
            self._physical.graph,
            self._physical.slide,
            batch_size=batch_size,
            late_policy=late_policy,
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sgq(
        cls,
        query: SGQ,
        path_impl: str = "spath",
        batch_size: int | None = None,
    ) -> "StreamingGraphQueryProcessor":
        return cls(sgq_to_sga(query), path_impl, batch_size=batch_size)

    @classmethod
    def from_datalog(
        cls,
        text: str,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
        path_impl: str = "spath",
        batch_size: int | None = None,
    ) -> "StreamingGraphQueryProcessor":
        return cls.from_sgq(
            SGQ.from_text(text, window, label_windows), path_impl, batch_size
        )

    @classmethod
    def from_gcore(
        cls,
        text: str,
        path_impl: str = "spath",
        batch_size: int | None = None,
    ) -> "StreamingGraphQueryProcessor":
        from repro.gcore import parse_gcore

        return cls.from_sgq(parse_gcore(text), path_impl, batch_size)

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def push(self, edge: SGE) -> None:
        """Insert one streaming graph edge (advances the window first)."""
        self._executor.push_edge(edge)

    def delete(self, edge: SGE) -> None:
        """Explicitly delete a previously inserted edge (negative tuple)."""
        self._executor.delete_edge(edge)

    def advance_to(self, t: int) -> None:
        """Advance the window without inserting (e.g. on stream silence)."""
        self._executor.advance_to(t)

    def run(self, stream: Iterable[SGE]) -> RunStats:
        """Process a whole stream, returning throughput/latency statistics.

        With ``batch_size`` set at construction, edges are flushed through
        the dataflow as :class:`~repro.core.batch.DeltaBatch` groups —
        same results, amortized per-tuple overhead.
        """
        return self._executor.run(stream)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> list[SGT]:
        """Coalesced result sgts emitted so far (insertions only).

        **Non-destructive, repeatable pull**: calling this does *not*
        drain anything — every call re-coalesces the full set of result
        insertions accumulated since the processor was created (or since
        the last explicit :meth:`clear_results`), so two consecutive
        calls return equal lists and pushing more edges only ever grows
        the result set.  Use :meth:`clear_results` for a drain-and-reset
        consumption pattern.
        """
        return self._physical.sink.results()

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per result key, honouring retractions."""
        return self._physical.sink.coverage()

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Result keys valid at instant ``t`` (the snapshot of the output)."""
        return self._physical.sink.valid_at(t)

    def result_count(self) -> int:
        """Number of raw (pre-coalescing) result insertions emitted."""
        return self._physical.sink.insert_count

    def clear_results(self) -> None:
        """Drop accumulated results (state is kept; streaming continues)."""
        self._physical.sink.clear()

    def tap(self, label: Label):
        """Attach a sink to the intermediate stream of a derived label.

        SGA is closed — every operator's output is a streaming graph — so
        intermediate results (say, the ``RL`` recentLiker edges or the
        ``RLP`` paths of Example 1) are first-class streams too.  The
        returned :class:`~repro.dataflow.graph.SinkOp` collects the
        label's sgts from the moment of the call on.

        Raises
        ------
        PlanError
            If no operator in the compiled dataflow produces ``label``.
        """
        from repro.dataflow.graph import SinkOp
        from repro.errors import PlanError

        graph = self._physical.graph
        for op in graph.operators:
            produced = getattr(op, "out_label", None)
            if produced is None:
                produced = getattr(op, "label", None)
            if produced == label and not isinstance(op, SinkOp):
                sink = SinkOp(name=f"tap[{label}]")
                graph.add(sink)
                graph.connect(op, sink, 0)
                return sink
        raise PlanError(f"no operator produces label {label!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_size(self) -> int:
        """Total tuples retained across stateful operators."""
        return self._physical.graph.state_size()

    @property
    def slide(self) -> int:
        return self._physical.slide
