"""Deprecated single-query facade over :mod:`repro.engine.session`.

.. deprecated::
    :class:`StreamingGraphQueryProcessor` is a thin compatibility shim
    over :class:`~repro.engine.session.StreamingGraphEngine` and will be
    removed one release after the session API landed.  Migrate::

        # old
        processor = StreamingGraphQueryProcessor.from_datalog(text, window)
        processor.push(edge); processor.results()

        # new
        engine = StreamingGraphEngine()
        handle = engine.register(SGQ.from_text(text, window))
        engine.push(edge); handle.results()

    The shim also *fixes* the historical kwarg drift: the ``from_*``
    constructors now accept (and honour) ``materialize_paths``,
    ``coalesce_intermediate`` and ``late_policy``, which earlier
    versions silently dropped — everything routes through one validated
    :class:`~repro.engine.session.EngineConfig`.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.algebra.operators import Plan
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, Label, Vertex
from repro.core.windows import SlidingWindow
from repro.dataflow.executor import RunStats
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.ql.query import Query
from repro.query.sgq import SGQ

_DEPRECATION = (
    "StreamingGraphQueryProcessor is deprecated; use "
    "StreamingGraphEngine.register(...) and the returned QueryHandle "
    "(see repro.engine.session)"
)


class StreamingGraphQueryProcessor:
    """Registers one persistent query and evaluates it incrementally.

    Deprecated: see the module docstring for the migration path.
    """

    def __init__(
        self,
        plan: Plan | SGQ | Query,
        path_impl: str = "spath",
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        batch_size: int | None = None,
        late_policy: str = "allow",
    ):
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        self._engine = StreamingGraphEngine(
            EngineConfig(
                backend="sga",
                path_impl=path_impl,
                materialize_paths=materialize_paths,
                coalesce_intermediate=coalesce_intermediate,
                batch_size=batch_size,
                late_policy=late_policy,
            )
        )
        self._handle = self._engine.register(plan, name="q0")
        self.plan = self._handle.plan
        self.path_impl = path_impl

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sgq(
        cls,
        query: SGQ,
        path_impl: str = "spath",
        batch_size: int | None = None,
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        late_policy: str = "allow",
    ) -> "StreamingGraphQueryProcessor":
        return cls(
            query,
            path_impl,
            materialize_paths=materialize_paths,
            coalesce_intermediate=coalesce_intermediate,
            batch_size=batch_size,
            late_policy=late_policy,
        )

    @classmethod
    def from_datalog(
        cls,
        text: str,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
        path_impl: str = "spath",
        batch_size: int | None = None,
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        late_policy: str = "allow",
    ) -> "StreamingGraphQueryProcessor":
        return cls(
            Query.datalog(text, window, label_windows=label_windows),
            path_impl,
            materialize_paths=materialize_paths,
            coalesce_intermediate=coalesce_intermediate,
            batch_size=batch_size,
            late_policy=late_policy,
        )

    @classmethod
    def from_gcore(
        cls,
        text: str,
        path_impl: str = "spath",
        batch_size: int | None = None,
        materialize_paths: bool = True,
        coalesce_intermediate: bool = True,
        late_policy: str = "allow",
    ) -> "StreamingGraphQueryProcessor":
        return cls(
            Query.gcore(text),
            path_impl,
            materialize_paths=materialize_paths,
            coalesce_intermediate=coalesce_intermediate,
            batch_size=batch_size,
            late_policy=late_policy,
        )

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def push(self, edge: SGE) -> None:
        """Insert one streaming graph edge (advances the window first)."""
        self._engine.push(edge)

    def delete(self, edge: SGE) -> None:
        """Explicitly delete a previously inserted edge (negative tuple)."""
        self._engine.delete(edge)

    def advance_to(self, t: int) -> None:
        """Advance the window without inserting (e.g. on stream silence)."""
        self._engine.advance_to(t)

    def run(self, stream: Iterable[SGE]) -> RunStats:
        """Process a whole stream, returning throughput/latency statistics."""
        return self._engine.push_many(stream)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> list[SGT]:
        """Coalesced result sgts emitted so far (non-destructive pull)."""
        return self._handle.results()

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per result key, honouring retractions."""
        return self._handle.coverage()

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Result keys valid at instant ``t``."""
        return self._handle.valid_at(t)

    def result_count(self) -> int:
        """Number of raw (pre-coalescing) result insertions emitted."""
        return self._handle.result_count()

    def clear_results(self) -> None:
        """Drop accumulated results (state is kept; streaming continues)."""
        self._handle.clear_results()

    def tap(self, label: Label):
        """Attach a sink to the intermediate stream of a derived label."""
        return self._engine.tap(label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_size(self) -> int:
        """Total tuples retained across stateful operators."""
        return self._engine.state_size()

    @property
    def slide(self) -> int:
        return self._engine.slide
