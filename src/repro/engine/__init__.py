"""End-to-end streaming graph query engine (Section 6).

The supported entry point is the session API
(:mod:`repro.engine.session`): one :class:`StreamingGraphEngine` per
stream, one :class:`QueryHandle` per registered query, ``backend="sga"``
or ``"dd"`` behind the same handles.  The historical facades
(:class:`StreamingGraphQueryProcessor`, :class:`MultiQueryProcessor`)
remain as deprecated shims for one release.
"""

from repro.engine.multi import MultiQueryProcessor
from repro.engine.processor import StreamingGraphQueryProcessor
from repro.engine.results import ResultPath, result_paths
from repro.engine.session import (
    EngineConfig,
    QueryHandle,
    QueryStats,
    StreamingGraphEngine,
)

__all__ = [
    "StreamingGraphEngine",
    "EngineConfig",
    "QueryHandle",
    "QueryStats",
    "StreamingGraphQueryProcessor",
    "MultiQueryProcessor",
    "ResultPath",
    "result_paths",
]
