"""End-to-end streaming graph query processor (Section 6)."""

from repro.engine.multi import MultiQueryProcessor
from repro.engine.processor import StreamingGraphQueryProcessor
from repro.engine.results import ResultPath, result_paths

__all__ = [
    "StreamingGraphQueryProcessor",
    "MultiQueryProcessor",
    "ResultPath",
    "result_paths",
]
