"""Partition-parallel SGA execution: N shard workers behind one session.

``EngineConfig(shards=N)`` turns a :class:`StreamingGraphEngine` session
into a shared-nothing parallel deployment: the engine hash-partitions the
*stateful* work of the compiled plans across N shards, each running the
same dataflow topology over the full (interned, columnar) input stream.
Callers are oblivious — ``register`` returns the same handle surface,
``results()`` / ``coverage()`` / ``valid_at`` merge the per-shard sinks,
and ``shards=1`` is bit-identical to the unsharded engine (the session
simply does not construct this runtime).

How the work divides (see :mod:`repro.core.partition` and
:mod:`repro.physical.exchange` for the routing/shuffle pieces):

* every shard windows every input edge (WSCAN is a cheap columnar pass;
  replicating it keeps the per-shard input stream in serial order, which
  the order-sensitive PATH operators require);
* PATH operators maintain the full windowed adjacency but only the
  spanning trees whose *root vertex* the shard owns — the traversal work,
  which dominates, divides by shards;
* PATTERN joins store and probe each binding only on its *join key*'s
  owner shard; bindings produced on the wrong shard are exchanged;
* derived streams are re-partitioned between operators (broadcast into
  PATH adjacencies, result-key routing into coalescers, partition
  filters in front of sinks) exactly where a distributed shuffle would.

Two transports ship with the runtime:

``shard_transport="inline"`` (default)
    All shards live in this process and every exchange ``send`` is a
    synchronous call into the destination shard.  Streaming drives the
    shards edge-at-a-time in lockstep, so the *global* execution order
    is exactly the serial engine's — results, coverage, per-epoch
    ``valid_at`` and even raw event multisets are identical to
    ``shards=1``.  This is the deterministic scheduler the golden parity
    tests pin; it is an instrument, not a speedup (one process, one
    core).

``shard_transport="process"``
    Shards are ``multiprocessing`` workers (forked; spawn fallback).
    The parent interns the stream once per slide, ships each shard the
    slide's columnar runs (dense-int columns serialize cheaply — this is
    what PR 4's interned columnar deltas bought), and drains the
    cross-shard exchange in per-slide rounds.  Real multi-core speedup;
    exchange deliveries land at slide granularity, so *within-slide*
    emission order may differ from serial while per-slide result sets
    and net coverage converge.  Queries must be registered before the
    stream starts (live register/unregister needs the inline transport),
    and push-delivery callbacks are unsupported.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from typing import Callable, Iterable

from repro.algebra.operators import Plan
from repro.checkpoint.topology import load_operator_states, operator_keys
from repro.core.batch import BatchScheduler, RunStats
from repro.core.coalesce import coalesce_stream
from repro.core.intervals import Interval
from repro.core.partition import ShardContext
from repro.core.tuples import SGE, SGT
from repro.dataflow.graph import (
    DELETE,
    INSERT,
    DataflowGraph,
    Event,
    SinkOp,
    SourceOp,
    events_coverage,
)
from repro.errors import (
    ExecutionError,
    PlanError,
    RecoveryError,
    StreamOrderError,
    WorkerCrashError,
)
from repro.fault.plan import FaultPlan, InjectedFault  # noqa: F401 (workers)
from repro.physical.exchange import (
    ShardBroadcastOp,
    ShardPartitionFilterOp,
    ShardRouteOp,
)
from repro.physical.planner import (
    ShardSpec,
    _stream_partitioned,
    compile_into,
    evict_dead,
    plan_slide,
)
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.state_arrays import apply_state_layout

__all__ = ["ShardedSgaRuntime", "MergedTapSink"]

#: Worker → parent exchange message: (dest_shard, endpoint_uid, payload).
OutboxMessage = tuple[int, int, tuple]


class _WorkerFailure(Exception):
    """Internal signal: a worker crashed or its pipe broke.

    Supervised runtimes route this into :meth:`ShardedSgaRuntime._recover`
    instead of poisoning the pool; it never escapes the runtime — callers
    see either a successful recovery, the typed
    :class:`~repro.errors.WorkerCrashError` (unsupervised), or
    :class:`~repro.errors.RecoveryError` (budget exhausted).
    """

    def __init__(self, error: WorkerCrashError):
        super().__init__(str(error))
        self.error = error


def _crash_error(payload) -> WorkerCrashError:
    """Build the typed crash error from a worker's error reply."""
    if isinstance(payload, dict):
        shard = payload.get("shard")
        command = payload.get("command")
        tb = payload.get("traceback")
        message = (
            f"shard {shard} worker crashed handling {command!r}: "
            f"{payload.get('error', 'unknown error')}"
        )
        if tb:
            message += f"\n--- worker traceback (shard {shard}) ---\n" + tb.rstrip()
        return WorkerCrashError(
            message, shard=shard, command=command, traceback_text=tb
        )
    return WorkerCrashError(f"shard worker failed: {payload}")


class _Shard:
    """One shard's compiled state (lives in-process or inside a worker)."""

    def __init__(
        self, shard_id: int, num_shards: int, state_layout: str = "objects"
    ):
        self.ctx = ShardContext(shard_id, num_shards)
        self.graph = DataflowGraph()
        #: per compile-options shared-subexpression cache (mirrors the
        #: unsharded engine's ``_caches``)
        self.caches: dict[tuple, dict] = {}
        #: query name → private sink
        self.sinks: dict[str, SinkOp] = {}
        #: query name → the sink's direct producer (donor matching)
        self.roots: dict[str, object] = {}
        self.next_uid = 0
        #: operator state layout applied post-compile ("arrays" under
        #: vector execution); deterministic across shards and workers
        self.state_layout = state_layout

    def compile_query(self, name: str, plan: Plan, options: tuple) -> SinkOp:
        spec = ShardSpec(self.ctx, self.next_uid)
        cache = self.caches.setdefault(options, {})
        sink = compile_into(plan, self.graph, cache, *options, shard=spec)
        self.next_uid = spec.next_uid
        self.sinks[name] = sink
        self.roots[name] = self.graph.producer_of(sink)
        if self.state_layout != "objects":
            apply_state_layout(self.graph.operators, self.state_layout)
        return sink

    def drop_query(self, name: str) -> None:
        sink = self.sinks.pop(name)
        self.roots.pop(name, None)
        removed = self.graph.prune([sink])
        for cache in self.caches.values():
            evict_dead(cache, removed)
        self.ctx.unregister_endpoints({id(op) for op in removed})


def _push_edge(shard: _Shard, label: str, src: int, dst: int, t: int) -> None:
    source = shard.graph.sources.get(label)
    if source is not None:
        source.push_scalar(src, dst, t)


def _snapshot_shard_graph(sinks: dict, graph: DataflowGraph) -> dict:
    """One shard's ``{operator_key: state_blob}`` map (stateful ops only).

    ``sinks`` iterates in query registration order (both the inline
    shards and the forked workers compile queries in that order), so the
    structural keys match what a restoring engine recomputes.
    """
    keys = operator_keys(list(sinks.items()), graph)
    out = {}
    for key, op in keys.items():
        blob = op.snapshot_state()
        if blob is not None:
            out[key] = blob
    return out


class ShardedSgaRuntime:
    """The engine-internal runtime behind ``EngineConfig(shards=N)``.

    Owns the shard set (or worker pool), the shared slide/watermark
    clock, and the exchange router.  The session façade
    (:class:`~repro.engine.session.StreamingGraphEngine`) delegates every
    streaming and read call here when ``shards > 1``.
    """

    def __init__(self, config, interner):
        self.config = config
        self.num_shards = config.shards
        self.interner = interner
        self.transport = config.shard_transport
        #: hot operator state layout, derived from the resolved
        #: execution: vector shards run on the struct-of-arrays kernels
        self.state_layout = (
            "arrays" if config.execution == "vector" else "objects"
        )
        self._queries: dict[str, tuple[Plan, tuple]] = {}
        self._boundary: int | None = None
        self._slide: int | None = None
        self.late_count = 0
        #: wall-clock time of the most recent window movement (see
        #: :attr:`repro.dataflow.executor.Executor.last_advance_at`)
        self.last_advance_at: float | None = None
        #: guards the close/fail transitions against reads racing them
        #: (the serving layer drains tenants concurrently): `shutdown`
        #: and `_fail` swap the worker pool out under this lock, and
        #: every read snapshots the pool through it, so a racing read
        #: gets either live workers or the poisoned ExecutionError —
        #: never a half-torn-down pool.
        self._state_lock = threading.Lock()
        #: serializes whole request/response rounds on the worker pipes
        #: (process transport): a read from one thread interleaving with
        #: a streaming round (or another read) from a second thread
        #: would cross-deliver the pipe responses.
        self._io_lock = threading.RLock()
        # inline transport state
        self._shards: list[_Shard] | None = None
        self._callbacks: dict[str, Callable] = {}
        #: cached positions of advance-time emitters (negative-tuple
        #: PATH ops) in the shard topology; invalidated on
        #: register/unregister (the only topology changes)
        self._emitters: list[int] | None = None
        # process transport state
        self._workers: "list | None" = None
        self._failed: str | None = None
        self._closed = False
        #: deterministic fault injection (tests): pickled into each
        #: worker at spawn, so worker-site faults fire inside the child
        self.fault_plan: FaultPlan | None = None
        #: supervision is armed by a checkpoint policy on the process
        #: transport: crashed workers are respawned, restored from the
        #: latest in-memory snapshot, and the replay log re-driven
        policy = getattr(config, "checkpoint_policy", None)
        self._policy = policy
        self._supervised = policy is not None and self.transport == "process"
        self._generation = 0
        #: successful automatic recoveries (observability surface)
        self.recoveries = 0
        #: shutdown join patience before terminate/kill escalation
        self._join_timeout = 5.0
        #: latest recovery snapshot: (boundary, late_count, shard states)
        self._snapshot: "tuple | None" = None
        self._snapshot_boundary: int | None = None
        self._snapshot_time = time.monotonic()
        #: engine-level commands since the snapshot, replayed on recovery
        self._replay_log: list[tuple] = []
        if self.transport == "inline":
            self._shards = [
                _Shard(i, self.num_shards, self.state_layout)
                for i in range(self.num_shards)
            ]
            shards = self._shards

            def send(dest: int, uid: int, payload: tuple) -> None:
                shards[dest].ctx.endpoints[uid].receive_exchange(payload)

            for shard in shards:
                shard.ctx.set_transport(send)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._boundary is not None

    @property
    def slide(self) -> int:
        if self._slide is None:
            raise ExecutionError("no queries registered")
        return self._slide

    def operator_count(self) -> int:
        self._require_inline("operator_count")
        return sum(
            1
            for op in self._shards[0].graph.operators
            if not isinstance(op, SinkOp)
        )

    def state_size(self) -> int:
        if self.transport == "inline":
            return sum(s.graph.state_size() for s in self._shards)
        if self._workers_snapshot() is None:
            return 0
        return sum(
            self._request_shard(shard, ("state",))
            for shard in range(self.num_shards)
        )

    def state_breakdown(self) -> dict:
        """Per-operator ``{"rows", "bytes"}`` aggregated across shards."""
        if self.transport == "inline":
            parts = [s.graph.state_breakdown() for s in self._shards]
        else:
            if self._workers_snapshot() is None:
                return {}
            parts = [
                self._request_shard(shard, ("breakdown",))
                for shard in range(self.num_shards)
            ]
        merged: dict[str, dict] = {}
        for part in parts:
            for name, item in part.items():
                entry = merged.get(name)
                if entry is None:
                    merged[name] = dict(item)
                else:
                    entry["rows"] += item["rows"]
                    entry["bytes"] += item["bytes"]
        return merged

    def _require_inline(self, what: str) -> None:
        if self.transport != "inline":
            raise ExecutionError(
                f"{what} requires shard_transport='inline' "
                "(process workers hold their state out of process)"
            )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot_shards(self) -> list[dict]:
        """Per-shard ``{operator_key: state_blob}`` maps, one per shard.

        Keys come from :func:`repro.checkpoint.topology.operator_keys`
        — the same structural walk a fresh engine reproduces, so the
        blobs re-attach after restore regardless of any past
        register/unregister history.  Under the process transport the
        workers compute their own maps (operator graphs never cross the
        pipe; state blobs are plain picklable structures).
        """
        if not self._queries:
            return [{} for _ in range(self.num_shards)]
        if self.transport == "inline":
            return [_snapshot_shard_graph(s.sinks, s.graph) for s in self._shards]
        self._ensure_workers()
        return [
            self._request_shard(shard, ("snapshot",))
            for shard in range(self.num_shards)
        ]

    def restore_shards(
        self,
        states: list[dict],
        boundary: int | None,
        late_count: int,
    ) -> None:
        """Load per-shard operator state into this (freshly compiled,
        never-streamed) runtime, then pin the watermark clock at the
        snapshot boundary.

        Re-advancing at ``boundary`` after restore is a no-op everywhere
        (wheels are drained through it, adjacencies purged, coalescer
        keys re-scheduled strictly past it), so pushing the watermark
        once re-establishes exactly the pre-snapshot clock state.
        """
        from repro.errors import CheckpointError

        if len(states) != self.num_shards:
            raise CheckpointError(
                f"snapshot holds {len(states)} shard state maps, "
                f"engine is configured with shards={self.num_shards}"
            )
        if self.started:
            raise CheckpointError(
                "restore_shards requires a fresh runtime (stream already started)"
            )
        self.late_count = late_count
        if self.transport == "inline":
            for shard, blobs in zip(self._shards, states):
                keys = operator_keys(
                    [(name, shard.sinks[name]) for name in self._queries],
                    shard.graph,
                )
                load_operator_states(keys, blobs)
            if boundary is not None:
                self._boundary = boundary
                for shard in self._shards:
                    shard.graph.push_watermark(boundary)
                    shard.graph.sync_watermarks()
            return
        self._ensure_workers()
        self._boundary = boundary
        for shard, blobs in enumerate(states):
            reply = self._request_shard(shard, ("restore", blobs, boundary))
            if reply is not None:
                raise CheckpointError(reply)
        if self._supervised:
            # The restored state is the recovery baseline: snapshot it
            # in memory so a crash before the first cadence snapshot
            # does not have to replay from the stream start.
            with self._io_lock:
                self._take_snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        plan: Plan,
        options: tuple,
        on_result: Callable | None,
    ) -> None:
        """Compile one query onto every shard (or queue it for the
        workers).  ``plan`` is already interned; ``options`` is the
        compile-options tuple the session derived."""
        if self.transport == "process":
            if on_result is not None:
                raise ExecutionError(
                    "on_result callbacks require shard_transport='inline' "
                    "(process workers deliver results on read, not push)"
                )
            if self.started:
                raise ExecutionError(
                    "registering queries mid-stream requires "
                    "shard_transport='inline'"
                )
            self._queries[name] = (plan, options)
            self._update_slide(plan)
            return
        live = self.started
        for shard in self._shards:
            shard.compile_query(name, plan, options)
        self._queries[name] = (plan, options)
        self._emitters = None  # topology changed
        self._update_slide(plan)
        if on_result is not None:
            self._callbacks[name] = on_result
            for shard in self._shards:
                shard.sinks[name].set_callback(on_result)
        if live:
            self._splice_live(name)

    def _update_slide(self, plan: Plan) -> None:
        slide = plan_slide(plan)
        # The gcd, not the min — see Executor/_watermark_slide: the
        # boundary grid must hit every plan's slide multiples, and a
        # mid-stream gcd switch keeps the current boundary on the grid.
        self._slide = slide if self._slide is None else math.gcd(self._slide, slide)

    def _splice_live(self, name: str) -> None:
        """Mid-stream registration: align watermarks and backfill from
        the richest handle sharing the same compiled root (the same
        semantics as the unsharded session, applied per shard)."""
        assert self._boundary is not None
        for shard in self._shards:
            shard.graph.push_watermark(self._boundary)
            shard.graph.sync_watermarks()
        shard0 = self._shards[0]
        root = shard0.roots.get(name)
        donor: str | None = None
        donor_events = -1
        for other, other_root in shard0.roots.items():
            if other != name and other_root is root and root is not None:
                size = sum(
                    len(s.sinks[other].events) for s in self._shards
                )
                if size > donor_events:
                    donor = other
                    donor_events = size
        if donor is not None:
            for shard in self._shards:
                sink = shard.sinks[name]
                for event in list(shard.sinks[donor].events):
                    sink.on_event(0, event)

    def set_callback(self, name: str, callback: Callable | None) -> None:
        """Install (or clear) a query's push-delivery callback on every
        shard sink (inline transport only, like register-time callbacks)."""
        self._require_inline("push-delivery callbacks")
        if callback is None:
            self._callbacks.pop(name, None)
        else:
            self._callbacks[name] = callback
        for shard in self._shards:
            sink = shard.sinks.get(name)
            if sink is not None:
                sink.set_callback(callback)

    def unregister(self, name: str) -> None:
        if name not in self._queries:
            return
        if self.transport == "process":
            if self.started:
                raise ExecutionError(
                    "unregistering queries mid-stream requires "
                    "shard_transport='inline'"
                )
            del self._queries[name]
            return
        del self._queries[name]
        self._callbacks.pop(name, None)
        self._emitters = None  # topology changes below
        for shard in self._shards:
            shard.drop_query(name)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _require_queries(self) -> None:
        if not self._queries:
            raise ExecutionError("no queries registered")

    def _advance(self, boundary: int) -> None:
        """Advance every shard's watermark through each slide boundary,
        one boundary at a time across all shards (lockstep)."""
        slide = self._slide
        if self._boundary is None:
            self._boundary = boundary
            self.last_advance_at = time.time()
            self._step_watermark(boundary)
            return
        if self._boundary < boundary:
            self.last_advance_at = time.time()
        while self._boundary < boundary:
            self._boundary += slide
            self._step_watermark(self._boundary)

    def _step_watermark(self, t: int) -> None:
        if self.transport == "inline":
            shards = self._shards
            # Pre-advance the emitting PATH operators, operator-major
            # across shards: the negative-tuple operator's rederivation
            # emissions must reach every shard's downstream state
            # *before any shard purges at this boundary*, matching the
            # serial cascade (where an on_advance emission always
            # precedes its downstream consumers' purges).  on_advance is
            # idempotent per instant, so the main watermark pass below
            # re-visiting these operators is a no-op.
            emitters = self._emitters
            if emitters is None:
                emitters = self._emitters = [
                    index
                    for index, op in enumerate(shards[0].graph.operators)
                    if isinstance(op, NegativeTupleRpqOp)
                ]
            for index in emitters:
                for shard in shards:
                    shard.graph.operators[index].on_advance(t)
            for shard in shards:
                shard.graph.push_watermark(t)
        # process workers advance inside their apply/advance handlers

    def _on_late(self, edge: SGE, boundary: int) -> bool:
        policy = self.config.late_policy
        if policy == "raise":
            raise StreamOrderError(
                f"edge at t={edge.t} arrived behind the slide boundary "
                f"{boundary}"
            )
        self.late_count += 1
        return False

    def push(self, edge: SGE) -> None:
        self._require_queries()
        slide = self._slide
        boundary = edge.t // slide * slide
        if (
            self._boundary is not None
            and boundary < self._boundary
            and self.config.late_policy != "allow"
            and not self._on_late(edge, self._boundary)
        ):
            return
        if self.transport == "process":
            self._apply_process(max(boundary, self._boundary or boundary), [edge])
            return
        self._advance(boundary)
        intern = self.interner.intern
        src, dst = intern(edge.src), intern(edge.trg)
        for shard in self._shards:
            _push_edge(shard, edge.label, src, dst, edge.t)

    def delete(self, edge: SGE) -> None:
        """Explicit deletion: the negative tuple reaches every shard
        (adjacencies are replicated; joins route it like an insert)."""
        self._require_queries()
        intern = self.interner.intern
        sgt = SGT(
            intern(edge.src),
            intern(edge.trg),
            edge.label,
            Interval(edge.t, edge.t + 1),
        )
        if self.transport == "process":
            self._run_logged(("delete", sgt, edge.label))
            return
        for shard in self._shards:
            shard.graph.push(edge.label, Event(sgt, DELETE))

    def advance_to(self, t: int) -> None:
        self._require_queries()
        slide = self._slide
        boundary = t // slide * slide
        if self.transport == "process":
            self._ensure_workers()
            current = self._boundary
            self._advance_boundary_only(boundary)
            if self._boundary != current:
                self._run_logged(("advance", self._boundary))
            return
        self._advance(boundary)

    def _advance_boundary_only(self, boundary: int) -> None:
        if self._boundary is None:
            self._boundary = boundary
            self.last_advance_at = time.time()
        elif boundary > self._boundary:
            slide = self._slide
            steps = (boundary - self._boundary) // slide
            self._boundary += steps * slide
            self.last_advance_at = time.time()

    def push_many(self, stream: Iterable[SGE]) -> RunStats:
        self._require_queries()
        apply = (
            self._apply_inline
            if self.transport == "inline"
            else self._apply_process
        )
        scheduler = BatchScheduler(
            self._slide,
            self.config.batch_size,
            on_late=None if self.config.late_policy == "allow" else self._on_late,
        )
        return scheduler.run(stream, apply)

    def _apply_inline(self, boundary: int, edges: list[SGE]) -> None:
        """Inline transport: every shard ingests every edge, one edge at
        a time across all shards — with synchronous exchange this makes
        the global execution order exactly the serial engine's."""
        self._advance(boundary)
        intern = self.interner.intern
        shards = self._shards
        for e in edges:
            src = intern(e.src)
            dst = intern(e.trg)
            label = e.label
            t = e.t
            for shard in shards:
                source = shard.graph.sources.get(label)
                if source is not None:
                    source.push_scalar(src, dst, t)

    # ------------------------------------------------------------------
    # Process transport
    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        self._check_usable()
        if self._workers is not None:
            return
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        queries = [
            (name, plan, options)
            for name, (plan, options) in self._queries.items()
        ]
        workers = []
        for shard_id in range(self.num_shards):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    shard_id,
                    self.num_shards,
                    queries,
                    self._slide,
                    self.fault_plan,
                    self._generation,
                    self.state_layout,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((parent_conn, process))
        self._workers = workers

    def _terminate_pool(self, workers) -> None:
        """Force-stop a pool (failure/recovery path — no protocol)."""
        for conn, process in workers or ():
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            process.terminate()
            process.join(timeout=self._join_timeout)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=self._join_timeout)

    def _fail(self, reason) -> "ExecutionError":
        """Tear the worker pool down after a protocol/worker failure.

        A worker that raised has left its command loop (and its siblings
        are out of protocol sync mid-round), so the pool is unusable:
        terminate everything and poison subsequent calls with a clear
        ExecutionError instead of raw BrokenPipeError/EOFError surprises.

        A pipe error raced by a concurrent :meth:`shutdown` is not a
        worker failure — the close already owns the pool teardown, so
        the existing poisoned close error is surfaced instead.
        """
        crash = (
            reason
            if isinstance(reason, WorkerCrashError)
            else WorkerCrashError(f"shard worker failed: {reason}")
        )
        with self._state_lock:
            existing = self._usability_error()
            if existing is not None:
                return existing
            workers, self._workers = self._workers, None
            self._failed = crash.summary
        self._terminate_pool(workers)
        crash.args = (
            f"{crash.args[0]}\nthe worker pool has been shut down — "
            "create a fresh engine (or set EngineConfig.checkpoint_policy "
            "to arm supervised auto-recovery)",
        )
        return crash

    def _worker_failure(self, error: WorkerCrashError) -> Exception:
        """Route a worker crash: supervised pools get the internal
        recovery signal, unsupervised pools tear down and poison."""
        if self._supervised:
            return _WorkerFailure(error)
        return self._fail(error)

    def _send(self, shard: int, message: tuple) -> None:
        try:
            self._workers[shard][0].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise self._worker_failure(
                WorkerCrashError(
                    f"shard {shard} worker pipe broke sending "
                    f"{message[0]!r}: {exc!r}",
                    shard=shard,
                    command=message[0],
                )
            ) from exc

    def _recv(self, shard: int):
        try:
            kind, payload = self._workers[shard][0].recv()
        except (EOFError, OSError) as exc:  # worker died mid-protocol
            raise self._worker_failure(
                WorkerCrashError(
                    f"shard {shard} worker pipe broke mid-protocol: {exc!r}",
                    shard=shard,
                )
            ) from exc
        if kind == "error":
            raise self._worker_failure(_crash_error(payload))
        return payload

    def _drain(self, outboxes: list[list[OutboxMessage]]) -> None:
        """Route cross-shard deltas between workers until quiescent.

        Deliveries are grouped per destination and sent in shard order,
        messages in (origin, arrival) order — deterministic for a given
        shard count.  Each round's deliveries may cascade into further
        sends (a routed binding joins, its result broadcasts, …); the
        dataflow is a DAG, so the rounds terminate.
        """
        pending: dict[int, list[tuple[int, tuple]]] = {}
        for outbox in outboxes:
            for dest, uid, payload in outbox:
                pending.setdefault(dest, []).append((uid, payload))
        while pending:
            round_pending = pending
            pending = {}
            dests = sorted(round_pending)
            for dest in dests:
                self._send(dest, ("exchange", round_pending[dest]))
            for dest in dests:
                for to, uid, payload in self._recv(dest):
                    pending.setdefault(to, []).append((uid, payload))

    def _execute_round(self, entry: tuple) -> None:
        """Drive one logged engine-level command through the pool and
        drain the resulting exchange rounds (io lock held by callers)."""
        kind = entry[0]
        if kind == "clear":
            for shard in range(self.num_shards):
                self._send(shard, ("clear", entry[1]))
            for shard in range(self.num_shards):
                self._recv(shard)
            return
        message = entry  # apply/advance/delete entries are wire messages
        for shard in range(self.num_shards):
            self._send(shard, message)
        self._drain([self._recv(shard) for shard in range(self.num_shards)])

    def _check_liveness(self) -> None:
        """Cheap pre-round probe (supervised only): catch a worker that
        died between rounds before half the pool has consumed the next
        command."""
        if not self._supervised:
            return
        for shard, (conn, process) in enumerate(self._workers):
            if not process.is_alive():
                raise _WorkerFailure(
                    WorkerCrashError(
                        f"shard {shard} worker died between commands "
                        f"(exit code {process.exitcode})",
                        shard=shard,
                    )
                )

    def _run_logged(self, entry: tuple) -> None:
        """Execute one mutating command, logging it for recovery *first*
        so a crash mid-round is replayed, never retried ad hoc."""
        with self._io_lock:
            self._ensure_workers()
            if self._supervised:
                self._replay_log.append(entry)
                try:
                    self._check_liveness()
                    self._execute_round(entry)
                    self._maybe_snapshot()
                except _WorkerFailure as failure:
                    self._recover(failure)
                return
            self._execute_round(entry)

    def _recover(self, failure: _WorkerFailure) -> None:
        """Supervised recovery: tear the pool down, respawn a new
        generation, restore the latest in-memory snapshot, and re-drive
        the replay log — the recovered workers end bit-identical to an
        uninterrupted run.  Exponential backoff between attempts; budget
        exhaustion poisons the pool and raises
        :class:`~repro.errors.RecoveryError`.
        """
        retry = self._policy.retry
        last = failure.error
        for attempt in range(1, retry.max_restarts + 1):
            delay = retry.delay(attempt)
            if delay:
                time.sleep(delay)
            self._generation += 1
            with self._state_lock:
                if self._usability_error() is not None:
                    break  # a concurrent close/fail owns the teardown
                workers, self._workers = self._workers, None
            self._terminate_pool(workers)
            try:
                self._spawn_workers()
                self._restore_snapshot()
                for entry in self._replay_log:
                    self._execute_round(entry)
            except _WorkerFailure as again:
                last = again.error
                continue
            self.recoveries += 1
            return
        error = RecoveryError(
            f"shard worker recovery failed after {retry.max_restarts} "
            f"attempt(s); last failure: {last.summary}"
        )
        with self._state_lock:
            existing = self._usability_error()
            workers, self._workers = self._workers, None
            if existing is None:
                self._failed = str(error)
        self._terminate_pool(workers)
        raise error from last

    def _restore_snapshot(self) -> None:
        """Load the in-memory snapshot into freshly spawned workers.

        With no snapshot yet the fresh workers start from scratch and
        the replay log (which then reaches back to the stream start)
        rebuilds everything.
        """
        snap = self._snapshot
        if snap is None:
            return
        boundary, late_count, states = snap
        self.late_count = late_count
        from repro.errors import CheckpointError

        for shard, blobs in enumerate(states):
            self._send(shard, ("restore", blobs, boundary))
        for shard in range(self.num_shards):
            reply = self._recv(shard)
            if reply is not None:  # pragma: no cover - topology drift
                raise CheckpointError(reply)

    def _take_snapshot(self) -> None:
        """Refresh the in-memory recovery snapshot and clear the log."""
        for shard in range(self.num_shards):
            self._send(shard, ("snapshot",))
        states = [self._recv(shard) for shard in range(self.num_shards)]
        self._snapshot = (self._boundary, self.late_count, states)
        self._snapshot_boundary = self._boundary
        self._snapshot_time = time.monotonic()
        self._replay_log.clear()

    def _maybe_snapshot(self) -> None:
        """Snapshot when the policy cadence has elapsed, or
        unconditionally when the replay log hits its bound."""
        policy = self._policy
        boundary = self._boundary
        if len(self._replay_log) < policy.replay_bound:
            slides = 0
            if boundary is not None:
                if self._snapshot_boundary is None:
                    # First boundary observed becomes the cadence base.
                    self._snapshot_boundary = boundary
                else:
                    slide = self._slide or 1
                    slides = (boundary - self._snapshot_boundary) // slide
            if not policy.due(
                slides_since=slides,
                seconds_since=time.monotonic() - self._snapshot_time,
            ):
                return
        self._take_snapshot()

    def _request_shard(self, shard: int, message: tuple):
        """One request/response against a shard (read-style commands).

        Reads carry no state transition, so under supervision a crash
        mid-read recovers the pool and simply retries the read against
        the restored worker; retries are bounded by the same budget.
        """
        with self._io_lock:
            attempts = 0
            while True:
                with self._state_lock:
                    self._check_usable()
                    if self._workers is None:
                        raise ExecutionError(
                            "worker pool is not running (stream not started)"
                        )
                try:
                    self._send(shard, message)
                    return self._recv(shard)
                except _WorkerFailure as failure:
                    attempts += 1
                    if attempts > self._policy.retry.max_restarts:
                        raise self._fail(failure.error) from failure
                    self._recover(failure)

    def heartbeat(self, timeout: float = 5.0) -> list[bool]:
        """Liveness probe: ping every worker and wait for the echo.

        Returns one boolean per shard.  A dead or wedged worker is a
        real failure (its pipe protocol is desynced): supervised pools
        recover it in place — so a ``True`` may mean "was dead, now
        respawned and restored" — while unsupervised pools poison and
        raise, exactly like any other crash.  Inline transports (and
        not-yet-started pools) are trivially alive.
        """
        if self.transport != "process":
            return [True] * self.num_shards
        with self._io_lock:
            with self._state_lock:
                self._check_usable()
                if self._workers is None:
                    return [True] * self.num_shards
            out = []
            for shard in range(self.num_shards):
                conn, process = self._workers[shard]
                healthy = process.is_alive()
                if healthy:
                    try:
                        self._send(shard, ("ping",))
                        if conn.poll(timeout):
                            self._recv(shard)
                        else:
                            healthy = False
                    except _WorkerFailure:
                        healthy = False
                if healthy:
                    out.append(True)
                    continue
                failure = _WorkerFailure(
                    WorkerCrashError(
                        f"shard {shard} worker failed its liveness probe",
                        shard=shard,
                        command="ping",
                    )
                )
                if not self._supervised:
                    raise self._fail(failure.error)
                self._recover(failure)  # raises RecoveryError past budget
                out.append(True)
            return out

    def _apply_process(self, boundary: int, edges: list[SGE]) -> None:
        """Process transport: intern the slide once, ship columnar runs
        to every worker, then drain the exchange rounds."""
        self._ensure_workers()
        self._advance_boundary_only(boundary)
        intern = self.interner.intern
        runs: list[tuple[str, list[int], list[int], list[int]]] = []
        i = 0
        n = len(edges)
        while i < n:
            label = edges[i].label
            j = i + 1
            while j < n and edges[j].label == label:
                j += 1
            run = edges[i:j]
            runs.append(
                (
                    label,
                    [intern(e.src) for e in run],
                    [intern(e.trg) for e in run],
                    [e.t for e in run],
                )
            )
            i = j
        self._run_logged(("apply", boundary, runs))

    # ------------------------------------------------------------------
    # Read surfaces (merged across shards)
    # ------------------------------------------------------------------
    def sink_refs(self, name: str) -> "list[SinkOp] | None":
        """The query's per-shard sinks (inline transport).

        Handles hold these directly, so a detached handle stays readable
        after ``unregister`` prunes the sinks from the shard graphs —
        the same retention the unsharded engine's handles have.  Process
        transport returns ``None`` (sinks live in the workers).
        """
        if self.transport != "inline":
            return None
        return [
            shard.sinks[name]
            for shard in self._shards
            if name in shard.sinks
        ]

    def tap(self, label: str, interner) -> "MergedTapSink":
        """Attach a tap to a derived label's intermediate stream.

        The sharded equivalent of the serial engine's ``tap()``: one
        sink per shard on the shard-local instance of the producing
        operator, merged back into the *global emission order* through a
        shared arrival clock.  The merged stream carries exactly the
        serial engine's event multiset (the ``shards=1`` golden tests
        pin events, results, coverage and ``valid_at``); for replicated
        streams the order is the serial order too, while partitioned
        streams interleave per-root work shard-major within each push.

        Partitioned streams (PATH/PATTERN outputs, routed coalescers)
        emit each delta on exactly one shard, so the per-shard sinks
        subscribe directly.  Replicated streams (WSCAN outputs, the
        rep-zone chains feeding PATH adjacencies) would arrive N times;
        those get a :class:`ShardPartitionFilterOp` in front of each
        sink — the same owner-of-src dedup ``compile_into`` applies to
        replicated result streams before query sinks.

        Tap sinks pin their producers exactly like serial taps:
        ``graph.prune`` keeps everything a retained sink still reaches.
        """
        if self.transport != "inline":
            raise ExecutionError(
                "tap requires shard_transport='inline' "
                "(intermediate streams live inside the process workers)"
            )
        shards = self._shards
        index: int | None = None
        for i, op in enumerate(shards[0].graph.operators):
            produced = getattr(op, "out_label", None)
            if produced is None:
                produced = getattr(op, "label", None)
            if produced == label and not isinstance(op, SinkOp):
                index = i
                break
        if index is None:
            raise PlanError(f"no operator produces label {label!r}")
        partitioned = self._op_partitioned(
            shards[0], shards[0].graph.operators[index]
        )
        clock = [0]
        parts: list[_TapShardSink] = []
        for shard in shards:
            # Compilation is deterministic, so the operator at the same
            # position is the same logical node on every shard.
            producer = shard.graph.operators[index]
            sink = _TapShardSink(f"tap[{label}]", clock)
            if interner is not None:
                sink.interner = interner
                sink.decode_eagerly = True
            shard.graph.add(sink)
            if partitioned:
                shard.graph.connect(producer, sink, 0)
            else:
                filt = ShardPartitionFilterOp(shard.ctx, label)
                shard.graph.add(filt)
                shard.graph.connect(producer, filt, 0)
                shard.graph.connect(filt, sink, 0)
            parts.append(sink)
        return MergedTapSink(f"tap[{label}]", parts)

    def _op_partitioned(self, shard: _Shard, op) -> bool:
        """Whether ``op``'s output stream is partitioned across shards
        (each delta on exactly one shard) or replicated (every shard
        emits a copy).

        Exchange operators and sources declare their status by type;
        compiled plan operators are reverse-looked-up in the shard's
        compile caches, whose key forms encode the replication zone:
        ``(plan, rep)`` / bare ``plan`` (WScan), ``("coalesce", plan,
        rep)``, ``("route", plan)``, ``("pfilter", plan)``.
        """
        if isinstance(op, (ShardRouteOp, ShardPartitionFilterOp)):
            return True
        if isinstance(op, (ShardBroadcastOp, SourceOp)):
            return False
        for cache in shard.caches.values():
            for key, cached in cache.items():
                if cached is not op:
                    continue
                if not isinstance(key, tuple):
                    # bare WScan key: one instance serves both zones,
                    # output replicated (every shard windows the input)
                    return _stream_partitioned(key)
                if isinstance(key[0], str):
                    if key[0] == "coalesce":
                        return not key[2]
                    return True  # "route" / "pfilter"
                plan, rep = key
                # A rep-zone instance may also be cached under
                # (plan, False) — only when the stream is replicated
                # either way, so rep=True is decisive.
                if not rep:
                    return _stream_partitioned(plan)
                return False
        raise ExecutionError(
            f"cannot determine shard partitioning of {op!r}; "
            "tap the query result through its handle instead"
        )

    def events(self, name: str) -> list[Event]:
        """Every result event of a query, concatenated across shards.

        Each event lives on exactly one shard (partitioned outputs are
        emitted once; replicated outputs pass a partition filter before
        the sink), so the concatenation is the serial engine's event
        multiset — per-shard order preserved, shard order arbitrary.
        The set/cover read surfaces built on top are insensitive to the
        cross-shard interleaving.
        """
        if self.transport == "inline":
            out: list[Event] = []
            for shard in self._shards:
                sink = shard.sinks.get(name)
                if sink is not None:
                    out.extend(sink.events)
            return out
        if self._workers_snapshot() is None:
            return []
        out = []
        for shard in range(self.num_shards):
            out.extend(self._request_shard(shard, ("read", name)))
        return out

    def _usability_error(self) -> ExecutionError | None:
        if self._failed is not None:
            return ExecutionError(
                f"shard workers failed earlier ({self._failed}); "
                "create a fresh engine"
            )
        if self._closed:
            return ExecutionError(
                "the engine has been closed (shard workers stopped); "
                "read results before close()"
            )
        return None

    def _check_usable(self) -> None:
        error = self._usability_error()
        if error is not None:
            raise error

    def _workers_snapshot(self) -> "list | None":
        """The live worker pool (``None`` before streaming starts).

        Snapshotted under the state lock: a read racing ``close()`` (the
        serving layer drains tenants concurrently with subscriber reads)
        observes either the live pool or the poisoned
        :class:`ExecutionError` — never a half-torn-down pool.
        """
        with self._state_lock:
            self._check_usable()
            return self._workers

    def event_counts(self, name: str) -> tuple[int, int]:
        """(insert events, total events) across shards — counted inside
        the workers under the process transport, so reading a count does
        not ship every result event over the pipes."""
        if self.transport == "inline":
            inserts = total = 0
            for shard in self._shards:
                sink = shard.sinks.get(name)
                if sink is not None:
                    inserts += sink.insert_count
                    total += len(sink.events)
            return inserts, total
        if self._workers_snapshot() is None:
            return 0, 0
        inserts = total = 0
        for shard in range(self.num_shards):
            i, n = self._request_shard(shard, ("count", name))
            inserts += i
            total += n
        return inserts, total

    def worker_busy_seconds(self) -> list[float]:
        """Per-shard processing seconds (process transport): time each
        worker spent applying deltas and draining exchanges, excluding
        blocking on the parent.  ``total_edges / max(busy)`` is the
        aggregate throughput an adequately-cored machine approaches —
        the scaling metric the benchmark records, since single-core CI
        serializes the workers and wall-clock shows only overhead.
        """
        if self.transport != "process" or self._workers is None:
            raise ExecutionError(
                "worker_busy_seconds requires shard_transport='process' "
                "with a started stream"
            )
        self._workers_snapshot()
        return [
            self._request_shard(shard, ("busy",))
            for shard in range(self.num_shards)
        ]

    def clear_results(self, name: str) -> None:
        if self.transport == "inline":
            for shard in self._shards:
                sink = shard.sinks.get(name)
                if sink is not None:
                    sink.clear()
            return
        with self._state_lock:
            started = self._workers is not None
        if started:
            self._run_logged(("clear", name))

    def shutdown(self) -> None:
        """Stop the worker pool.  Idempotent: a second (or concurrent)
        close finds the pool already swapped out under the state lock
        and returns without touching anything; reads racing the close
        observe the poisoned :class:`ExecutionError` via
        :meth:`_workers_snapshot`, never a half-closed pool."""
        with self._state_lock:
            if self.transport == "process":
                self._closed = True
            workers, self._workers = self._workers, None
        if workers is not None:
            # Let any in-flight request round complete before stopping
            # the workers — reads that began before the close finish
            # normally, later ones see the poisoned error above.
            with self._io_lock:
                for conn, process in workers:
                    try:
                        conn.send(("stop",))
                    except (BrokenPipeError, OSError):  # pragma: no cover
                        pass
                    process.join(timeout=self._join_timeout)
                    if process.is_alive():
                        # A wedged worker must not hang close(): escalate
                        # SIGTERM, then SIGKILL if it ignores that too.
                        process.terminate()
                        process.join(timeout=self._join_timeout)
                        if process.is_alive():
                            process.kill()
                            process.join(timeout=self._join_timeout)
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - already closed
                        pass

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.shutdown()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    shard_id,
    num_shards,
    queries,
    slide,
    fault_plan=None,
    generation=0,
    state_layout="objects",
):
    """One shard worker: compile, then serve the parent's command loop.

    Compilation happens inside the worker from the (picklable, already
    interned) logical plans — operator graphs never cross the process
    boundary.  Exchange endpoints get the same uids as every other
    shard because compilation is deterministic.

    ``fault_plan`` is this worker's private copy of the parent's
    :class:`~repro.fault.plan.FaultPlan` (counters restart per
    incarnation); ``generation`` stamps which incarnation of the pool
    this is, so injected crashes can be gated to generation 0 and the
    respawned worker survives.
    """
    import os
    import signal as _signal
    import time
    import traceback

    current_command: "str | None" = None
    try:
        shard = _Shard(shard_id, num_shards, state_layout)
        outbox: list[OutboxMessage] = []
        shard.ctx.set_transport(
            lambda dest, uid, payload: outbox.append((dest, uid, payload))
        )
        for name, plan, options in queries:
            shard.compile_query(name, plan, options)
        boundary: int | None = None
        #: CPU seconds spent processing — process_time excludes both
        #: blocking on the parent and preemption by sibling workers, so
        #: it measures this shard's work division even when a
        #: single-core machine time-slices the workers (the scaling
        #: metric the benchmark reports)
        busy = 0.0

        def advance(target: int) -> None:
            nonlocal boundary
            if boundary is None:
                boundary = target
                shard.graph.push_watermark(target)
                return
            while boundary < target:
                boundary += slide
                shard.graph.push_watermark(boundary)

        while True:
            message = conn.recv()
            command = message[0]
            current_command = command
            if fault_plan is not None:
                action = fault_plan.fire(
                    "worker.command",
                    shard=shard_id,
                    command=command,
                    generation=generation,
                )
                if action == "kill":
                    # A true hard crash: no cleanup, no goodbye.
                    os.kill(os.getpid(), _signal.SIGKILL)
                elif action == "tear":
                    # Tear the pipe mid-message: declare a 64-byte
                    # length-prefixed reply, deliver 4 bytes, die — the
                    # parent's recv sees EOF inside a partial message.
                    try:
                        os.write(conn.fileno(), b"\x00\x00\x00\x40torn")
                    finally:
                        os._exit(1)
                elif action == "hang":
                    # Wedge the worker (drills shutdown escalation).
                    time.sleep(3600)
                elif action == "raise":
                    raise InjectedFault(
                        f"injected fault in shard {shard_id} "
                        f"(command {command!r}, generation {generation})"
                    )
            if command == "apply":
                started = time.process_time()
                _, target, runs = message
                advance(target)
                sources = shard.graph.sources
                for label, src, dst, ts in runs:
                    source = sources.get(label)
                    if source is not None:
                        source.push_columns(target, src, dst, ts)
                busy += time.process_time() - started
                conn.send(("outbox", outbox[:]))
                outbox.clear()
            elif command == "exchange":
                started = time.process_time()
                endpoints = shard.ctx.endpoints
                for uid, payload in message[1]:
                    endpoints[uid].receive_exchange(payload)
                busy += time.process_time() - started
                conn.send(("outbox", outbox[:]))
                outbox.clear()
            elif command == "advance":
                started = time.process_time()
                advance(message[1])
                busy += time.process_time() - started
                conn.send(("outbox", outbox[:]))
                outbox.clear()
            elif command == "delete":
                started = time.process_time()
                _, sgt, label = message
                shard.graph.push(label, Event(sgt, DELETE))
                busy += time.process_time() - started
                conn.send(("outbox", outbox[:]))
                outbox.clear()
            elif command == "read":
                sink = shard.sinks.get(message[1])
                conn.send(("ok", list(sink.events) if sink is not None else []))
            elif command == "count":
                sink = shard.sinks.get(message[1])
                counts = (
                    (sink.insert_count, len(sink.events))
                    if sink is not None
                    else (0, 0)
                )
                conn.send(("ok", counts))
            elif command == "clear":
                sink = shard.sinks.get(message[1])
                if sink is not None:
                    sink.clear()
                conn.send(("ok", None))
            elif command == "state":
                conn.send(("ok", shard.graph.state_size()))
            elif command == "breakdown":
                conn.send(("ok", shard.graph.state_breakdown()))
            elif command == "snapshot":
                conn.send(("ok", _snapshot_shard_graph(shard.sinks, shard.graph)))
            elif command == "restore":
                # Replies ("ok", None) on success or ("ok", message) on a
                # checkpoint mismatch — a typed failure the parent raises
                # as CheckpointError without poisoning the protocol.
                _, blobs, target = message
                from repro.errors import CheckpointError

                try:
                    keys = operator_keys(
                        list(shard.sinks.items()), shard.graph
                    )
                    load_operator_states(keys, blobs)
                except CheckpointError as exc:
                    conn.send(("ok", str(exc)))
                else:
                    if target is not None:
                        boundary = target
                        shard.graph.push_watermark(target)
                        shard.graph.sync_watermarks()
                    conn.send(("ok", None))
            elif command == "busy":
                conn.send(("ok", busy))
            elif command == "ping":
                conn.send(
                    ("ok", {"shard": shard_id, "generation": generation})
                )
            elif command == "stop":
                break
            else:  # pragma: no cover - protocol error
                conn.send(("error", f"unknown command {command!r}"))
    except EOFError:  # pragma: no cover - parent died
        pass
    except Exception as exc:  # crash surface: ship full context home
        try:
            conn.send(
                (
                    "error",
                    {
                        "shard": shard_id,
                        "command": current_command,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:
            pass


# ----------------------------------------------------------------------
# Merged read-surface helpers (used by the session's sharded handle)
# ----------------------------------------------------------------------
class _TapShardSink(SinkOp):
    """One shard's tap sink, stamping a *global* arrival sequence.

    All of a tap's per-shard sinks share one ``clock`` (a one-element
    list); the inline transport is single-threaded, so the stamp each
    event gets is its position in the global execution order.  Merging
    the per-shard streams by stamp restores that global order — the
    serial tap stream's multiset always, and its exact sequence for
    replicated streams (partitioned operators divide one push's work
    across shards, so their within-push interleaving is shard-major).

    Batches are unwrapped eagerly (taps are an observability surface,
    not the hot path): the base class's deferred-batch read path would
    lose per-event arrival positions.
    """

    def __init__(self, name: str, clock: list[int]):
        super().__init__(name)
        self._clock = clock
        #: arrival stamp of ``events[i]``, strictly increasing per shard
        self.seqs: list[int] = []

    def on_event(self, port: int, event: Event) -> None:
        self._clock[0] += 1
        self.seqs.append(self._clock[0])
        super().on_event(port, event)

    def on_batch(self, port: int, batch) -> None:
        signs = batch.signs
        if signs is None:
            for sgt in batch.sgts:
                self.on_event(port, Event(sgt))
        else:
            for sgt, sign in zip(batch.sgts, signs):
                self.on_event(port, Event(sgt, sign))

    def clear(self) -> None:
        super().clear()
        self.seqs.clear()


class MergedTapSink:
    """Read facade over a sharded tap's per-shard sinks.

    Mirrors the :class:`~repro.dataflow.graph.SinkOp` read surface
    (``events`` / ``results`` / ``coverage`` / ``valid_at`` /
    ``insert_count`` / ``set_callback`` / ``clear``) so callers are
    oblivious to shard count.  ``events`` merges the per-shard streams
    by their shared arrival stamps back into the global emission order
    — the same event multiset as the ``shards=1`` tap stream.
    """

    def __init__(self, name: str, parts: list[_TapShardSink]):
        self.name = name
        self._parts = parts

    @property
    def events(self) -> list[Event]:
        # Per-shard (seq, event) runs are each sorted by seq and seqs
        # are globally unique, so a k-way heap merge restores the global
        # emission order without ever comparing events.
        return [
            event
            for _, event in heapq.merge(
                *(zip(part.seqs, part.events) for part in self._parts)
            )
        ]

    @property
    def insert_count(self) -> int:
        return sum(part.insert_count for part in self._parts)

    def set_callback(self, callback) -> None:
        """Push delivery: the per-shard sinks fire synchronously inside
        the lockstep schedule, so callbacks arrive in exactly the global
        emission order (no merge needed on the push path)."""
        for part in self._parts:
            part.set_callback(callback)

    def results(self):
        """Coalesced insert-side sgts across shards (set semantics —
        same fold as :meth:`SinkOp.results`).  Tap events are decoded on
        arrival, so no read-time decode pass is needed."""
        inserts = (e.sgt for e in self.events if e.sign == INSERT)
        return coalesce_stream(inserts)

    def coverage(self) -> dict:
        return events_coverage(self.events)

    def valid_at(self, t: int) -> set:
        return {
            key
            for key, intervals in self.coverage().items()
            if any(iv.contains(t) for iv in intervals)
        }

    def clear(self) -> None:
        for part in self._parts:
            part.clear()


def merged_coverage(events: list[Event], interner) -> dict:
    """Net validity cover per result key over a merged event stream
    (the sharded equivalent of :meth:`SinkOp.coverage` — one shared
    fold, see :func:`~repro.dataflow.graph.events_coverage`)."""
    return events_coverage(
        events, interner.decode_key if interner is not None else None
    )
