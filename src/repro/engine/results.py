"""Helpers for consuming query results that carry materialized paths.

PATH results are sgts whose payload is a :class:`~repro.core.tuples.PathPayload`
— the actual hop sequence, not just the endpoints (requirement R3).  These
helpers unpack them into a friendlier shape for applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.intervals import Interval
from repro.core.tuples import SGT, Label, PathPayload, Vertex


@dataclass(frozen=True)
class ResultPath:
    """A materialized path result with its validity interval."""

    src: Vertex
    trg: Vertex
    label: Label
    interval: Interval
    vertices: tuple[Vertex, ...]
    labels: tuple[Label, ...]

    @property
    def length(self) -> int:
        return len(self.labels)

    def __str__(self) -> str:
        hops = " -> ".join(str(v) for v in self.vertices)
        return f"{self.label} {self.interval}: {hops}"


def result_paths(results: Iterable[SGT]) -> list[ResultPath]:
    """Extract the path-carrying results from a result stream."""
    paths: list[ResultPath] = []
    for sgt in results:
        if not isinstance(sgt.payload, PathPayload):
            continue
        payload = sgt.payload
        paths.append(
            ResultPath(
                src=sgt.src,
                trg=sgt.trg,
                label=sgt.label,
                interval=sgt.interval,
                vertices=payload.vertices,
                labels=payload.label_sequence(),
            )
        )
    return paths


def longest_result_path(results: Iterable[SGT]) -> ResultPath | None:
    """The longest materialized path in a result stream, if any."""
    paths = result_paths(results)
    if not paths:
        return None
    return max(paths, key=lambda p: p.length)
