"""The unified compile pipeline: ``Query → Logical → Optimized → Physical``.

One dispatcher replaces the per-frontend translate entry points: every
dialect funnels into the same staged pipeline, each stage inspectable
via :func:`explain`.

* **parse** — dialect-specific text → value objects
  (:class:`~repro.query.datalog.RQProgram`, G-CORE AST, regex AST);
* **logical** — Algorithm SGQParser (datalog/gcore) or the direct
  single-PATH construction (rpq), yielding the canonical
  :class:`~repro.algebra.operators.Plan`;
* **optimized** — the semantics-preserving plan rewrite the physical
  compiler applies (relabel fusion; cost-based plan *choice* stays
  opt-in via :mod:`repro.algebra.optimizer`);
* **physical** — operator selection and dataflow wiring
  (:func:`repro.physical.planner.compile_plan`).

Every stage increments the module-level :data:`COUNTERS`, which is how
tests and benchmarks assert the compile-once/bind-many contract of
:class:`~repro.ql.prepared.PreparedQuery`: binding a prepared template
performs **zero** parses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.algebra.explain import explain as explain_logical
from repro.algebra.operators import Path, Plan, Relabel, WScan
from repro.algebra.translate import sgq_to_sga
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.physical.planner import PhysicalPlan, compile_plan, fuse_relabels
from repro.query.datalog import ANSWER, RQProgram
from repro.query.parser import parse_rq
from repro.query.sgq import SGQ
from repro.ql.params import find_params
from repro.ql.query import Query
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex

#: Output label of the PATH operator backing an rpq-dialect query (the
#: final Relabel renames it to the reserved ``Answer``).
RPQ_PATH_LABEL = "AnswerPath"

#: Explain levels, in pipeline order.
EXPLAIN_LEVELS = ("source", "logical", "optimized", "physical")

_GCORE_LEADING = re.compile(
    r"^\s*(GRAPH|PATH|CONSTRUCT|MATCH)\b", re.IGNORECASE
)
#: Unambiguous G-CORE edge punctuation (``-[:l]->`` / ``<-[:l]-`` /
#: ``-/<:l*>/->``): label regexes cannot contain brackets or slashes,
#: so this distinguishes G-CORE from an rpq whose first label merely
#: *starts* with a keyword (e.g. the label ``path``).
_GCORE_EDGE = re.compile(r"-\[|-/")
#: A rule arrow: ``<-`` or ``:-`` — but not the head of a G-CORE
#: backward edge ``<-[:label]-`` (checked on whitespace-normalized text,
#: where the ASCII-art edge is always exactly ``<-[``).
_RULE_ARROW = re.compile(r"<-(?!\[)|:-")


@dataclass
class CompileCounters:
    """Pipeline-stage counters (compile-once/bind-many instrumentation).

    ``parses`` counts text→AST runs of any frontend, ``translations``
    counts logical-plan constructions, ``physical_compiles`` counts
    dataflow compilations, ``binds`` counts prepared-query binds.
    """

    parses: int = 0
    translations: int = 0
    physical_compiles: int = 0
    binds: int = 0


#: The live counters.  Reset with :func:`reset_counters`.
COUNTERS = CompileCounters()


def reset_counters() -> CompileCounters:
    """Zero the counters and return the live instance.

    Also clears the pipeline's logical-plan memo, so a fresh count
    observes real pipeline work (prepared-query template caches are
    per-template and live on; that is exactly the reuse the counters
    exist to demonstrate).
    """
    COUNTERS.parses = 0
    COUNTERS.translations = 0
    COUNTERS.physical_compiles = 0
    COUNTERS.binds = 0
    _logical_plan_memo.cache_clear()
    return COUNTERS


# ----------------------------------------------------------------------
# Dialect detection and counted parse entry points
# ----------------------------------------------------------------------
def detect_dialect(text: str) -> str:
    """``"datalog"`` / ``"gcore"`` / ``"rpq"`` from the text shape.

    Rule arrows (``<-`` / ``:-``) mean Datalog — except the ``<-`` of a
    G-CORE backward edge ``(x)<-[:l]-(y)``, which is excluded by
    checking the whitespace-normalized text.  A leading G-CORE clause
    keyword means G-CORE; everything else is read as a label regex.
    """
    from repro.gcore.lexer import normalize

    normalized = normalize(text)
    if _RULE_ARROW.search(normalized):
        return "datalog"
    if _GCORE_LEADING.match(text) and _GCORE_EDGE.search(normalized):
        return "gcore"
    return "rpq"


def parse_datalog_text(text: str) -> RQProgram:
    COUNTERS.parses += 1
    return parse_rq(text)


def parse_gcore_text(text: str) -> SGQ:
    from repro.gcore import parse_gcore

    COUNTERS.parses += 1
    return parse_gcore(text)


def parse_rpq_text(text: str) -> RegexNode:
    COUNTERS.parses += 1
    return parse_regex(text)


def translate_sgq(sgq: SGQ) -> Plan:
    COUNTERS.translations += 1
    return sgq_to_sga(sgq)


def rpq_plan(
    regex: RegexNode,
    window: SlidingWindow,
    label_windows: dict[str, SlidingWindow] | None = None,
) -> Plan:
    """The direct single-PATH plan for a label regex (plans "P1")."""
    COUNTERS.translations += 1
    overrides = label_windows or {}
    inputs: dict[str, Plan] = {
        label: WScan(label, overrides.get(label, window))
        for label in regex.alphabet()
    }
    path = Path.over(inputs, regex, RPQ_PATH_LABEL)
    return Relabel(path, ANSWER)


# ----------------------------------------------------------------------
# The staged pipeline over Query values
# ----------------------------------------------------------------------
def _require_bound(query: Query) -> None:
    params = find_params(query.text)
    if params:
        raise PlanError(
            f"query text has unbound parameter(s) "
            f"{tuple('$' + p for p in params)}; use "
            "ql.prepare(...).bind(...) to instantiate a template"
        )


def to_sgq(query: Query) -> SGQ:
    """The SGQ a datalog/gcore query denotes (window attached)."""
    precompiled = query.precompiled_sgq
    if precompiled is not None:
        if callable(precompiled):
            # A bound query defers its program substitution; resolve it
            # once and pin the result (bypassing the frozen dataclass —
            # the field is excluded from equality/hash, so this is pure
            # memoization, not mutation of the value).
            precompiled = precompiled()
            object.__setattr__(query, "precompiled_sgq", precompiled)
        return precompiled  # type: ignore[return-value]
    _require_bound(query)
    if query.dialect == "datalog":
        assert query.window is not None
        return SGQ(
            parse_datalog_text(query.text),
            query.window,
            dict(query.label_windows),
        )
    if query.dialect == "gcore":
        return parse_gcore_text(query.text)
    raise PlanError(
        "an rpq query has no rule program (the dd backend and SGQ "
        "consumers need datalog or gcore dialects)"
    )


@lru_cache(maxsize=512)
def _logical_plan_memo(query: Query) -> Plan:
    # NOTE: queries are value objects — equal text/dialect/window/options
    # means an identical canonical plan, so memoizing on the Query is
    # sound (precompiled plans short-circuit in logical_plan()).
    if query.dialect == "rpq":
        assert query.window is not None
        return rpq_plan(
            parse_rpq_text(query.text),
            query.window,
            dict(query.label_windows),
        )
    return translate_sgq(to_sgq(query))


def logical_plan(query: Query) -> Plan:
    """Stage 1: the canonical logical plan for any dialect (memoized)."""
    if query.precompiled_plan is not None:
        return query.precompiled_plan  # type: ignore[return-value]
    _require_bound(query)
    return _logical_plan_memo(query)


def optimized_plan(query: Query) -> Plan:
    """Stage 2: the plan after the rewrite stage (relabel fusion)."""
    return fuse_relabels(logical_plan(query))


def physical_plan(query: Query) -> PhysicalPlan:
    """Stage 3: a standalone compiled dataflow for this query."""
    COUNTERS.physical_compiles += 1
    return compile_plan(logical_plan(query), *query.options.resolved())


# ----------------------------------------------------------------------
# Explain
# ----------------------------------------------------------------------
def explain_physical(physical: PhysicalPlan) -> str:
    """Render a compiled dataflow as an indented operator tree.

    Walks upward from the sink; operators feeding several consumers are
    expanded once and referenced as ``(shared)`` afterwards.
    """
    producers: dict[int, list[tuple[int, object]]] = {}
    for op in physical.graph.operators:
        for consumer, port in op._downstream:
            producers.setdefault(id(consumer), []).append((port, op))

    lines: list[str] = []
    seen: set[int] = set()

    def render(op, depth: int) -> None:
        pad = "  " * depth
        tag = type(op).__name__
        name = getattr(op, "name", "")
        if id(op) in seen:
            lines.append(f"{pad}{tag} {name} (shared)")
            return
        seen.add(id(op))
        lines.append(f"{pad}{tag} {name}")
        for _, producer in sorted(
            producers.get(id(op), []), key=lambda pair: pair[0]
        ):
            render(producer, depth + 1)

    render(physical.sink, 0)
    return "\n".join(lines)


def explain_plan_stage(
    plan: Plan,
    level: str = "logical",
    options: tuple[str, bool, bool] = ("spath", True, True),
) -> str:
    """Render a logical plan at one pipeline stage (the shared dispatch
    behind :func:`explain` and ``QueryHandle.explain``)."""
    if level == "logical":
        return explain_logical(plan)
    if level == "optimized":
        return explain_logical(fuse_relabels(plan))
    if level == "physical":
        return explain_physical(compile_plan(plan, *options))
    raise PlanError(
        f"unknown explain level {level!r}; expected one of "
        f"{EXPLAIN_LEVELS[1:]}"
    )


def explain(query: Query, level: str = "logical") -> str:
    """Render one pipeline stage of ``query`` (or ``"all"`` of them)."""
    if level == "all":
        sections = []
        for stage in EXPLAIN_LEVELS:
            sections.append(f"-- {stage} " + "-" * max(1, 60 - len(stage)))
            sections.append(explain(query, stage))
        return "\n".join(sections)
    if level == "source":
        return str(query)
    if level == "physical":
        return explain_physical(physical_plan(query))
    if level in ("logical", "optimized"):
        return explain_plan_stage(logical_plan(query), level)
    raise PlanError(
        f"unknown explain level {level!r}; expected one of "
        f"{EXPLAIN_LEVELS + ('all',)}"
    )
