"""The unified compile pipeline: ``Query → Logical → Optimized → Physical``.

One dispatcher replaces the per-frontend translate entry points: every
dialect funnels into the same staged pipeline, each stage inspectable
via :func:`explain`.

* **parse** — dialect-specific text → value objects
  (:class:`~repro.query.datalog.RQProgram`, G-CORE AST, regex AST);
* **logical** — Algorithm SGQParser (datalog/gcore) or the direct
  single-PATH construction (rpq), yielding the canonical
  :class:`~repro.algebra.operators.Plan`;
* **optimized** — the semantics-preserving plan rewrite the physical
  compiler applies (relabel fusion; cost-based plan *choice* stays
  opt-in via :mod:`repro.algebra.optimizer`);
* **physical** — operator selection and dataflow wiring
  (:func:`repro.physical.planner.compile_plan`).

Every stage increments the module-level :data:`COUNTERS`, which is how
tests and benchmarks assert the compile-once/bind-many contract of
:class:`~repro.ql.prepared.PreparedQuery`: binding a prepared template
performs **zero** parses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.algebra.explain import explain as explain_logical
from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    Plan,
    Relabel,
    Union,
    WScan,
)
from repro.algebra.translate import sgq_to_sga
from repro.core.nplib import HAVE_NUMPY
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.physical.planner import PhysicalPlan, compile_plan, fuse_relabels
from repro.query.datalog import ANSWER, RQProgram
from repro.query.parser import parse_rq
from repro.query.sgq import SGQ
from repro.ql.params import find_params
from repro.ql.query import Query
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex

#: Output label of the PATH operator backing an rpq-dialect query (the
#: final Relabel renames it to the reserved ``Answer``).
RPQ_PATH_LABEL = "AnswerPath"

#: Explain levels, in pipeline order.  ``"kernels"`` renders the
#: physical tree annotated with the kernel-selection pass's choices.
EXPLAIN_LEVELS = ("source", "logical", "optimized", "physical", "kernels")

_GCORE_LEADING = re.compile(
    r"^\s*(GRAPH|PATH|CONSTRUCT|MATCH)\b", re.IGNORECASE
)
#: Unambiguous G-CORE edge punctuation (``-[:l]->`` / ``<-[:l]-`` /
#: ``-/<:l*>/->``): label regexes cannot contain brackets or slashes,
#: so this distinguishes G-CORE from an rpq whose first label merely
#: *starts* with a keyword (e.g. the label ``path``).
_GCORE_EDGE = re.compile(r"-\[|-/")
#: A rule arrow: ``<-`` or ``:-`` — but not the head of a G-CORE
#: backward edge ``<-[:label]-`` (checked on whitespace-normalized text,
#: where the ASCII-art edge is always exactly ``<-[``).
_RULE_ARROW = re.compile(r"<-(?!\[)|:-")


@dataclass
class CompileCounters:
    """Pipeline-stage counters (compile-once/bind-many instrumentation).

    ``parses`` counts text→AST runs of any frontend, ``translations``
    counts logical-plan constructions, ``physical_compiles`` counts
    dataflow compilations, ``binds`` counts prepared-query binds.
    """

    parses: int = 0
    translations: int = 0
    physical_compiles: int = 0
    binds: int = 0


#: The live counters.  Reset with :func:`reset_counters`.
COUNTERS = CompileCounters()


def reset_counters() -> CompileCounters:
    """Zero the counters and return the live instance.

    Also clears the pipeline's logical-plan memo, so a fresh count
    observes real pipeline work (prepared-query template caches are
    per-template and live on; that is exactly the reuse the counters
    exist to demonstrate).
    """
    COUNTERS.parses = 0
    COUNTERS.translations = 0
    COUNTERS.physical_compiles = 0
    COUNTERS.binds = 0
    _logical_plan_memo.cache_clear()
    return COUNTERS


# ----------------------------------------------------------------------
# Dialect detection and counted parse entry points
# ----------------------------------------------------------------------
def detect_dialect(text: str) -> str:
    """``"datalog"`` / ``"gcore"`` / ``"rpq"`` from the text shape.

    Rule arrows (``<-`` / ``:-``) mean Datalog — except the ``<-`` of a
    G-CORE backward edge ``(x)<-[:l]-(y)``, which is excluded by
    checking the whitespace-normalized text.  A leading G-CORE clause
    keyword means G-CORE; everything else is read as a label regex.
    """
    from repro.gcore.lexer import normalize

    normalized = normalize(text)
    if _RULE_ARROW.search(normalized):
        return "datalog"
    if _GCORE_LEADING.match(text) and _GCORE_EDGE.search(normalized):
        return "gcore"
    return "rpq"


def parse_datalog_text(text: str) -> RQProgram:
    COUNTERS.parses += 1
    return parse_rq(text)


def parse_gcore_text(text: str) -> SGQ:
    from repro.gcore import parse_gcore

    COUNTERS.parses += 1
    return parse_gcore(text)


def parse_rpq_text(text: str) -> RegexNode:
    COUNTERS.parses += 1
    return parse_regex(text)


def translate_sgq(sgq: SGQ) -> Plan:
    COUNTERS.translations += 1
    return sgq_to_sga(sgq)


def rpq_plan(
    regex: RegexNode,
    window: SlidingWindow,
    label_windows: dict[str, SlidingWindow] | None = None,
) -> Plan:
    """The direct single-PATH plan for a label regex (plans "P1")."""
    COUNTERS.translations += 1
    overrides = label_windows or {}
    inputs: dict[str, Plan] = {
        label: WScan(label, overrides.get(label, window))
        for label in regex.alphabet()
    }
    path = Path.over(inputs, regex, RPQ_PATH_LABEL)
    return Relabel(path, ANSWER)


# ----------------------------------------------------------------------
# The staged pipeline over Query values
# ----------------------------------------------------------------------
def _require_bound(query: Query) -> None:
    params = find_params(query.text)
    if params:
        raise PlanError(
            f"query text has unbound parameter(s) "
            f"{tuple('$' + p for p in params)}; use "
            "ql.prepare(...).bind(...) to instantiate a template"
        )


def to_sgq(query: Query) -> SGQ:
    """The SGQ a datalog/gcore query denotes (window attached)."""
    precompiled = query.precompiled_sgq
    if precompiled is not None:
        if callable(precompiled):
            # A bound query defers its program substitution; resolve it
            # once and pin the result (bypassing the frozen dataclass —
            # the field is excluded from equality/hash, so this is pure
            # memoization, not mutation of the value).
            precompiled = precompiled()
            object.__setattr__(query, "precompiled_sgq", precompiled)
        return precompiled  # type: ignore[return-value]
    _require_bound(query)
    if query.dialect == "datalog":
        assert query.window is not None
        return SGQ(
            parse_datalog_text(query.text),
            query.window,
            dict(query.label_windows),
        )
    if query.dialect == "gcore":
        return parse_gcore_text(query.text)
    raise PlanError(
        "an rpq query has no rule program (the dd backend and SGQ "
        "consumers need datalog or gcore dialects)"
    )


@lru_cache(maxsize=512)
def _logical_plan_memo(query: Query) -> Plan:
    # NOTE: queries are value objects — equal text/dialect/window/options
    # means an identical canonical plan, so memoizing on the Query is
    # sound (precompiled plans short-circuit in logical_plan()).
    if query.dialect == "rpq":
        assert query.window is not None
        return rpq_plan(
            parse_rpq_text(query.text),
            query.window,
            dict(query.label_windows),
        )
    return translate_sgq(to_sgq(query))


def logical_plan(query: Query) -> Plan:
    """Stage 1: the canonical logical plan for any dialect (memoized)."""
    if query.precompiled_plan is not None:
        return query.precompiled_plan  # type: ignore[return-value]
    _require_bound(query)
    return _logical_plan_memo(query)


def optimized_plan(query: Query) -> Plan:
    """Stage 2: the plan after the rewrite stage (relabel fusion)."""
    return fuse_relabels(logical_plan(query))


def physical_plan(query: Query) -> PhysicalPlan:
    """Stage 3: a standalone compiled dataflow for this query."""
    COUNTERS.physical_compiles += 1
    return compile_plan(logical_plan(query), *query.options.resolved())


# ----------------------------------------------------------------------
# Kernel selection (the vector-mode specialization pass)
# ----------------------------------------------------------------------
def resolve_execution(execution: str = "auto") -> str:
    """Resolve ``"auto"`` the same way :class:`EngineConfig` does."""
    if execution == "auto":
        return "vector" if HAVE_NUMPY else "columnar"
    return execution


def plan_source_labels(plan: Plan) -> set:
    """The WSCAN input labels a plan subtree (transitively) consumes."""
    labels: set = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, WScan):
            labels.add(node.label)
        else:
            stack.extend(node.children())
    return labels


def _path_nodes(plan: Plan) -> list[Path]:
    found: list[Path] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Path):
            found.append(node)
        stack.extend(node.children())
    return found


def vector_ingress_mode(plans) -> str:
    """``"grouped"`` or ``"segmented"`` — the vector ingress decision.

    Grouping one slide's edges per source label is the vector mode's
    only order relaxation: every kernel downstream preserves arrival
    order exactly, so grouping is observable only through *within-slide
    cross-label* reordering.  Joins and coalesced covers are invariant
    under it — a join result exists iff both sides' intervals overlap,
    independent of arrival interleaving within a slide, and net validity
    coverage is an order-free set.  PATH is the one operator that is
    *not*: its first-derivation semantics record the interval of
    whichever derivation arrives first, so reordering ``a`` edges before
    ``b`` edges within a slide can legally exchange which representative
    interval a reachability result carries (the cover is unchanged, the
    exact sgt is not).  Vector mode promises bit-identical output to the
    columnar reference, so the analysis is conservative:

    * a PATH whose subtree consumes **≤ 1 source label** never observes
      cross-label reordering — always safe to group;
    * any PATH over a multi-label subtree forces ``"segmented"``
      ingress, which reproduces columnar-mode event order (and
      therefore first-derivation intervals) bit for bit.

    ``plans`` is an iterable of plans or ``(plan, options)`` pairs (the
    compile options do not affect the decision; the pair form is what
    the engine holds per registered query).
    """
    for entry in plans:
        plan = entry[0] if isinstance(entry, tuple) else entry
        for path_node in _path_nodes(plan):
            subtree_labels: set = set()
            for _, child in path_node.inputs:
                subtree_labels |= plan_source_labels(child)
            if len(subtree_labels) > 1:
                return "segmented"
    return "grouped"


def kernel_choices(
    physical: PhysicalPlan, execution: str = "auto"
) -> dict[int, str]:
    """The kernel the executor will run per physical operator.

    Maps ``id(op)`` → a kernel tag, reflecting the *actual* runtime
    dispatch of each operator under ``execution`` — specialized forms
    (mask-compiled filters, single-key batched joins) are detected from
    the compiled operator instances, the same attributes the kernels
    branch on at run time.  Consumed by :func:`explain` (level
    ``"kernels"``) and usable directly for plan inspection in tests.
    """
    from repro.physical.coalesce_op import CoalesceOp
    from repro.physical.filter import FilterOp
    from repro.physical.join import PatternOp
    from repro.physical.rpq_negative import NegativeTupleRpqOp
    from repro.physical.spath import SPathOp
    from repro.physical.union import UnionOp
    from repro.physical.wscan import WScanOp

    execution = resolve_execution(execution)
    vector = execution == "vector"
    choices: dict[int, str] = {}
    for op in physical.graph.operators:
        if isinstance(op, WScanOp):
            if not vector:
                tag = f"wscan.{execution}"
            elif op.prefilter is None:
                tag = "wscan.vector"
            elif op._mask_fn is not None:
                tag = "wscan.vector+mask-prefilter"
            else:
                tag = "wscan.vector+row-prefilter"
        elif isinstance(op, FilterOp):
            if vector and op._mask_fn is not None:
                tag = "filter.mask"
            else:
                tag = f"filter.{execution}"
        elif isinstance(op, PatternOp):
            if not vector:
                tag = f"join.{execution}"
            elif not op._joins:
                tag = "join.single-conjunct-batch"
            elif all(
                j._left_single is not None and j._right_single is not None
                for j in op._joins
            ):
                tag = "join.single-key-batch+packed-int64"
            else:
                tag = "join.multi-key-batch+packed-int64"
        elif isinstance(op, UnionOp):
            tag = "union.rows" if execution == "rows" else "union.zero-copy"
        elif isinstance(op, CoalesceOp):
            tag = f"coalesce.{execution}" if not vector else "coalesce.batch"
        elif isinstance(op, (SPathOp, NegativeTupleRpqOp)):
            # PATH expansion is order-sensitive: every mode keeps the
            # arrival-order row loop.  Vector mode additionally runs the
            # struct-of-arrays state (slotted trees, flat-pair
            # adjacency) with window maintenance batched per boundary.
            if vector:
                tag = (
                    "path.state-arrays+batched-rederive"
                    if isinstance(op, NegativeTupleRpqOp)
                    else "path.state-arrays+batched-drain"
                )
            else:
                tag = "path.row-ingest" if execution != "rows" else "path.rows"
        else:
            continue
        choices[id(op)] = tag
    return choices


# ----------------------------------------------------------------------
# Explain
# ----------------------------------------------------------------------
def explain_physical(
    physical: PhysicalPlan, kernels: dict[int, str] | None = None
) -> str:
    """Render a compiled dataflow as an indented operator tree.

    Walks upward from the sink; operators feeding several consumers are
    expanded once and referenced as ``(shared)`` afterwards.  With a
    ``kernels`` map (see :func:`kernel_choices`) each operator line is
    annotated with its selected kernel.
    """
    producers: dict[int, list[tuple[int, object]]] = {}
    for op in physical.graph.operators:
        for consumer, port in op._downstream:
            producers.setdefault(id(consumer), []).append((port, op))

    lines: list[str] = []
    seen: set[int] = set()

    def render(op, depth: int) -> None:
        pad = "  " * depth
        tag = type(op).__name__
        name = getattr(op, "name", "")
        if id(op) in seen:
            lines.append(f"{pad}{tag} {name} (shared)")
            return
        seen.add(id(op))
        line = f"{pad}{tag} {name}"
        if kernels is not None:
            kernel = kernels.get(id(op))
            if kernel is not None:
                line += f" [kernel={kernel}]"
        lines.append(line)
        for _, producer in sorted(
            producers.get(id(op), []), key=lambda pair: pair[0]
        ):
            render(producer, depth + 1)

    render(physical.sink, 0)
    return "\n".join(lines)


def explain_kernels(
    physical: PhysicalPlan,
    plans,
    execution: str = "auto",
) -> str:
    """The kernels-level rendering: ingress decision + annotated tree."""
    execution = resolve_execution(execution)
    if execution == "vector":
        mode = vector_ingress_mode(plans)
        detail = (
            "per-slide label groups"
            if mode == "grouped"
            else "same-label runs (order-strict plan)"
        )
        header = (
            f"execution: vector · ingress: {mode} ({detail})"
            " · state: arrays"
        )
    else:
        header = f"execution: {execution} · state: objects"
    tree = explain_physical(physical, kernel_choices(physical, execution))
    return f"{header}\n{tree}"


def explain_plan_stage(
    plan: Plan,
    level: str = "logical",
    options: tuple[str, bool, bool] = ("spath", True, True),
) -> str:
    """Render a logical plan at one pipeline stage (the shared dispatch
    behind :func:`explain` and ``QueryHandle.explain``)."""
    if level == "logical":
        return explain_logical(plan)
    if level == "optimized":
        return explain_logical(fuse_relabels(plan))
    if level == "physical":
        return explain_physical(compile_plan(plan, *options))
    if level == "kernels":
        return explain_kernels(
            compile_plan(plan, *options), [(plan, options)]
        )
    raise PlanError(
        f"unknown explain level {level!r}; expected one of "
        f"{EXPLAIN_LEVELS[1:]}"
    )


def explain(query: Query, level: str = "logical") -> str:
    """Render one pipeline stage of ``query`` (or ``"all"`` of them)."""
    if level == "all":
        sections = []
        for stage in EXPLAIN_LEVELS:
            sections.append(f"-- {stage} " + "-" * max(1, 60 - len(stage)))
            sections.append(explain(query, stage))
        return "\n".join(sections)
    if level == "source":
        return str(query)
    if level == "physical":
        return explain_physical(physical_plan(query))
    if level == "kernels":
        return explain_plan_stage(
            logical_plan(query), "kernels", query.options.resolved()
        )
    if level in ("logical", "optimized"):
        return explain_plan_stage(logical_plan(query), level)
    raise PlanError(
        f"unknown explain level {level!r}; expected one of "
        f"{EXPLAIN_LEVELS + ('all',)}"
    )
