"""First-class queries: the frozen :class:`Query` value object.

A :class:`Query` is *what* to run — source text, dialect, window
specification and per-query compile options — decoupled from *where* it
runs (an engine session).  Being a frozen value object it is hashable,
comparable and safely shareable: the compile pipeline memoizes on it,
and the engine's shared-subexpression caches key off the plans it
produces.

Construction goes through the dialect constructors
(:meth:`Query.datalog`, :meth:`Query.gcore`, :meth:`Query.rpq`),
dialect auto-detection (:meth:`Query.from_text`), the fluent builder
(:func:`repro.ql.builder.match`) or a
:class:`~repro.ql.prepared.PreparedQuery` bind.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.tuples import Label
from repro.core.windows import SlidingWindow
from repro.errors import PlanError, QueryValidationError

#: Text dialects the unified pipeline understands.
DIALECTS = ("datalog", "gcore", "rpq")


@dataclass(frozen=True, slots=True)
class CompileOptions:
    """Per-query compile options, each ``None`` = engine/library default.

    These are exactly the fields a single query may override at
    registration time (:data:`repro.engine.session.PER_QUERY_OPTIONS`);
    engine-wide settings (backend, batch_size, late_policy) stay on
    :class:`~repro.engine.session.EngineConfig`.
    """

    path_impl: str | None = None
    materialize_paths: bool | None = None
    coalesce_intermediate: bool | None = None

    #: Library defaults applied when compiling outside an engine session.
    DEFAULTS = ("spath", True, True)

    def __post_init__(self) -> None:
        if self.path_impl is not None:
            from repro.physical.planner import PATH_IMPLS

            if self.path_impl not in PATH_IMPLS:
                raise PlanError(
                    f"unknown PATH implementation {self.path_impl!r}; "
                    f"expected one of {PATH_IMPLS}"
                )

    def overrides(self) -> dict[str, object]:
        """The explicitly-set fields, as ``register(**overrides)`` kwargs."""
        out: dict[str, object] = {}
        if self.path_impl is not None:
            out["path_impl"] = self.path_impl
        if self.materialize_paths is not None:
            out["materialize_paths"] = self.materialize_paths
        if self.coalesce_intermediate is not None:
            out["coalesce_intermediate"] = self.coalesce_intermediate
        return out

    def resolved(self) -> tuple[str, bool, bool]:
        """(path_impl, materialize_paths, coalesce_intermediate) with
        library defaults filled in."""
        defaults = self.DEFAULTS
        return (
            self.path_impl if self.path_impl is not None else defaults[0],
            self.materialize_paths
            if self.materialize_paths is not None
            else defaults[1],
            self.coalesce_intermediate
            if self.coalesce_intermediate is not None
            else defaults[2],
        )


def _coerce_window(
    window: SlidingWindow | int | None, slide: int | None
) -> SlidingWindow | None:
    if window is None:
        if slide is not None:
            raise QueryValidationError(
                "slide given without a window; pass window= (or set it "
                "on the template) alongside slide="
            )
        return None
    if isinstance(window, SlidingWindow):
        if slide is not None and slide != window.slide:
            return SlidingWindow(window.size, slide)
        return window
    return SlidingWindow(int(window), slide if slide is not None else 1)


def _freeze_label_windows(
    label_windows: dict[Label, SlidingWindow] | None,
) -> tuple[tuple[Label, SlidingWindow], ...]:
    if not label_windows:
        return ()
    return tuple(sorted(label_windows.items(), key=lambda kv: kv[0]))


@dataclass(frozen=True, slots=True)
class Query:
    """A persistent streaming graph query as an immutable value.

    Parameters
    ----------
    text:
        Source text in ``dialect``.
    dialect:
        ``"datalog"`` (Regular Query rules), ``"gcore"`` (the paper's
        user-level language, window embedded in the text) or ``"rpq"``
        (a bare label regex evaluated by one PATH operator).
    window:
        Default sliding window (required for datalog/rpq; ``None`` for
        gcore, whose ``ON ... WINDOW`` clauses carry it).
    label_windows:
        Per-input-label window overrides (stored sorted, hashable).
    options:
        Per-query :class:`CompileOptions`.
    bindings:
        The parameter values this query was bound from, when it came out
        of :meth:`~repro.ql.prepared.PreparedQuery.bind` (informational;
        excluded from equality).
    """

    text: str
    dialect: str
    window: SlidingWindow | None = None
    label_windows: tuple[tuple[Label, SlidingWindow], ...] = ()
    options: CompileOptions = CompileOptions()
    bindings: tuple[tuple[str, str], ...] = field(default=(), compare=False)
    #: Plan/SGQ precompiled by PreparedQuery.bind (or the builder);
    #: excluded from equality — a bound query *is* its text + window.
    precompiled_plan: object = field(default=None, compare=False, repr=False)
    precompiled_sgq: object = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.dialect not in DIALECTS:
            raise PlanError(
                f"unknown query dialect {self.dialect!r}; "
                f"expected one of {DIALECTS}"
            )
        if self.dialect != "gcore" and self.window is None:
            raise QueryValidationError(
                f"the {self.dialect!r} dialect requires a window "
                "(gcore queries carry it in their ON clauses)"
            )
        if not self.text.strip():
            raise QueryValidationError("empty query text")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def datalog(
        cls,
        text: str,
        window: SlidingWindow | int,
        *,
        slide: int | None = None,
        label_windows: dict[Label, SlidingWindow] | None = None,
        **options: object,
    ) -> "Query":
        """A Regular Query (binary Datalog with transitive closure)."""
        return cls(
            text=text,
            dialect="datalog",
            window=_coerce_window(window, slide),
            label_windows=_freeze_label_windows(label_windows),
            options=CompileOptions(**options),  # type: ignore[arg-type]
        )

    @classmethod
    def gcore(cls, text: str, **options: object) -> "Query":
        """A G-CORE statement (window embedded via ``ON ... WINDOW``)."""
        return cls(
            text=text,
            dialect="gcore",
            options=CompileOptions(**options),  # type: ignore[arg-type]
        )

    @classmethod
    def rpq(
        cls,
        text: str,
        window: SlidingWindow | int,
        *,
        slide: int | None = None,
        label_windows: dict[Label, SlidingWindow] | None = None,
        **options: object,
    ) -> "Query":
        """A regular path query given as a bare label regex.

        Compiles to the direct single-PATH plan (the "P1" plans of
        Section 7.4) rather than the canonical union/join decomposition.
        """
        return cls(
            text=text,
            dialect="rpq",
            window=_coerce_window(window, slide),
            label_windows=_freeze_label_windows(label_windows),
            options=CompileOptions(**options),  # type: ignore[arg-type]
        )

    @classmethod
    def from_text(
        cls,
        text: str,
        window: SlidingWindow | int | None = None,
        *,
        slide: int | None = None,
        label_windows: dict[Label, SlidingWindow] | None = None,
        **options: object,
    ) -> "Query":
        """Auto-detect the dialect and construct the matching query.

        ``<-``/``:-`` means datalog; a leading G-CORE clause keyword
        (CONSTRUCT / MATCH / PATH / GRAPH) means gcore; anything else is
        treated as a label regex (rpq).
        """
        from repro.ql.pipeline import detect_dialect

        dialect = detect_dialect(text)
        if dialect == "gcore":
            if window is not None or label_windows:
                raise QueryValidationError(
                    "text detected as 'gcore', which carries its window "
                    "in ON ... WINDOW clauses; drop the window argument "
                    "(or edit the query text)"
                )
            return cls.gcore(text, **options)
        ctor = cls.datalog if dialect == "datalog" else cls.rpq
        if window is None:
            raise QueryValidationError(
                f"text detected as {dialect!r}, which requires a window"
            )
        return ctor(
            text,
            window,
            slide=slide,
            label_windows=label_windows,
            **options,
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_options(self, **options: object) -> "Query":
        """A copy with compile options replaced (unset fields kept)."""
        merged = {**self.options.overrides(), **options}
        return replace(self, options=CompileOptions(**merged))  # type: ignore[arg-type]

    def with_window(
        self, window: SlidingWindow | int, *, slide: int | None = None
    ) -> "Query":
        """A copy over a different window (drops any precompiled plan)."""
        if self.dialect == "gcore":
            raise QueryValidationError(
                "gcore queries carry their window in the text"
            )
        return replace(
            self,
            window=_coerce_window(window, slide),
            precompiled_plan=None,
            precompiled_sgq=None,
        )

    # ------------------------------------------------------------------
    # The compile pipeline (delegates to repro.ql.pipeline)
    # ------------------------------------------------------------------
    def sgq(self):
        """The :class:`~repro.query.sgq.SGQ` this query denotes
        (datalog/gcore only — an rpq has no rule program)."""
        from repro.ql import pipeline

        return pipeline.to_sgq(self)

    def plan(self):
        """Stage 1: the canonical logical plan (memoized)."""
        from repro.ql import pipeline

        return pipeline.logical_plan(self)

    def optimized_plan(self):
        """Stage 2: the logical plan after the rewrite stage."""
        from repro.ql import pipeline

        return pipeline.optimized_plan(self)

    def physical_plan(self):
        """Stage 3: the compiled physical dataflow (standalone; inside
        an engine session the dataflow is shared across queries)."""
        from repro.ql import pipeline

        return pipeline.physical_plan(self)

    def explain(self, level: str = "logical") -> str:
        """Render one pipeline stage: ``"source"``, ``"logical"``,
        ``"optimized"``, ``"physical"`` or ``"all"``."""
        from repro.ql import pipeline

        return pipeline.explain(self, level)

    @property
    def params(self) -> tuple[str, ...]:
        """Unbound ``$name`` parameters in the text (a runnable query
        has none; prepare + bind to instantiate them)."""
        from repro.ql.params import find_params

        return find_params(self.text)

    def __str__(self) -> str:
        window = f" {self.window}" if self.window is not None else ""
        return f"Query[{self.dialect}{window}]\n{self.text.strip()}"
