"""Fluent Python authoring of Regular Queries.

The builder writes the same Datalog the text frontend parses — a built
:class:`~repro.ql.query.Query` carries both the rendered text and the
program constructed in memory, and the two agree by construction (the
round-trip tests assert plan identity).

Chain style (one implicit ``Answer`` rule)::

    from repro import ql

    q = (ql.match()
           .edge("likes")
           .closure("follows")
           .window(hours=1)
           .slide(minutes=10)
           .build())

Rule style (full Regular Queries, e.g. Table 1's Q2)::

    q = (ql.match()
           .rule("Answer", "x", "y").edge("a", "x", "y")
           .rule("Answer", "x", "y").edge("a", "x", "z")
                                    .closure("b", "z", "y", name="TC_B")
           .window(hours=8).slide(hours=1)
           .build())

Time units follow the dataset convention of
:mod:`repro.core.windows`: 1 tick = 1 minute, ``HOUR`` = 60 ticks.
"""

from __future__ import annotations

from repro.core.tuples import Label
from repro.core.windows import DAY, HOUR, SlidingWindow
from repro.errors import QueryValidationError
from repro.query.datalog import ANSWER, Atom, BodyAtom, ClosureAtom, Rule, RQProgram
from repro.query.sgq import SGQ
from repro.ql.query import CompileOptions, Query, _freeze_label_windows


def _duration(
    size: SlidingWindow | int | None = None,
    *,
    ticks: int = 0,
    minutes: int = 0,
    hours: int = 0,
    days: int = 0,
) -> int:
    if size is not None:
        if isinstance(size, SlidingWindow):
            raise QueryValidationError(
                "pass window size/slide separately (builder.window(...)"
                ".slide(...)), not a SlidingWindow"
            )
        return int(size)
    total = ticks + minutes + hours * HOUR + days * DAY
    if total <= 0:
        raise QueryValidationError(
            "duration needs size or ticks/minutes/hours/days"
        )
    return total


class _RuleDraft:
    """One rule under construction: atoms chain head_src → head_trg."""

    __slots__ = ("head", "src", "trg", "atoms", "tail", "tail_auto")

    def __init__(self, head: Label, src: str, trg: str):
        self.head = head
        self.src = src
        self.trg = trg
        self.atoms: list[BodyAtom] = []
        self.tail = src
        self.tail_auto = False

    def finish(self) -> Rule:
        if not self.atoms:
            raise QueryValidationError(
                f"rule {self.head}({self.src}, {self.trg}) has no body atoms"
            )
        atoms = self.atoms
        if self.tail_auto:
            # The dangling chain tail is the rule's target variable.
            rename = {self.tail: self.trg}
            atoms = [
                _rename_atom(atom, rename) for atom in atoms
            ]
        return Rule(self.head, self.src, self.trg, tuple(atoms))


def _rename_atom(atom: BodyAtom, rename: dict[str, str]) -> BodyAtom:
    src = rename.get(atom.src, atom.src)
    trg = rename.get(atom.trg, atom.trg)
    if isinstance(atom, ClosureAtom):
        return ClosureAtom(atom.label, src, trg, atom.name)
    return Atom(atom.label, src, trg)


class QueryBuilder:
    """Fluent builder for datalog-dialect queries (see module docstring).

    Every method returns the builder, so authoring reads as one chain;
    :meth:`build` produces the frozen :class:`~repro.ql.query.Query`
    (with its plan precompiled from the in-memory program), and
    :meth:`prepare` produces a
    :class:`~repro.ql.prepared.PreparedQuery` when labels use
    ``$parameters``.
    """

    def __init__(self, src: str = "x", trg: str = "y"):
        self._default_head = (ANSWER, src, trg)
        self._rules: list[Rule] = []
        self._draft: _RuleDraft | None = None
        self._size: int | None = None
        self._slide: int = 1
        self._label_windows: dict[Label, SlidingWindow] = {}
        self._options: dict[str, object] = {}
        self._auto = 0

    # ------------------------------------------------------------------
    # Rules and atoms
    # ------------------------------------------------------------------
    def rule(self, head: Label, src: str = "x", trg: str = "y") -> "QueryBuilder":
        """Start a rule ``head(src, trg) <- ...`` (finishes the previous)."""
        if self._draft is not None:
            self._rules.append(self._draft.finish())
        self._draft = _RuleDraft(head, src, trg)
        return self

    def _ensure_draft(self) -> _RuleDraft:
        if self._draft is None:
            head, src, trg = self._default_head
            self._draft = _RuleDraft(head, src, trg)
        return self._draft

    def _next_var(self, draft: _RuleDraft) -> str:
        """A fresh chain variable — never one the rule already uses
        (a collision would silently merge two join variables)."""
        used = {draft.src, draft.trg}
        for atom in draft.atoms:
            used.add(atom.src)
            used.add(atom.trg)
        while True:
            self._auto += 1
            candidate = f"v{self._auto}"
            if candidate not in used:
                return candidate

    def _chain(
        self, src: str | None, trg: str | None
    ) -> tuple[_RuleDraft, str, str, bool]:
        draft = self._ensure_draft()
        if src is None:
            src = draft.tail
        if trg is None:
            trg = self._next_var(draft)
            auto = True
        else:
            auto = False
        return draft, src, trg, auto

    def edge(
        self, label: Label, src: str | None = None, trg: str | None = None
    ) -> "QueryBuilder":
        """Add a plain atom ``label(src, trg)``.

        Omitted ``src`` continues the current chain (the previous atom's
        target, or the rule's source variable); omitted ``trg`` extends
        the chain with a fresh variable — the rule's target variable
        takes its place when the rule ends on it.
        """
        draft, src, trg, auto = self._chain(src, trg)
        draft.atoms.append(Atom(label, src, trg))
        draft.tail, draft.tail_auto = trg, auto
        return self

    def closure(
        self,
        label: Label,
        src: str | None = None,
        trg: str | None = None,
        *,
        name: Label | None = None,
    ) -> "QueryBuilder":
        """Add a transitive-closure atom ``label+(src, trg) as name``."""
        draft, src, trg, auto = self._chain(src, trg)
        draft.atoms.append(
            ClosureAtom(label, src, trg, name or f"{label}_tc")
        )
        draft.tail, draft.tail_auto = trg, auto
        return self

    # ------------------------------------------------------------------
    # Window / options
    # ------------------------------------------------------------------
    def window(
        self,
        size: int | None = None,
        *,
        ticks: int = 0,
        minutes: int = 0,
        hours: int = 0,
        days: int = 0,
    ) -> "QueryBuilder":
        """Set the window size (raw ticks, or named units summed)."""
        self._size = _duration(
            size, ticks=ticks, minutes=minutes, hours=hours, days=days
        )
        return self

    def slide(
        self,
        size: int | None = None,
        *,
        ticks: int = 0,
        minutes: int = 0,
        hours: int = 0,
        days: int = 0,
    ) -> "QueryBuilder":
        """Set the slide interval (defaults to 1 tick when never called)."""
        self._slide = _duration(
            size, ticks=ticks, minutes=minutes, hours=hours, days=days
        )
        return self

    def label_window(
        self,
        label: Label,
        size: int | None = None,
        *,
        slide: int = 1,
        ticks: int = 0,
        minutes: int = 0,
        hours: int = 0,
        days: int = 0,
    ) -> "QueryBuilder":
        """Override the window of one input label (multi-stream joins)."""
        self._label_windows[label] = SlidingWindow(
            _duration(size, ticks=ticks, minutes=minutes, hours=hours, days=days),
            slide,
        )
        return self

    def options(self, **options: object) -> "QueryBuilder":
        """Set per-query compile options (path_impl, materialize_paths,
        coalesce_intermediate)."""
        self._options.update(options)
        return self

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def program(self) -> RQProgram:
        """The Regular Query authored so far (finishes the open rule)."""
        rules = list(self._rules)
        if self._draft is not None:
            rules.append(self._draft.finish())
            self._rules = rules
            self._draft = None
        if not rules:
            raise QueryValidationError("builder has no rules")
        return RQProgram(tuple(rules))

    def text(self) -> str:
        """The canonical Datalog rendering of the authored program."""
        return "\n".join(f"{rule}." for rule in self.program().rules)

    def build(self) -> Query:
        """The frozen :class:`Query`: rendered text + precompiled plan."""
        from repro.ql import pipeline
        from repro.ql.params import find_params

        program = self.program()
        text = "\n".join(f"{rule}." for rule in program.rules)
        if find_params(text):
            raise QueryValidationError(
                "program uses $parameters; use .prepare() and bind them"
            )
        if self._size is None:
            raise QueryValidationError(
                "no window set; call .window(...) before .build()"
            )
        window = SlidingWindow(self._size, self._slide)
        sgq = SGQ(program, window, dict(self._label_windows))
        return Query(
            text=text,
            dialect="datalog",
            window=window,
            label_windows=_freeze_label_windows(self._label_windows),
            options=CompileOptions(**self._options),  # type: ignore[arg-type]
            precompiled_plan=pipeline.translate_sgq(sgq),
            precompiled_sgq=sgq,
        )

    def prepare(self):
        """A :class:`PreparedQuery` template from the authored text."""
        from repro.ql.prepared import PreparedQuery

        window = (
            SlidingWindow(self._size, self._slide)
            if self._size is not None
            else None
        )
        return PreparedQuery(
            self.text(),
            window,
            label_windows=dict(self._label_windows),
            dialect="datalog",
            **self._options,
        )


def match(src: str = "x", trg: str = "y") -> QueryBuilder:
    """Open a fluent builder; ``src``/``trg`` name the Answer variables."""
    return QueryBuilder(src, trg)
