"""``repro.ql`` — first-class queries and the unified compile pipeline.

One algebra, one authoring surface: every frontend (Datalog text,
G-CORE text, bare label regexes, the fluent Python builder) produces the
same frozen :class:`Query` value, and one staged pipeline compiles it —
``Query → LogicalPlan → OptimizedPlan → PhysicalPlan`` — with
``explain(level=...)`` at each stage.

The pieces:

* :class:`Query` — immutable query value; dialect constructors
  (:meth:`Query.datalog` / :meth:`Query.gcore` / :meth:`Query.rpq`) and
  auto-detection (:meth:`Query.from_text`).
* :func:`match` — fluent builder
  (``ql.match().edge("likes").closure("follows").window(hours=1)``).
* :func:`prepare` / :class:`PreparedQuery` — ``$``-parameterized
  templates: parse once, :meth:`~PreparedQuery.bind` many.
* :func:`explain`, :data:`COUNTERS` — pipeline introspection and the
  compile-once instrumentation.

Register any of these on a
:class:`~repro.engine.session.StreamingGraphEngine`::

    from repro import SlidingWindow, StreamingGraphEngine, ql

    engine = StreamingGraphEngine()
    q = ql.match().closure("knows").window(100).slide(10).build()
    handle = engine.register(q, name="reach")
"""

from repro.ql.builder import QueryBuilder, match
from repro.ql.pipeline import (
    COUNTERS,
    CompileCounters,
    detect_dialect,
    explain,
    explain_physical,
    logical_plan,
    optimized_plan,
    physical_plan,
    reset_counters,
)
from repro.ql.prepared import PreparedQuery, prepare
from repro.ql.query import DIALECTS, CompileOptions, Query

__all__ = [
    "Query",
    "CompileOptions",
    "DIALECTS",
    "QueryBuilder",
    "match",
    "PreparedQuery",
    "prepare",
    "detect_dialect",
    "logical_plan",
    "optimized_plan",
    "physical_plan",
    "explain",
    "explain_physical",
    "COUNTERS",
    "CompileCounters",
    "reset_counters",
]
