"""Prepared, parameterized queries: compile once, bind many.

A :class:`PreparedQuery` parses a template containing ``$name``
parameters **once**, translates it to a template logical plan once per
window configuration, and then :meth:`~PreparedQuery.bind` instantiates
concrete :class:`~repro.ql.query.Query` values by *structural
substitution* — no re-parse, no re-translation, allocation cost linear
in the plan size rather than the text size.

Bound queries carry their precompiled plan, so registering them on a
:class:`~repro.engine.session.StreamingGraphEngine` keys straight into
the session's shared-subexpression plan cache: N registrations of the
same binding share every compiled operator, and N different bindings of
one template share the parsed/validated template structure.

Example::

    from repro import ql

    template = ql.prepare(
        "Answer(x, y) <- $a(x, z), $b+(z, y) as TC.",
        window=SlidingWindow(24 * HOUR, HOUR),
    )
    q_likes = template.bind(a="likes", b="follows")
    q_knows = template.bind(a="knows", b="follows", window=SlidingWindow(60))
    engine.register(q_likes); engine.register(q_knows)
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.tuples import Label
from repro.core.windows import SlidingWindow
from repro.errors import PlanError, QueryValidationError
from repro.query.sgq import SGQ
from repro.ql import params as _params
from repro.ql import pipeline as _pipeline
from repro.ql.query import (
    CompileOptions,
    Query,
    _coerce_window,
    _freeze_label_windows,
)


class PreparedQuery:
    """A parsed-once query template with named ``$parameters``.

    Parameters
    ----------
    text:
        Template text; ``$name`` may stand anywhere a label may.
    window:
        Default window for bound instances (datalog/rpq; may instead be
        supplied per bind).  G-CORE templates embed their window.
    label_windows:
        Per-label window overrides.  Keys may be template labels
        (including ``$name``) or, at bind time, bound label values.
    dialect:
        Explicit dialect; auto-detected from the text when omitted.
    options:
        Per-query compile options inherited by every bound instance.
    """

    def __init__(
        self,
        text: str,
        window: SlidingWindow | int | None = None,
        *,
        slide: int | None = None,
        label_windows: dict[Label, SlidingWindow] | None = None,
        dialect: str | None = None,
        **options: object,
    ):
        self.text = text
        self.dialect = dialect or _pipeline.detect_dialect(text)
        self.params = _params.find_params(text)
        self.options = CompileOptions(**options)  # type: ignore[arg-type]
        self.window = _coerce_window(window, slide)
        self.label_windows = _freeze_label_windows(label_windows)
        if self.dialect == "gcore" and (
            self.window is not None or self.label_windows
        ):
            raise QueryValidationError(
                "gcore templates carry their window in ON ... WINDOW "
                "clauses; drop the window/label_windows arguments"
            )

        # Parse ONCE.  The text parsers cannot tokenize '$', so the
        # template goes through the reversible sentinel encoding and the
        # parsed artifacts are rewritten back to literal '$name' labels.
        encoded = _params.encode_params(text)
        self._program = None
        self._regex = None
        self._gcore_sgq: SGQ | None = None
        if self.dialect == "datalog":
            program = _pipeline.parse_datalog_text(encoded)
            self._program = _decode_program(program) if self.params else program
            self._check_params_are_inputs(self._program.edb_labels)
        elif self.dialect == "gcore":
            sgq = _pipeline.parse_gcore_text(encoded)
            self._gcore_sgq = SGQ(
                _decode_program(sgq.program),
                sgq.window,
                {
                    _params.decode_label(k): v
                    for k, v in sgq.label_windows.items()
                },
            )
            self._check_params_are_inputs(self._gcore_sgq.program.edb_labels)
        elif self.dialect == "rpq":
            self._regex = _decode_regex(_pipeline.parse_rpq_text(encoded))
        else:
            raise PlanError(f"unknown query dialect {self.dialect!r}")

        #: Template logical plans, one per window configuration, and
        #: bound Query values (re-binding the same instance returns the
        #: *same* object, and therefore the same plan object).  Both are
        #: LRU-capped: a serving tier binding per-tenant labels must not
        #: accumulate one retained plan tree per distinct binding.
        self._template_plans: OrderedDict[tuple, object] = OrderedDict()
        self._bound: OrderedDict[tuple, Query] = OrderedDict()

    def _check_params_are_inputs(self, edb_labels: frozenset[str]) -> None:
        """Parameters must instantiate *input* labels: parameterizing a
        rule head would change the program's structure per binding, which
        defeats template sharing."""
        inputs = set(edb_labels)
        for name in self.params:
            placeholder = f"${name}"
            if not any(placeholder in label for label in inputs):
                raise QueryValidationError(
                    f"parameter ${name} does not appear as an input "
                    "(EDB) label; only input labels may be parameterized"
                )

    # ------------------------------------------------------------------
    def _window_key(
        self,
        window: SlidingWindow | None,
        label_windows: tuple[tuple[Label, SlidingWindow], ...],
        values: dict[str, str],
    ) -> tuple[SlidingWindow | None, tuple]:
        """Normalize a bind's window spec to template-label keys.

        A bound-label key fans out to *every* parameter bound to that
        label (two parameters may bind the same label), so the template
        translation applies the override to all of its scans — exactly
        what compiling the substituted text would do.
        """
        reverse: dict[str, list[str]] = {}
        for param, value in values.items():
            reverse.setdefault(value, []).append(f"${param}")
        template_labels = self._template_input_labels()
        normalized: list[tuple[Label, SlidingWindow]] = []
        for label, w in label_windows:
            keys = list(reverse.get(label, ()))
            # The label may *also* appear literally in the template.
            if not keys or label in template_labels:
                keys.append(label)
            for key in keys:
                normalized.append((key, w))
        return (window, tuple(sorted(normalized)))

    def _template_input_labels(self) -> frozenset[str]:
        if self.dialect == "rpq":
            assert self._regex is not None
            return self._regex.alphabet()
        if self.dialect == "datalog":
            assert self._program is not None
            return self._program.edb_labels
        assert self._gcore_sgq is not None
        return self._gcore_sgq.program.edb_labels

    #: LRU capacities for the per-template caches.
    MAX_TEMPLATE_PLANS = 64
    MAX_BOUND = 512

    def _template_plan(self, key: tuple) -> object:
        plan = self._template_plans.get(key)
        if plan is not None:
            self._template_plans.move_to_end(key)
            return plan
        window, label_windows = key
        if self.dialect == "rpq":
            assert self._regex is not None and window is not None
            plan = _pipeline.rpq_plan(self._regex, window, dict(label_windows))
        elif self.dialect == "datalog":
            assert self._program is not None and window is not None
            plan = _pipeline.translate_sgq(
                SGQ(self._program, window, dict(label_windows))
            )
        else:
            assert self._gcore_sgq is not None
            plan = _pipeline.translate_sgq(self._gcore_sgq)
        self._template_plans[key] = plan
        if len(self._template_plans) > self.MAX_TEMPLATE_PLANS:
            self._template_plans.popitem(last=False)
        return plan

    # ------------------------------------------------------------------
    def bind(
        self,
        window: SlidingWindow | int | None = None,
        *,
        slide: int | None = None,
        label_windows: dict[Label, SlidingWindow] | None = None,
        **values: str,
    ) -> Query:
        """Instantiate the template: every ``$param`` gets a label value.

        Performs **no parsing**: the bound query's logical plan is the
        cached template plan with labels structurally substituted, and
        its SGQ (for the dd backend) is the template program likewise
        substituted.  Binding the same (values, window) twice returns
        the identical :class:`Query` object.
        """
        _pipeline.COUNTERS.binds += 1
        _params.check_bindings(self.params, values)

        if window is None and slide is not None and self.window is not None:
            # A bare slide= override re-paces the template's window.
            bound_window: SlidingWindow | None = SlidingWindow(
                self.window.size, slide
            )
        else:
            bound_window = _coerce_window(window, slide) or self.window
        if self.dialect == "gcore":
            if bound_window is not None or label_windows:
                raise QueryValidationError(
                    "gcore templates carry their window in ON ... WINDOW "
                    "clauses; drop the window/label_windows bind arguments"
                )
        elif bound_window is None:
            raise QueryValidationError(
                f"the {self.dialect!r} dialect requires a window at "
                "prepare or bind time"
            )
        frozen_lw = (
            _freeze_label_windows(label_windows)
            if label_windows is not None
            else self.label_windows
        )

        cache_key = (
            tuple(sorted(values.items())),
            bound_window,
            frozen_lw,
        )
        cached = self._bound.get(cache_key)
        if cached is not None:
            self._bound.move_to_end(cache_key)
            return cached

        template_key = self._window_key(bound_window, frozen_lw, values)
        template_plan = self._template_plan(template_key)
        plan = _params.substitute_plan(template_plan, values)

        # The bound SGQ (only the dd backend and SGQ consumers need it)
        # is built lazily: pipeline.to_sgq resolves the thunk on first
        # use — still no parsing, just program substitution.
        bound_sgq: object = None
        if self.dialect == "datalog":
            assert self._program is not None and bound_window is not None
            bound_sgq = _BoundSGQThunk(
                self._program, bound_window, dict(frozen_lw), values
            )
        elif self.dialect == "gcore":
            assert self._gcore_sgq is not None
            bound_sgq = _BoundSGQThunk(
                self._gcore_sgq.program,
                self._gcore_sgq.window,
                dict(self._gcore_sgq.label_windows),
                values,
            )

        bound = Query(
            text=_params.substitute_text(self.text, values),
            dialect=self.dialect,
            window=bound_window if self.dialect != "gcore" else None,
            label_windows=tuple(
                sorted(
                    (_params.substitute_text(label, values), w)
                    for label, w in frozen_lw
                )
            ),
            options=self.options,
            bindings=tuple(sorted(values.items())),
            precompiled_plan=plan,
            precompiled_sgq=bound_sgq,
        )
        self._bound[cache_key] = bound
        if len(self._bound) > self.MAX_BOUND:
            self._bound.popitem(last=False)
        return bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"${p}" for p in self.params) or "no params"
        return f"<PreparedQuery [{self.dialect}] {params}>"


class _BoundSGQThunk:
    """Deferred program substitution for a bound query's SGQ."""

    __slots__ = ("_program", "_window", "_label_windows", "_values")

    def __init__(self, program, window, label_windows, values):
        self._program = program
        self._window = window
        self._label_windows = label_windows
        self._values = dict(values)

    def __call__(self) -> SGQ:
        return SGQ(
            _params.substitute_program(self._program, self._values),
            self._window,
            {
                _params.substitute_text(label, self._values): w
                for label, w in self._label_windows.items()
            },
        )


def _decode_regex(node):
    """Sentinel identifiers back to ``$name`` across a regex AST."""
    from repro.regex.ast import (
        Alternation,
        Concat,
        Empty,
        Optional_,
        Plus,
        Star,
        Symbol,
    )

    if isinstance(node, Symbol):
        return Symbol(_params.decode_label(node.label))
    if isinstance(node, Empty):
        return node
    if isinstance(node, (Concat, Alternation)):
        return type(node)(_decode_regex(node.left), _decode_regex(node.right))
    if isinstance(node, (Star, Plus, Optional_)):
        return type(node)(_decode_regex(node.inner))
    raise PlanError(f"cannot decode regex node {node!r}")


def _decode_program(program):
    """Sentinel identifiers back to ``$name`` across a parsed program."""
    from repro.query.datalog import Atom, ClosureAtom, Rule, RQProgram

    rules = []
    for rule in program.rules:
        body = []
        for atom in rule.body:
            if isinstance(atom, ClosureAtom):
                body.append(
                    ClosureAtom(
                        _params.decode_label(atom.label),
                        atom.src,
                        atom.trg,
                        _params.decode_label(atom.name),
                    )
                )
            else:
                body.append(
                    Atom(
                        _params.decode_label(atom.label), atom.src, atom.trg
                    )
                )
        rules.append(
            Rule(
                _params.decode_label(rule.head_label),
                rule.head_src,
                rule.head_trg,
                tuple(body),
            )
        )
    return RQProgram(tuple(rules))


def prepare(
    text: str,
    window: SlidingWindow | int | None = None,
    *,
    slide: int | None = None,
    label_windows: dict[Label, SlidingWindow] | None = None,
    dialect: str | None = None,
    **options: object,
) -> PreparedQuery:
    """Parse a ``$``-parameterized template once, for many cheap binds."""
    return PreparedQuery(
        text,
        window,
        slide=slide,
        label_windows=label_windows,
        dialect=dialect,
        **options,
    )
