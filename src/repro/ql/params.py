"""Named ``$parameters`` in query text, programs, regexes and plans.

A parameter is ``$name`` wherever a label may appear.  The text parsers
cannot tokenize ``$``, so parsing a template goes through a reversible
sentinel encoding (``$a`` → ``_QP_a_QP``, a valid identifier), and the
parsed artifacts are rewritten back so template programs/plans carry the
literal ``$a`` labels — which is what explain output shows.

Binding substitutes values structurally: programs and plans are immutable
value trees, so substitution rebuilds them bottom-up with the mapping
applied to every label-valued field (including closure names derived
from a parameterized label, e.g. ``$a_tc`` → ``knows_tc``).  No text is
re-parsed on bind — that is the whole point of
:class:`~repro.ql.prepared.PreparedQuery`.
"""

from __future__ import annotations

import dataclasses
import re
from functools import lru_cache

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    Plan,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.errors import PlanError
from repro.query.datalog import Atom, ClosureAtom, Rule, RQProgram
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Symbol,
)

#: ``$name`` wherever a label may appear.
PARAM_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")

_SENTINEL = "_QP_{}_QP"
_SENTINEL_RE = re.compile(r"_QP_([A-Za-z_][A-Za-z0-9_]*?)_QP")


def find_params(text: str) -> tuple[str, ...]:
    """Unique parameter names in order of first appearance."""
    seen: list[str] = []
    for match in PARAM_RE.finditer(text):
        name = match.group(1)
        if name not in seen:
            seen.append(name)
    return tuple(seen)


def encode_params(text: str) -> str:
    """``$name`` → sentinel identifiers the text parsers accept."""
    return PARAM_RE.sub(lambda m: _SENTINEL.format(m.group(1)), text)


def decode_label(label: str) -> str:
    """Sentinel identifiers back to ``$name`` (parsed-artifact labels)."""
    return _SENTINEL_RE.sub(lambda m: f"${m.group(1)}", label)


@lru_cache(maxsize=256)
def _names_pattern(names: tuple[str, ...]) -> re.Pattern:
    return re.compile(
        r"\$("
        + "|".join(
            re.escape(name) for name in sorted(names, key=len, reverse=True)
        )
        + r")"
    )


def substitute_text(text: str, values: dict[str, str]) -> str:
    """``$name`` occurrences replaced by their bound values.

    Matches the bound names themselves (longest first) rather than whole
    identifiers, so labels *derived* from a parameter — the parser's
    default closure name ``$a_tc`` for an anonymous ``$a+`` closure —
    substitute correctly (``knows_tc``).
    """
    if not values or "$" not in text:
        return text
    pattern = _names_pattern(tuple(sorted(values)))
    return pattern.sub(lambda m: str(values[m.group(1)]), text)


def check_bindings(
    params: tuple[str, ...], values: dict[str, str]
) -> None:
    unknown = set(values) - set(params)
    if unknown:
        raise PlanError(
            f"unknown parameter(s) {sorted(unknown)}; "
            f"template declares {sorted(params) or 'none'}"
        )
    missing = set(params) - set(values)
    if missing:
        raise PlanError(
            f"unbound parameter(s) {sorted(missing)}; bind() needs a "
            "value for every $parameter"
        )
    for name, value in values.items():
        if not isinstance(value, str) or not value:
            raise PlanError(
                f"parameter ${name} must bind to a non-empty label, "
                f"got {value!r}"
            )


# ----------------------------------------------------------------------
# Structural substitution
# ----------------------------------------------------------------------
def _sub_label(label: str | None, values: dict[str, str]) -> str | None:
    if label is None:
        return None
    return substitute_text(label, values)


def substitute_program(
    program: RQProgram, values: dict[str, str]
) -> RQProgram:
    """The program with every label-valued field substituted."""
    rules = []
    for rule in program.rules:
        body = []
        for atom in rule.body:
            if isinstance(atom, ClosureAtom):
                body.append(
                    ClosureAtom(
                        _sub_label(atom.label, values),
                        atom.src,
                        atom.trg,
                        _sub_label(atom.name, values),
                    )
                )
            else:
                body.append(
                    Atom(_sub_label(atom.label, values), atom.src, atom.trg)
                )
        rules.append(
            Rule(
                _sub_label(rule.head_label, values),
                rule.head_src,
                rule.head_trg,
                tuple(body),
            )
        )
    return RQProgram(tuple(rules))


def substitute_regex(node: RegexNode, values: dict[str, str]) -> RegexNode:
    """The regex AST with parameterized symbols substituted."""
    if isinstance(node, Symbol):
        return Symbol(_sub_label(node.label, values))
    if isinstance(node, Empty):
        return node
    if isinstance(node, (Concat, Alternation)):
        return type(node)(
            substitute_regex(node.left, values),
            substitute_regex(node.right, values),
        )
    if isinstance(node, (Star, Plus, Optional_)):
        return type(node)(substitute_regex(node.inner, values))
    raise PlanError(f"cannot substitute parameters in regex node {node!r}")


def _sub_predicate(
    predicate: Predicate | None, values: dict[str, str]
) -> Predicate | None:
    if predicate is None:
        return None
    conditions = tuple(
        (
            attribute,
            op,
            _sub_label(value, values) if attribute == "label" else value,
        )
        for attribute, op, value in predicate.conditions
    )
    return Predicate(conditions)


def substitute_plan(plan: Plan, values: dict[str, str]) -> Plan:
    """The logical plan with every label-valued field substituted.

    The rebuild preserves value-object sharing (equal sub-plans stay
    equal), and PATH inputs are re-sorted by their substituted labels so
    the result is *identical* to compiling the substituted text — the
    bit-for-bit plan equality the prepared-query cache relies on.
    """
    memo: dict[Plan, Plan] = {}

    def rebuild(node: Plan) -> Plan:
        cached = memo.get(node)
        if cached is not None:
            return cached
        if isinstance(node, WScan):
            out: Plan = WScan(
                _sub_label(node.label, values),
                node.window,
                _sub_predicate(node.prefilter, values),
            )
        elif isinstance(node, Filter):
            out = Filter(
                rebuild(node.child), _sub_predicate(node.predicate, values)
            )
        elif isinstance(node, Relabel):
            out = Relabel(rebuild(node.child), _sub_label(node.label, values))
        elif isinstance(node, Union):
            out = Union(
                rebuild(node.left),
                rebuild(node.right),
                _sub_label(node.label, values),
            )
        elif isinstance(node, Pattern):
            out = dataclasses.replace(
                node,
                inputs=tuple(
                    dataclasses.replace(c, plan=rebuild(c.plan))
                    for c in node.inputs
                ),
                label=_sub_label(node.label, values),
            )
        elif isinstance(node, Path):
            out = Path.over(
                {
                    _sub_label(label, values): rebuild(child)
                    for label, child in node.inputs
                },
                substitute_regex(node.regex, values),
                _sub_label(node.label, values),
            )
        else:
            raise PlanError(f"cannot substitute parameters in {node!r}")
        memo[node] = out
        return out

    if not values:
        return plan
    return rebuild(plan)
