"""Q1-Q7 of Table 1, as parameterized query templates.

``Q1``-``Q4`` are the common RPQs of real-world query logs
[Bonifati et al., WWW 2019]; ``Q5``/``Q6`` encode the complex graph
patterns of LDBC SNB queries IS7 and IC7; ``Q7`` is the paper's running
example (Example 1) — a recursive path query *over* the complex pattern
of Q6, expressible in neither Cypher nor SPARQL.

Each template carries a Datalog (RQ) form with abstract edge predicates
``$a``/``$b``/``$c`` — a :class:`~repro.ql.prepared.PreparedQuery`
template, parsed once per process and instantiated per dataset
(Section 7.1.3) by parameter binding — and exposes:

* :meth:`WorkloadQuery.query` — the bound first-class
  :class:`~repro.ql.query.Query` (no re-parse per instantiation),
* :meth:`WorkloadQuery.sgq` — the SGQ (RQ + window),
* :meth:`WorkloadQuery.plan` — the canonical SGA plan via SGQParser,
* :func:`rpq_direct_plan` — the single-PATH rewrites (plans "P1" of
  Figures 13/14) for the RPQ queries,
* :func:`q4_plan_space` — the SGA/P1/P2/P3 plans of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.algebra.operators import Path, Plan, Relabel
from repro.algebra.rewrite import (
    fuse_pattern_into_path,
    group_concat_prefix,
    group_concat_suffix,
)
from repro.core.tuples import Label
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.ql.params import substitute_text
from repro.ql.prepared import PreparedQuery
from repro.query.sgq import SGQ

#: Table 1 query texts over abstract predicates $a, $b, $c.  RPQs appear
#: in their RQ encodings (star decomposed into union-of-rules), which is
#: what Algorithm SGQParser consumes to build the canonical plans.
_TEMPLATES: dict[str, tuple[str, str, str]] = {
    "Q1": (
        "?x, ?y <- ?x a* ?y",
        """
        Answer(x, y) <- $a+(x, y) as TC_A.
        """,
        "transitive closure of a single label",
    ),
    "Q2": (
        "?x, ?y <- ?x a . b* ?y",
        """
        Answer(x, y) <- $a(x, y).
        Answer(x, y) <- $a(x, z), $b+(z, y) as TC_B.
        """,
        "a label followed by a Kleene star",
    ),
    "Q3": (
        "?x, ?y <- ?x a . b* . c* ?y",
        """
        AB(x, y) <- $a(x, y).
        AB(x, y) <- $a(x, z), $b+(z, y) as TC_B.
        Answer(x, y) <- AB(x, y).
        Answer(x, y) <- AB(x, z), $c+(z, y) as TC_C.
        """,
        "a label followed by two Kleene stars",
    ),
    "Q4": (
        "?x, ?y <- ?x (a . b . c)+ ?y",
        """
        D(x, t) <- $a(x, y), $b(y, z), $c(z, t).
        Answer(x, y) <- D+(x, y) as DP.
        """,
        "Kleene plus over a concatenation (loop-caching canonical plan)",
    ),
    "Q5": (
        "RR(m1, m2) <- a(x, y), b(m1, x), b(m2, y), c(m2, m1)",
        """
        RR(m1, m2) <- $a(x, y), $b(m1, x), $b(m2, y), $c(m2, m1).
        Answer(m1, m2) <- RR(m1, m2).
        """,
        "SNB IS7: non-recursive complex graph pattern",
    ),
    "Q6": (
        "RL(x, y) <- a+(x, y), b(x, m), c(m, y)",
        """
        RL(x, y) <- $a+(x, y) as AP, $b(x, m), $c(m, y).
        Answer(x, y) <- RL(x, y).
        """,
        "SNB IC7: recent likers connected by a path of friends",
    ),
    "Q7": (
        "RL as Q6; Ans(x, m) <- RL+(x, y), c(m, y)",
        """
        RL(x, y) <- $a+(x, y) as AP, $b(x, m), $c(m, y).
        Answer(x, m) <- RL+(x, y) as RLP, $c(m, y).
        """,
        "Example 1: recursive path query over the Q6 pattern",
    ),
}

#: The direct-PATH regexes of the RPQ queries (plans P1 of Section 7.4).
_RPQ_REGEXES: dict[str, str] = {
    "Q1": "$a+",
    "Q2": "$a $b*",
    "Q3": "$a $b* $c*",
    "Q4": "($a $b $c)+",
}

#: Per-dataset instantiation of the abstract predicates (Section 7.1.3).
_LABEL_MAPS: dict[str, dict[str, dict[str, Label]]] = {
    "so": {
        q: {"a": "a2q", "b": "c2q", "c": "c2a"} for q in _TEMPLATES
    },
    "snb": {
        "Q1": {"a": "replyOf", "b": "likes", "c": "hasCreator"},
        "Q2": {"a": "likes", "b": "replyOf", "c": "hasCreator"},
        "Q3": {"a": "likes", "b": "replyOf", "c": "hasCreator"},
        "Q4": {"a": "knows", "b": "likes", "c": "hasCreator"},
        "Q5": {"a": "knows", "b": "hasCreator", "c": "replyOf"},
        "Q6": {"a": "knows", "b": "likes", "c": "hasCreator"},
        "Q7": {"a": "knows", "b": "likes", "c": "hasCreator"},
    },
}


@dataclass(frozen=True)
class WorkloadQuery:
    """One Table 1 query template."""

    name: str
    pattern: str
    datalog_template: str
    description: str

    @cached_property
    def prepared(self) -> PreparedQuery:
        """The parse-once template (parameters ``$a``/``$b``/``$c``);
        the window travels with each bind."""
        return PreparedQuery(self.datalog_template, dialect="datalog")

    def datalog(self, labels: dict[str, Label]) -> str:
        """The RQ text with predicates instantiated."""
        return substitute_text(self.datalog_template, labels)

    def query(
        self,
        labels: dict[str, Label],
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
    ):
        """The bound first-class query (compile-once/bind-many path)."""
        declared = self.prepared.params
        values = {k: v for k, v in labels.items() if k in declared}
        return self.prepared.bind(
            window=window, label_windows=label_windows or {}, **values
        )

    def sgq(
        self,
        labels: dict[str, Label],
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
    ) -> SGQ:
        return self.query(labels, window, label_windows).sgq()

    def plan(self, labels: dict[str, Label], window: SlidingWindow) -> Plan:
        """The canonical SGA plan produced by Algorithm SGQParser."""
        return self.query(labels, window).plan()

    @property
    def is_rpq(self) -> bool:
        return self.name in _RPQ_REGEXES

    @cached_property
    def prepared_rpq(self) -> PreparedQuery:
        """The parse-once direct-PATH template (RPQ queries only)."""
        template = _RPQ_REGEXES.get(self.name)
        if template is None:
            raise PlanError(f"{self.name} is not an RPQ query")
        return PreparedQuery(template, dialect="rpq")


QUERIES: dict[str, WorkloadQuery] = {
    name: WorkloadQuery(name, pattern, text, description)
    for name, (pattern, text, description) in _TEMPLATES.items()
}


def labels_for(query_name: str, dataset: str) -> dict[str, Label]:
    """The per-dataset predicate instantiation for a query."""
    try:
        return dict(_LABEL_MAPS[dataset][query_name])
    except KeyError as exc:
        raise PlanError(
            f"no label mapping for query {query_name!r} on dataset {dataset!r}"
        ) from exc


def rpq_direct_plan(
    query_name: str, labels: dict[str, Label], window: SlidingWindow
) -> Plan:
    """The single-PATH plan ("P1") for an RPQ query of Table 1.

    This is the novel plan made possible by the PATH operator: the whole
    regular expression is evaluated by one Δ-PATH index instead of the
    canonical decomposition into unions/joins of closures (Section 7.4,
    Figures 12-14).
    """
    query = QUERIES.get(query_name)
    if query is None or not query.is_rpq:
        raise PlanError(f"{query_name} is not an RPQ query")
    prepared = query.prepared_rpq
    values = {k: v for k, v in labels.items() if k in prepared.params}
    return prepared.bind(window=window, **values).plan()


def q4_plan_space(
    labels: dict[str, Label], window: SlidingWindow
) -> dict[str, Plan]:
    """The four Q4 plans compared in Figure 12.

    * ``SGA`` — canonical loop-caching plan ``P[d+](PATTERN(a, b, c))``,
    * ``P1``  — ``P[(a.b.c)+]`` (full inlining),
    * ``P2``  — ``P[(a.d)+](a, PATTERN(b, c))``,
    * ``P3``  — ``P[(d.c)+](PATTERN(a, b), c)``.
    """
    query = QUERIES["Q4"]
    canonical = query.plan(labels, window)
    # The canonical plan is Relabel(Path[d+](Pattern)); rewrite its child.
    if isinstance(canonical, Relabel) and isinstance(canonical.child, Path):
        path_node = canonical.child
    else:  # pragma: no cover - canonical shape is stable
        raise PlanError(f"unexpected canonical Q4 plan shape: {canonical}")

    p1_path = fuse_pattern_into_path(path_node)
    if p1_path is None:  # pragma: no cover
        raise PlanError("Q4 canonical plan did not fuse")
    p2_path = group_concat_suffix(p1_path, 2, "bc_grp")
    p3_path = group_concat_prefix(p1_path, 2, "ab_grp")
    return {
        "SGA": canonical,
        "P1": Relabel(p1_path, "Answer"),
        "P2": Relabel(p2_path, "Answer"),
        "P3": Relabel(p3_path, "Answer"),
    }
