"""Query workloads of the experimental analysis (Table 1)."""

from repro.workloads.queries import (
    QUERIES,
    WorkloadQuery,
    labels_for,
    q4_plan_space,
    rpq_direct_plan,
)

__all__ = [
    "QUERIES",
    "WorkloadQuery",
    "labels_for",
    "q4_plan_space",
    "rpq_direct_plan",
]
