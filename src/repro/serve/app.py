"""The asyncio service: routing, handlers, subscriptions, graceful drain.

Endpoint surface (one request per connection; bodies are JSON):

=========================================  =================================
``POST /tenants/{t}/queries``              register a query → ``201`` + id
``DELETE /tenants/{t}/queries/{q}``        unregister → ``200``
``POST /tenants/{t}/ingest``               push an edge batch → ``200``
``GET /tenants/{t}/queries/{q}/subscribe`` WebSocket or SSE result stream
``GET /metrics``                           service + per-tenant snapshot
``GET /healthz``                           liveness (``ok`` / ``draining``)
=========================================  =================================

Subscriptions upgrade to WebSocket when the request carries the upgrade
headers and fall back to Server-Sent Events otherwise; both streams
carry the same canonical JSON event objects (see
:mod:`repro.serve.protocol`).  ``?policy=block|drop|disconnect`` and
``?queue=N`` tune the subscriber's backpressure; the first event on
every stream is a ``ready`` notice sent *after* the subscriber is
attached, so a client that waits for it observes every later ingest.

Error mapping: malformed bodies, parse and validation failures → 400;
unknown tenant/query/route → 404; admission-control rejections → 429
(with ``Retry-After`` for rate quotas); out-of-order ingest and
closed-engine conflicts → 409; anything unexpected → 500.

:meth:`GraphStreamServer.shutdown` drains gracefully: stop accepting,
flush each tenant's queued engine work, ``engine.close()``, close every
subscriber queue (subscribers receive their full backlog plus an
end-of-stream notice), then wait for the connection handlers to finish.
"""

from __future__ import annotations

import asyncio
import json
import time
import traceback

from repro.engine.session import EngineConfig
from repro.errors import (
    ExecutionError,
    ParseError,
    PlanError,
    QueryValidationError,
    ServeError,
    StreamOrderError,
)
from repro.serve import http
from repro.serve.protocol import (
    ProtocolError,
    dumps,
    parse_ingest,
    parse_register,
)
from repro.serve.subscriptions import BACKPRESSURE_POLICIES, SubscriberQueue
from repro.serve.tenants import (
    AdmissionError,
    NotFoundError,
    ResumeGapError,
    ServerLimits,
    Tenant,
    TenantManager,
)

_BAD_REQUEST = (ProtocolError, ParseError, PlanError, QueryValidationError)


def _json_body(request: http.HttpRequest) -> object:
    try:
        return json.loads(request.body or b"null")
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from None


class GraphStreamServer:
    """The multi-tenant streaming-query service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
        manager: TenantManager | None = None,
    ):
        self.host = host
        self.port = port
        #: a restore passes the rebuilt manager (``TenantManager.restore``)
        self.manager = (
            manager
            if manager is not None
            else TenantManager(limits, engine_config)
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self.started_at: float | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, checkpoint_store=None) -> str | None:
        """Graceful drain; see the module docstring for the ordering.

        With ``checkpoint_store``, every tenant is snapshotted into one
        atomic checkpoint on the way down (see
        :meth:`TenantManager.drain_all`); returns the checkpoint id, so
        a relaunch with ``--restore-from`` resumes every query with
        continuous sequence numbers.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        checkpoint_id = await self.manager.drain_all(checkpoint_store)
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=10)
        return checkpoint_id

    # -- connection handling ---------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                request = await http.read_request(reader)
            except http.HttpError as exc:
                writer.write(self._error(exc.status, str(exc)))
                return
            if request is None:
                return
            await self._dispatch(request, reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        except Exception:
            traceback.print_exc()
            try:
                writer.write(self._error(500, "internal server error"))
            except Exception:
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, request, reader, writer) -> None:
        seg = request.segments
        method = request.method
        try:
            if seg == ("healthz",) and method == "GET":
                status = "draining" if self.manager.draining else "ok"
                writer.write(self._json(200, {"status": status}))
            elif seg == ("metrics",) and method == "GET":
                writer.write(self._json(200, self._metrics()))
            elif (
                len(seg) == 3
                and seg[0] == "tenants"
                and seg[2] == "queries"
                and method == "POST"
            ):
                await self._register(seg[1], request, writer)
            elif (
                len(seg) == 4
                and seg[0] == "tenants"
                and seg[2] == "queries"
                and method == "DELETE"
            ):
                await self._unregister(seg[1], seg[3], writer)
            elif (
                len(seg) == 3
                and seg[0] == "tenants"
                and seg[2] == "ingest"
                and method == "POST"
            ):
                await self._ingest(seg[1], request, writer)
            elif (
                len(seg) == 5
                and seg[0] == "tenants"
                and seg[2] == "queries"
                and seg[4] == "subscribe"
                and method == "GET"
            ):
                await self._subscribe(seg[1], seg[3], request, reader, writer)
            else:
                writer.write(
                    self._error(404, f"no route for {method} {request.path}")
                )
        except _BAD_REQUEST as exc:
            writer.write(self._error(400, str(exc)))
        except NotFoundError as exc:
            writer.write(self._error(404, str(exc)))
        except AdmissionError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:.3f}"
            body = dumps({"error": str(exc)}).encode()
            writer.write(http.response_with_headers(429, body, extra))
        except ServeError as exc:
            # A dead tenant worker or quarantined query: the service is
            # degraded for this target, not misused by the client.
            writer.write(self._error(503, str(exc)))
        except (StreamOrderError, ExecutionError, ResumeGapError) as exc:
            writer.write(self._error(409, str(exc)))
        await writer.drain()

    # -- handlers --------------------------------------------------------
    async def _register(self, tenant_name, request, writer) -> None:
        spec = parse_register(_json_body(request))
        if spec.policy is not None and spec.policy not in BACKPRESSURE_POLICIES:
            raise ProtocolError(
                f"unknown policy {spec.policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        tenant = self.manager.get_or_create(tenant_name)
        qid = await tenant.call(lambda: tenant.register(spec))
        writer.write(self._json(201, {"tenant": tenant_name, "query": qid}))

    async def _unregister(self, tenant_name, qid, writer) -> None:
        tenant = self.manager.get(tenant_name)
        await tenant.call(lambda: tenant.unregister(qid))
        writer.write(self._json(200, {"tenant": tenant_name, "query": qid}))

    async def _ingest(self, tenant_name, request, writer) -> None:
        edges = parse_ingest(_json_body(request))
        tenant = self.manager.get(tenant_name)
        retry_after = tenant.bucket.try_consume(len(edges))
        if retry_after:
            raise AdmissionError(
                f"tenant {tenant_name!r} exceeded its ingest rate quota",
                retry_after=retry_after,
            )
        result = await tenant.call(lambda: tenant.ingest(edges))
        writer.write(self._json(200, result))
        await self.manager.maybe_checkpoint()

    async def _subscribe(self, tenant_name, qid, request, reader, writer):
        tenant = self.manager.get(tenant_name)
        channel = tenant.channel(qid)
        tenant.admit_subscriber()
        policy = (
            request.query.get("policy")
            or channel.policy
            or self.manager.limits.default_policy
        )
        try:
            maxsize = int(
                request.query.get("queue", self.manager.limits.queue_maxsize)
            )
        except ValueError:
            raise ProtocolError("query param 'queue' must be an integer")
        try:
            sub = SubscriberQueue(
                asyncio.get_running_loop(), maxsize=maxsize, policy=policy
            )
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        raw_last = request.query.get("last_seq")
        if raw_last is None:
            raw_last = request.headers.get("last-event-id")
        last_seq = None
        if raw_last is not None:
            try:
                last_seq = int(raw_last)
            except ValueError:
                raise ProtocolError(
                    "resume position ('last_seq' param or Last-Event-ID "
                    "header) must be an integer"
                ) from None
            if last_seq < 0:
                raise ProtocolError("resume position must be >= 0")
        ahead = request.query.get("ahead", "error")
        if ahead not in ("error", "wait"):
            raise ProtocolError(
                f"query param 'ahead' must be 'error' or 'wait', "
                f"got {ahead!r}"
            )
        ready = dumps(
            {"tenant": tenant_name, "query": qid, "policy": policy}
        )
        channel.attach(sub, last_seq, ahead=ahead)
        try:
            if request.wants_websocket():
                await self._stream_websocket(
                    request, reader, writer, sub, ready
                )
            else:
                await self._stream_sse(writer, sub, ready)
        finally:
            channel.detach(sub)
            sub.close()

    async def _stream_websocket(self, request, reader, writer, sub, ready):
        writer.write(http.websocket_handshake(request))
        writer.write(http.ws_frame(ready.encode()))
        await writer.drain()
        closer = asyncio.ensure_future(self._ws_watch_close(reader, writer, sub))
        try:
            while True:
                items = await sub.drain()
                if items is None:
                    break
                writer.write(
                    b"".join(http.ws_frame(m.encode()) for _, m in items)
                )
                await writer.drain()
            reason = sub.close_reason or "end of stream"
            writer.write(http.ws_close_frame(1000, reason))
            await writer.drain()
        finally:
            closer.cancel()

    async def _ws_watch_close(self, reader, writer, sub) -> None:
        """Consume client frames so a close (or EOF) ends the stream."""
        while True:
            frame = await http.ws_read_frame(reader)
            if frame is None or frame[0] == http.WS_CLOSE:
                sub.close()
                return
            if frame[0] == http.WS_PING:
                writer.write(http.ws_frame(frame[1], http.WS_PONG))

    async def _stream_sse(self, writer, sub, ready) -> None:
        writer.write(http.SSE_HEAD)
        writer.write(http.sse_event(ready, event="ready"))
        await writer.drain()
        while True:
            items = await sub.drain()
            if items is None:
                break
            writer.write(
                b"".join(http.sse_event(m, event_id=s) for s, m in items)
            )
            await writer.drain()
        reason = sub.close_reason or "end of stream"
        writer.write(http.sse_event(dumps({"reason": reason}), event="end"))
        await writer.drain()

    # -- metrics ---------------------------------------------------------
    def _metrics(self) -> dict:
        now = time.time()
        tenants = {}
        for name, tenant in self.manager.tenants.items():
            tenants[name] = self._tenant_metrics(tenant, now)
        return {
            "uptime_seconds": (
                now - self.started_at if self.started_at else 0.0
            ),
            "draining": self.manager.draining,
            "tenant_count": len(tenants),
            "tenants": tenants,
            "checkpoints": {
                "count": self.manager.checkpoint_count,
                "failures": self.manager.checkpoint_failures,
                "last_id": self.manager.last_checkpoint_id,
                "last_at": self.manager.last_checkpoint_at,
            },
        }

    @staticmethod
    def _tenant_metrics(tenant: Tenant, now: float) -> dict:
        last = tenant.engine.last_advance_at
        queries = {}
        for qid, channel in tenant.channels.items():
            queries[qid] = {
                "subscribers": channel.subscriber_count,
                "events_delivered": channel.seq,
                "queue_depths": channel.queue_depths(),
                "quarantined": channel.quarantined,
            }
        state = tenant.engine.state_breakdown()
        return {
            "queries": queries,
            "query_count": len(queries),
            "subscriber_count": tenant.subscriber_count,
            "worker_restarts": tenant.worker_restarts,
            "engine_recoveries": tenant.engine.recoveries,
            "ingested_total": tenant.ingest_meter.total,
            "ingest_rate": round(tenant.ingest_meter.rate(), 3),
            "watermark": tenant.engine.watermark,
            "watermark_lag_seconds": (
                round(now - last, 3) if last is not None else None
            ),
            "state": state,
            "state_rows": sum(b["rows"] for b in state.values()),
            "state_bytes": sum(b["bytes"] for b in state.values()),
        }

    # -- response helpers ------------------------------------------------
    @staticmethod
    def _json(status: int, obj: object) -> bytes:
        return http.response(status, dumps(obj).encode())

    @staticmethod
    def _error(status: int, message: str) -> bytes:
        return http.response(status, dumps({"error": message}).encode())
