"""Per-tenant engine sessions, worker threads, fan-out and admission.

Each tenant owns one :class:`~repro.engine.session.StreamingGraphEngine`
built from the tenant's :class:`~repro.engine.session.EngineConfig`, and
one **worker thread** that executes every engine call in submission
order: ingestion stays timestamp-ordered, result callbacks fire off the
event loop, and the asyncio handlers never block on engine work (they
``await`` a future instead).

Admission control is declarative (:class:`ServerLimits`): tenant count,
queries per tenant, subscribers per tenant, and an ingest token bucket
(edges/second with a burst allowance).  Violations raise
:class:`AdmissionError`, which the HTTP layer maps to ``429 Too Many
Requests`` with a ``Retry-After`` hint for rate limits.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import queue
import threading
import time
from dataclasses import dataclass

from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.serve.protocol import RegisterSpec, dumps, encode_event
from repro.serve.subscriptions import BACKPRESSURE_POLICIES, SubscriberQueue


class AdmissionError(Exception):
    """An admission-control rejection (HTTP 429).

    ``retry_after`` carries the token-bucket refill estimate in seconds
    (``None`` for structural limits like query/subscriber counts, where
    retrying without releasing something cannot succeed).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class NotFoundError(Exception):
    """Unknown tenant or query (HTTP 404)."""


@dataclass(frozen=True)
class ServerLimits:
    """Admission-control knobs, applied uniformly per tenant."""

    max_tenants: int = 64
    max_queries_per_tenant: int = 64
    max_subscribers_per_tenant: int = 1024
    #: ingest quota in edges/second (``None`` = unmetered); enforced by
    #: a token bucket with ``ingest_burst`` capacity
    ingest_rate: float | None = None
    ingest_burst: int = 10_000
    #: subscriber queue bound (events) and default backpressure policy
    queue_maxsize: int = 1024
    default_policy: str = "block"

    def __post_init__(self) -> None:
        if self.default_policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown default_policy {self.default_policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )


class TokenBucket:
    """The ingest-rate quota: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float | None, burst: int):
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_consume(self, n: int) -> float:
        """Take ``n`` tokens; returns 0.0 on success, else the seconds
        until the bucket will hold ``n`` (the ``Retry-After`` hint)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
            self._stamp = now
            if n <= self._tokens:
                self._tokens -= n
                return 0.0
            return max((n - self._tokens) / self.rate, 0.001)


class RateMeter:
    """Sliding-window event rate (the ``/metrics`` ingest rate)."""

    def __init__(self, horizon: float = 10.0):
        self.horizon = horizon
        self.total = 0
        self._samples: list[tuple[float, int]] = []
        self._lock = threading.Lock()

    def add(self, n: int) -> None:
        with self._lock:
            self.total += n
            self._samples.append((time.monotonic(), n))

    def rate(self) -> float:
        """Events/second over the trailing horizon."""
        with self._lock:
            cutoff = time.monotonic() - self.horizon
            self._samples = [s for s in self._samples if s[0] >= cutoff]
            return sum(n for _, n in self._samples) / self.horizon


class QueryChannel:
    """One registered query's push fan-out: seq numbering + subscribers.

    ``deliver`` runs on the tenant's engine worker thread, inside
    ``push_many``: it stamps the per-query sequence number, encodes the
    event once, and offers the encoded message to every subscriber's
    queue under its backpressure policy.  Every subscriber therefore
    observes the same numbered stream — the property the load client's
    parity check rests on.
    """

    def __init__(self, name: str, policy: str | None = None):
        self.name = name
        #: per-query default backpressure policy (register-time choice)
        self.policy = policy
        self.seq = 0
        self._subscribers: list[SubscriberQueue] = []
        self._lock = threading.Lock()

    def deliver(self, event) -> None:
        self.seq += 1
        message = dumps(encode_event(self.seq, event))
        with self._lock:
            subscribers = list(self._subscribers)
        stale = [sub for sub in subscribers if not sub.offer(message)]
        if stale:
            with self._lock:
                for sub in stale:
                    if sub in self._subscribers:
                        self._subscribers.remove(sub)

    def attach(self, sub: SubscriberQueue) -> None:
        with self._lock:
            self._subscribers.append(sub)

    def detach(self, sub: SubscriberQueue) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def queue_depths(self) -> list[int]:
        with self._lock:
            return [sub.depth for sub in self._subscribers]

    def close_subscribers(self, reason: str | None) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for sub in subscribers:
            sub.close(reason)


_STOP = object()


class Tenant:
    """One tenant: an engine session plus its single worker thread."""

    def __init__(self, name: str, config: EngineConfig, limits: ServerLimits):
        self.name = name
        self.config = config
        self.limits = limits
        self.engine = StreamingGraphEngine(config)
        self.channels: dict[str, QueryChannel] = {}
        self.bucket = TokenBucket(limits.ingest_rate, limits.ingest_burst)
        self.ingest_meter = RateMeter()
        self._auto = itertools.count()
        self._commands: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self.draining = False
        self._drained = False
        self._thread = threading.Thread(
            target=self._worker, name=f"tenant-{name}", daemon=True
        )
        self._thread.start()

    # -- worker thread ---------------------------------------------------
    def _worker(self) -> None:
        while True:
            fn, future = self._commands.get()
            if fn is _STOP:
                future.set_result(None)
                break
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn())
            except BaseException as exc:
                future.set_exception(exc)

    def submit(self, fn) -> concurrent.futures.Future:
        """Queue one engine call for the worker thread (FIFO order)."""
        if self.draining:
            raise AdmissionError(f"tenant {self.name!r} is draining")
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._commands.put((fn, future))
        return future

    async def call(self, fn):
        """Run ``fn`` on the worker thread, awaiting its result."""
        return await asyncio.wrap_future(self.submit(fn))

    # -- engine-facing operations (run on the worker thread) -------------
    def register(self, spec: RegisterSpec) -> str:
        """Build + register the query; returns the query id.

        Admission (query count, name collisions) is checked under the
        tenant lock *before* the expensive parse/compile.
        """
        with self._lock:
            if len(self.channels) >= self.limits.max_queries_per_tenant:
                raise AdmissionError(
                    f"tenant {self.name!r} is at its query limit "
                    f"({self.limits.max_queries_per_tenant})"
                )
            qid = spec.name or f"q{next(self._auto)}"
            if qid in self.channels:
                raise AdmissionError(f"query {qid!r} already registered")
            channel = QueryChannel(qid, spec.policy)
            self.channels[qid] = channel
        try:
            query = spec.build_query()
            self.engine.register(query, name=qid, on_result=channel.deliver)
        except BaseException:
            with self._lock:
                self.channels.pop(qid, None)
            raise
        return qid

    def unregister(self, qid: str) -> None:
        with self._lock:
            channel = self.channels.pop(qid, None)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        self.engine.unregister(qid)
        channel.close_subscribers("query unregistered")

    def ingest(self, edges: list) -> dict:
        stats = self.engine.push_many(edges)
        self.ingest_meter.add(len(edges))
        return {
            "ingested": len(edges),
            "watermark": self.engine.watermark,
            "elapsed": stats.total_seconds,
        }

    def channel(self, qid: str) -> QueryChannel:
        channel = self.channels.get(qid)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        return channel

    @property
    def subscriber_count(self) -> int:
        return sum(c.subscriber_count for c in self.channels.values())

    def admit_subscriber(self) -> None:
        if self.subscriber_count >= self.limits.max_subscribers_per_tenant:
            raise AdmissionError(
                f"tenant {self.name!r} is at its subscriber limit "
                f"({self.limits.max_subscribers_per_tenant})"
            )

    # -- drain -----------------------------------------------------------
    async def drain(self) -> None:
        """Graceful shutdown: finish queued work, close, flush, stop.

        Ordering matters for the no-lost-results guarantee: the stop
        sentinel *follows* every already-queued ingest command, so all
        in-flight results reach the subscriber queues before the queues
        are closed — subscribers then read their remaining backlog and
        see a clean end-of-stream.

        Idempotent: a second drain (e.g. an explicit ``drain_all``
        followed by the server's own shutdown) is a no-op — the stop
        sentinel must not be re-queued once the worker has exited.
        """
        self.draining = True
        if self._drained:
            return
        self._drained = True
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._commands.put((_STOP, future))
        await asyncio.wrap_future(future)
        self.engine.close()
        for channel in self.channels.values():
            channel.close_subscribers("server draining")
        self._thread.join(timeout=10)


class TenantManager:
    """The tenant registry: lazy creation under admission control."""

    def __init__(
        self,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
    ):
        self.limits = limits or ServerLimits()
        self.engine_config = engine_config or EngineConfig()
        self.tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self.draining = False

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise NotFoundError(f"unknown tenant {name!r}")
        return tenant

    def get_or_create(self, name: str) -> Tenant:
        with self._lock:
            if self.draining:
                raise AdmissionError("server is draining")
            tenant = self.tenants.get(name)
            if tenant is None:
                if len(self.tenants) >= self.limits.max_tenants:
                    raise AdmissionError(
                        f"tenant limit reached ({self.limits.max_tenants})"
                    )
                tenant = Tenant(name, self.engine_config, self.limits)
                self.tenants[name] = tenant
            return tenant

    async def drain_all(self) -> None:
        self.draining = True
        for tenant in list(self.tenants.values()):
            await tenant.drain()
