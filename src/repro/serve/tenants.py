"""Per-tenant engine sessions, worker threads, fan-out and admission.

Each tenant owns one :class:`~repro.engine.session.StreamingGraphEngine`
built from the tenant's :class:`~repro.engine.session.EngineConfig`, and
one **worker thread** that executes every engine call in submission
order: ingestion stays timestamp-ordered, result callbacks fire off the
event loop, and the asyncio handlers never block on engine work (they
``await`` a future instead).

Admission control is declarative (:class:`ServerLimits`): tenant count,
queries per tenant, subscribers per tenant, and an ingest token bucket
(edges/second with a burst allowance).  Violations raise
:class:`AdmissionError`, which the HTTP layer maps to ``429 Too Many
Requests`` with a ``Retry-After`` hint for rate limits.

Fault tolerance: the tenant worker thread is supervised — a crash of
the command loop restarts it in place (bounded by
``ServerLimits.max_worker_restarts``), failing only the in-flight
future with a typed :class:`~repro.errors.ServeError`; once the budget
is spent the tenant is marked dead and every submit fails fast.  A
query callback that raises is *quarantined*: its channel stops
delivering, its subscribers are closed with a typed notice, and the
rest of the tenant keeps streaming.  :class:`TenantManager` can also
take periodic durable checkpoints on a
:class:`~repro.fault.policy.CheckpointPolicy` cadence, which is what
a crashed server restarts from.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import CheckpointError, ServeError
from repro.fault.plan import FaultPlan, InjectedFault
from repro.serve.protocol import RegisterSpec, dumps, encode_event
from repro.serve.subscriptions import BACKPRESSURE_POLICIES, SubscriberQueue


class AdmissionError(Exception):
    """An admission-control rejection (HTTP 429).

    ``retry_after`` carries the token-bucket refill estimate in seconds
    (``None`` for structural limits like query/subscriber counts, where
    retrying without releasing something cannot succeed).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class NotFoundError(Exception):
    """Unknown tenant or query (HTTP 404)."""


class ResumeGapError(Exception):
    """A resume request for a sequence number that has already left the
    replay ring (HTTP 409): the gap cannot be filled, the client must
    re-subscribe from live and reconcile on its own."""


@dataclass(frozen=True)
class ServerLimits:
    """Admission-control knobs, applied uniformly per tenant."""

    max_tenants: int = 64
    max_queries_per_tenant: int = 64
    max_subscribers_per_tenant: int = 1024
    #: ingest quota in edges/second (``None`` = unmetered); enforced by
    #: a token bucket with ``ingest_burst`` capacity
    ingest_rate: float | None = None
    ingest_burst: int = 10_000
    #: subscriber queue bound (events) and default backpressure policy
    queue_maxsize: int = 1024
    default_policy: str = "block"
    #: per-query replay ring size (events kept for resumable
    #: subscriptions; 0 disables resume entirely)
    replay_buffer: int = 1024
    #: how many times a crashed tenant worker thread is restarted in
    #: place before the tenant is declared dead
    max_worker_restarts: int = 3

    def __post_init__(self) -> None:
        if self.default_policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown default_policy {self.default_policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if self.replay_buffer < 0:
            raise ValueError(
                f"replay_buffer must be >= 0, got {self.replay_buffer}"
            )
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, "
                f"got {self.max_worker_restarts}"
            )


class TokenBucket:
    """The ingest-rate quota: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float | None, burst: int):
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_consume(self, n: int) -> float:
        """Take ``n`` tokens; returns 0.0 on success, else the seconds
        until the bucket will hold ``n`` (the ``Retry-After`` hint)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
            self._stamp = now
            if n <= self._tokens:
                self._tokens -= n
                return 0.0
            return max((n - self._tokens) / self.rate, 0.001)


class RateMeter:
    """Sliding-window event rate (the ``/metrics`` ingest rate)."""

    def __init__(self, horizon: float = 10.0):
        self.horizon = horizon
        self.total = 0
        self._samples: list[tuple[float, int]] = []
        self._lock = threading.Lock()

    def add(self, n: int) -> None:
        with self._lock:
            self.total += n
            self._samples.append((time.monotonic(), n))

    def rate(self) -> float:
        """Events/second over the trailing horizon."""
        with self._lock:
            cutoff = time.monotonic() - self.horizon
            self._samples = [s for s in self._samples if s[0] >= cutoff]
            return sum(n for _, n in self._samples) / self.horizon


class QueryChannel:
    """One registered query's push fan-out: seq numbering + subscribers.

    ``deliver`` runs on the tenant's engine worker thread, inside
    ``push_many``: it stamps the per-query sequence number, encodes the
    event once, and offers ``(seq, message)`` to every subscriber's
    queue under its backpressure policy.  Every subscriber therefore
    observes the same numbered stream — the property the load client's
    parity check rests on.

    The channel also keeps the last ``replay`` stamped messages in a
    ring.  A reconnecting subscriber presents its last-seen seq and is
    attached *atomically* with the replay of everything newer — the
    stamping section of ``deliver`` and the replay+attach section of
    ``attach`` serialize on the channel lock, so the resumed stream has
    neither gaps nor duplicates.  A seq that already left the ring
    raises :class:`ResumeGapError`.
    """

    def __init__(self, name: str, policy: str | None = None, replay: int = 1024):
        self.name = name
        #: per-query default backpressure policy (register-time choice)
        self.policy = policy
        self.seq = 0
        #: set when this query's callback raised: delivery stops, new
        #: subscribers are rejected, the rest of the tenant keeps going
        self.quarantined = False
        self.quarantine_reason: str | None = None
        self._ring: deque[tuple[int, str]] = deque(maxlen=max(replay, 0))
        self._subscribers: list[SubscriberQueue] = []
        #: ahead-resume dedupe: subscriber -> highest seq it has already
        #: seen; events at or below it are skipped (not re-delivered)
        self._skip: dict[SubscriberQueue, int] = {}
        self._lock = threading.Lock()

    def deliver(self, event) -> None:
        with self._lock:
            self.seq += 1
            seq = self.seq
            message = dumps(encode_event(seq, event))
            if self._ring.maxlen:
                self._ring.append((seq, message))
            subscribers = []
            for sub in self._subscribers:
                threshold = self._skip.get(sub)
                if threshold is not None:
                    if seq <= threshold:
                        # The client saw this event before the restart
                        # (an ahead resume): dedupe, don't re-deliver.
                        continue
                    del self._skip[sub]
                subscribers.append(sub)
        stale = [sub for sub in subscribers if not sub.offer((seq, message))]
        if stale:
            with self._lock:
                for sub in stale:
                    if sub in self._subscribers:
                        self._subscribers.remove(sub)
                    self._skip.pop(sub, None)

    def attach(
        self,
        sub: SubscriberQueue,
        last_seq: int | None = None,
        ahead: str = "error",
    ) -> None:
        """Attach a subscriber; with ``last_seq``, replay first.

        ``last_seq`` is the highest seq the client has already seen;
        every retained event past it is preloaded into the subscriber's
        queue before attachment, under the same lock ``deliver`` stamps
        under, so concurrent deliveries land exactly once — replayed or
        live, never both, never neither.

        ``ahead`` governs a ``last_seq`` beyond the stream head — the
        signature of a server restored from a checkpoint older than the
        client's position.  ``"error"`` raises :class:`ResumeGapError`;
        ``"wait"`` attaches with a dedupe threshold instead, so the
        replayed events the client already consumed are skipped and the
        stream resumes exactly at ``last_seq + 1`` with no duplicates.
        """
        with self._lock:
            if self.quarantined:
                raise ServeError(
                    f"query {self.name!r} is quarantined: "
                    f"{self.quarantine_reason}"
                )
            if last_seq is not None and last_seq > self.seq:
                if ahead != "wait":
                    raise ResumeGapError(
                        f"cannot resume query {self.name!r} from seq "
                        f"{last_seq}: the stream is at seq {self.seq} (was "
                        "the server restored from an older checkpoint?)"
                    )
                self._skip[sub] = last_seq
            elif last_seq is not None and last_seq < self.seq:
                oldest = self._ring[0][0] if self._ring else self.seq + 1
                if last_seq + 1 < oldest:
                    raise ResumeGapError(
                        f"cannot resume query {self.name!r} from seq "
                        f"{last_seq}: events up to seq {oldest - 1} have "
                        "left the replay buffer"
                    )
                sub.preload([item for item in self._ring if item[0] > last_seq])
            self._subscribers.append(sub)

    def detach(self, sub: SubscriberQueue) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)
            self._skip.pop(sub, None)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def queue_depths(self) -> list[int]:
        with self._lock:
            return [sub.depth for sub in self._subscribers]

    def close_subscribers(self, reason: str | None) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for sub in subscribers:
            sub.close(reason)

    # -- durability -----------------------------------------------------
    def snapshot_state(self) -> dict:
        """Seq counter + replay ring, for the serve-layer checkpoint."""
        with self._lock:
            return {
                "seq": self.seq,
                "policy": self.policy,
                "ring": list(self._ring),
                "quarantined": self.quarantined,
                "quarantine_reason": self.quarantine_reason,
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.seq = state["seq"]
            self.quarantined = bool(state.get("quarantined", False))
            self.quarantine_reason = state.get("quarantine_reason")
            for seq, message in state.get("ring", ()):
                self._ring.append((int(seq), message))


_STOP = object()


class Tenant:
    """One tenant: an engine session plus its single worker thread.

    The worker thread is **supervised**: if the command loop itself
    crashes (drilled via the ``tenant.loop`` fault site), the in-flight
    future fails with a typed :class:`~repro.errors.ServeError` and the
    loop restarts in place, preserving FIFO order for everything still
    queued.  ``ServerLimits.max_worker_restarts`` bounds the budget;
    once spent, the tenant is dead: pending and future submissions fail
    fast instead of hanging.
    """

    def __init__(
        self,
        name: str,
        config: EngineConfig,
        limits: ServerLimits,
        engine: StreamingGraphEngine | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.name = name
        self.config = config
        self.limits = limits
        #: a restore passes the already-rebuilt engine; the normal path
        #: starts an empty one
        self.engine = engine if engine is not None else StreamingGraphEngine(config)
        self.fault_plan = fault_plan
        if fault_plan is not None:
            self.engine.inject_faults(fault_plan)
        self.channels: dict[str, QueryChannel] = {}
        self.bucket = TokenBucket(limits.ingest_rate, limits.ingest_burst)
        self.ingest_meter = RateMeter()
        self._auto = 0
        self._commands: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self.draining = False
        self._drained = False
        self.worker_restarts = 0
        self._worker_dead = False
        self._current: concurrent.futures.Future | None = None
        self._thread = threading.Thread(
            target=self._worker, name=f"tenant-{name}", daemon=True
        )
        self._thread.start()

    # -- worker thread ---------------------------------------------------
    def _worker(self) -> None:
        """Supervisor: run the command loop, restart it if it crashes."""
        while True:
            try:
                self._worker_loop()
                return  # clean stop via the _STOP sentinel
            except BaseException as exc:
                error = ServeError(
                    f"tenant {self.name!r} worker crashed: {exc!r}"
                )
                current, self._current = self._current, None
                if current is not None and not current.done():
                    current.set_exception(error)
                self.worker_restarts += 1
                if self.worker_restarts > self.limits.max_worker_restarts:
                    self._worker_dead = True
                    self._fail_pending(
                        ServeError(
                            f"tenant {self.name!r} worker is dead after "
                            f"{self.worker_restarts - 1} restart(s); "
                            f"last crash: {exc!r}"
                        )
                    )
                    print(
                        f"serve: tenant {self.name!r} worker exhausted its "
                        f"restart budget "
                        f"({self.limits.max_worker_restarts}): {exc!r}"
                    )
                    return
                print(
                    f"serve: tenant {self.name!r} worker restarted in place "
                    f"({self.worker_restarts}/"
                    f"{self.limits.max_worker_restarts}): {exc!r}"
                )
                time.sleep(min(0.05 * 2 ** (self.worker_restarts - 1), 1.0))

    def _worker_loop(self) -> None:
        while True:
            fn, future = self._commands.get()
            if fn is _STOP:
                future.set_result(None)
                return
            if not future.set_running_or_notify_cancel():
                continue
            self._current = future
            plan = self.fault_plan
            if (
                plan is not None
                and plan.fire("tenant.loop", tenant=self.name) is not None
            ):
                raise InjectedFault(
                    f"injected tenant.loop fault (tenant {self.name!r})"
                )
            try:
                future.set_result(fn())
            except BaseException as exc:
                future.set_exception(exc)
            finally:
                self._current = None

    def _fail_pending(self, error: ServeError) -> None:
        """Drain the command queue, failing every waiter fast (a dead
        worker must never leave a future hanging)."""
        while True:
            try:
                fn, future = self._commands.get_nowait()
            except queue.Empty:
                return
            if future.done():
                continue
            if fn is _STOP:
                future.set_result(None)
            else:
                future.set_exception(error)

    def submit(self, fn) -> concurrent.futures.Future:
        """Queue one engine call for the worker thread (FIFO order).

        Liveness-guarded: a dead worker (restart budget spent) raises
        :class:`~repro.errors.ServeError` immediately instead of
        queueing work no thread will ever run.
        """
        if self.draining:
            raise AdmissionError(f"tenant {self.name!r} is draining")
        if self._worker_dead or not self._thread.is_alive():
            raise ServeError(
                f"tenant {self.name!r} worker is dead "
                "(restart budget exhausted)"
            )
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._commands.put((fn, future))
        if self._worker_dead:
            # The worker died between the check and the put; make sure
            # this future fails instead of waiting forever.
            self._fail_pending(
                ServeError(f"tenant {self.name!r} worker is dead")
            )
        return future

    async def call(self, fn):
        """Run ``fn`` on the worker thread, awaiting its result."""
        return await asyncio.wrap_future(self.submit(fn))

    # -- engine-facing operations (run on the worker thread) -------------
    def register(self, spec: RegisterSpec) -> str:
        """Build + register the query; returns the query id.

        Admission (query count, name collisions) is checked under the
        tenant lock *before* the expensive parse/compile.
        """
        with self._lock:
            if len(self.channels) >= self.limits.max_queries_per_tenant:
                raise AdmissionError(
                    f"tenant {self.name!r} is at its query limit "
                    f"({self.limits.max_queries_per_tenant})"
                )
            qid = spec.name
            if qid is None:
                qid = f"q{self._auto}"
                self._auto += 1
            if qid in self.channels:
                raise AdmissionError(f"query {qid!r} already registered")
            channel = QueryChannel(
                qid, spec.policy, replay=self.limits.replay_buffer
            )
            self.channels[qid] = channel
        try:
            query = spec.build_query()
            self.engine.register(
                query, name=qid, on_result=self._guarded_deliver(qid, channel)
            )
        except BaseException:
            with self._lock:
                self.channels.pop(qid, None)
            raise
        return qid

    def _guarded_deliver(self, qid: str, channel: QueryChannel):
        """Wrap ``channel.deliver`` so a raising callback quarantines
        the one query instead of killing the whole tenant session."""

        def deliver(event) -> None:
            if channel.quarantined:
                return
            try:
                plan = self.fault_plan
                if (
                    plan is not None
                    and plan.fire("callback", tenant=self.name, query=qid)
                    is not None
                ):
                    raise InjectedFault(
                        f"injected callback fault (tenant {self.name!r}, "
                        f"query {qid!r})"
                    )
                channel.deliver(event)
            except BaseException as exc:
                self._quarantine(qid, channel, exc)

        return deliver

    def _quarantine(
        self, qid: str, channel: QueryChannel, exc: BaseException
    ) -> None:
        reason = f"query callback failed: {exc!r}"
        channel.quarantined = True
        channel.quarantine_reason = reason
        channel.close_subscribers(f"query {qid!r} quarantined: {reason}")
        print(f"serve: tenant {self.name!r} quarantined query {qid!r}: {exc!r}")

    def unregister(self, qid: str) -> None:
        with self._lock:
            channel = self.channels.pop(qid, None)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        self.engine.unregister(qid)
        channel.close_subscribers("query unregistered")

    def ingest(self, edges: list) -> dict:
        plan = self.fault_plan
        if (
            plan is not None
            and plan.fire("serve.ingest", tenant=self.name) is not None
        ):
            raise InjectedFault(
                f"injected ingest fault (tenant {self.name!r})"
            )
        stats = self.engine.push_many(edges)
        self.ingest_meter.add(len(edges))
        return {
            "ingested": len(edges),
            "watermark": self.engine.watermark,
            "elapsed": stats.total_seconds,
        }

    def channel(self, qid: str) -> QueryChannel:
        channel = self.channels.get(qid)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        return channel

    @property
    def subscriber_count(self) -> int:
        return sum(c.subscriber_count for c in self.channels.values())

    def admit_subscriber(self) -> None:
        if self.subscriber_count >= self.limits.max_subscribers_per_tenant:
            raise AdmissionError(
                f"tenant {self.name!r} is at its subscriber limit "
                f"({self.limits.max_subscribers_per_tenant})"
            )

    # -- drain / durability ----------------------------------------------
    async def drain(self, checkpoint_writer=None) -> None:
        """Graceful shutdown: finish queued work, close, flush, stop.

        Ordering matters for the no-lost-results guarantee: the stop
        sentinel *follows* every already-queued ingest command, so all
        in-flight results reach the subscriber queues before the queues
        are closed — subscribers then read their remaining backlog and
        see a clean end-of-stream.

        With ``checkpoint_writer``, the tenant is snapshotted after the
        worker has stopped (so the engine is quiescent) and before
        ``engine.close()`` (process-transport shards must still be
        alive to report their state).

        Idempotent: a second drain (e.g. an explicit ``drain_all``
        followed by the server's own shutdown) is a no-op — the stop
        sentinel must not be re-queued once the worker has exited.
        """
        self.draining = True
        if self._drained:
            return
        self._drained = True
        if not self._worker_dead:
            future: concurrent.futures.Future = concurrent.futures.Future()
            self._commands.put((_STOP, future))
            # A worker that dies with the sentinel queued resolves it
            # from _fail_pending, so this await cannot hang.
            await asyncio.wrap_future(future)
        if checkpoint_writer is not None:
            self.checkpoint_into(checkpoint_writer)
        self.engine.close()
        for channel in self.channels.values():
            channel.close_subscribers("server draining")
        self._thread.join(timeout=10)

    def checkpoint_into(self, writer) -> None:
        """Write this tenant's blobs (engine + serve state) under
        ``tenants/<name>/``.  The engine must be quiescent (worker
        stopped or idle)."""
        prefix = f"tenants/{self.name}/"
        self.engine.write_checkpoint(writer, prefix=prefix)
        writer.put(
            prefix + "serve",
            {
                "auto": self._auto,
                "ingested_total": self.ingest_meter.total,
                "queries": {
                    qid: channel.snapshot_state()
                    for qid, channel in self.channels.items()
                },
            },
        )

    @classmethod
    def restored(
        cls,
        name: str,
        reader,
        limits: ServerLimits,
        engine_config: EngineConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "Tenant":
        """Rebuild one tenant from a server checkpoint.

        The engine is restored first (bit-identical state), then each
        query's channel is re-created with its checkpointed seq counter
        and replay ring and re-wired as the query's result callback —
        so the resumed stream numbers continue exactly where the
        snapshot left them.
        """
        prefix = f"tenants/{name}/"
        engine = StreamingGraphEngine.restore_from_reader(
            reader, prefix=prefix, config=engine_config
        )
        try:
            serve_state = reader.get(prefix + "serve")
            tenant = cls(
                name, engine.config, limits, engine=engine,
                fault_plan=fault_plan,
            )
        except BaseException:
            engine.close()
            raise
        try:
            tenant._auto = int(serve_state.get("auto", 0))
            tenant.ingest_meter.total = int(
                serve_state.get("ingested_total", 0)
            )
            if set(serve_state["queries"]) != set(engine.query_names):
                raise CheckpointError(
                    f"checkpoint {reader.checkpoint_id}: blob "
                    f"'{prefix}serve' lists queries "
                    f"{sorted(serve_state['queries'])} but the restored "
                    f"engine holds {sorted(engine.query_names)}"
                )
            for qid, qstate in serve_state["queries"].items():
                channel = QueryChannel(
                    qid, qstate.get("policy"), replay=limits.replay_buffer
                )
                channel.restore_state(qstate)
                tenant.channels[qid] = channel
                engine.set_result_callback(
                    qid, tenant._guarded_deliver(qid, channel)
                )
        except BaseException:
            tenant.draining = True
            engine.close()
            raise
        return tenant


class TenantManager:
    """The tenant registry: lazy creation under admission control.

    With a ``checkpoint_store`` + ``checkpoint_policy``, the manager
    also takes **periodic** durable checkpoints: the server calls
    :meth:`maybe_checkpoint` after each ingest acknowledgement, and
    when the policy's slide or wall-clock cadence has elapsed every
    tenant is snapshotted into one atomic checkpoint — the state a
    SIGKILLed server restarts from with ``--restore-from``.  A
    ``fault_plan`` threads deterministic faults into every tenant (and
    their engines) plus the store's commit path.
    """

    def __init__(
        self,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
        checkpoint_store=None,
        checkpoint_policy=None,
        fault_plan: FaultPlan | None = None,
    ):
        self.limits = limits or ServerLimits()
        self.engine_config = engine_config or EngineConfig()
        self.checkpoint_store = checkpoint_store
        self.checkpoint_policy = checkpoint_policy
        self.fault_plan = fault_plan
        self.tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self.draining = False
        self.checkpoint_count = 0
        self.checkpoint_failures = 0
        self.last_checkpoint_id: str | None = None
        self.last_checkpoint_at: float | None = None
        self._ckpt_lock = asyncio.Lock()
        #: per-tenant watermark at the last checkpoint (or its first
        #: observation) — the slide-cadence baseline
        self._ckpt_marks: dict[str, int] = {}
        self._ckpt_time = time.monotonic()

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise NotFoundError(f"unknown tenant {name!r}")
        return tenant

    def get_or_create(self, name: str) -> Tenant:
        with self._lock:
            if self.draining:
                raise AdmissionError("server is draining")
            tenant = self.tenants.get(name)
            if tenant is None:
                if len(self.tenants) >= self.limits.max_tenants:
                    raise AdmissionError(
                        f"tenant limit reached ({self.limits.max_tenants})"
                    )
                tenant = Tenant(
                    name, self.engine_config, self.limits,
                    fault_plan=self.fault_plan,
                )
                self.tenants[name] = tenant
            return tenant

    # -- periodic checkpointing ------------------------------------------
    async def maybe_checkpoint(self) -> str | None:
        """Take a periodic checkpoint if the policy cadence has elapsed.

        Called by the server after each ingest acknowledgement; cheap
        when nothing is due.  Non-reentrant: a checkpoint already in
        flight (another ingest racing this one) makes this a no-op
        rather than stacking writers.  Failures are counted and logged,
        never raised — a broken store must not fail ingest.
        """
        if (
            self.checkpoint_store is None
            or self.checkpoint_policy is None
            or self.draining
        ):
            return None
        if self._ckpt_lock.locked():
            return None
        async with self._ckpt_lock:
            if not self._checkpoint_due():
                return None
            return await self._checkpoint_now()

    def _checkpoint_due(self) -> bool:
        slides = 0
        for name, tenant in list(self.tenants.items()):
            watermark = tenant.engine.watermark
            if watermark is None:
                continue
            base = self._ckpt_marks.get(name)
            if base is None:
                # First watermark observation becomes the baseline; the
                # cadence counts slides from here.
                self._ckpt_marks[name] = watermark
                continue
            slides = max(slides, (watermark - base) // tenant.engine.slide)
        return self.checkpoint_policy.due(
            slides_since=slides,
            seconds_since=time.monotonic() - self._ckpt_time,
        )

    async def _checkpoint_now(self) -> str | None:
        writer = self.checkpoint_store.begin()
        try:
            for tenant in list(self.tenants.values()):
                # Runs on the tenant's worker thread, so the engine is
                # between commands (quiescent) while it is snapshotted.
                await tenant.call(
                    lambda t=tenant: t.checkpoint_into(writer)
                )
            writer.set_meta(
                kind="server", tenants=sorted(self.tenants), trigger="policy"
            )
            checkpoint_id = writer.commit()
        except Exception as exc:
            writer.abort()
            self.checkpoint_failures += 1
            print(f"serve: periodic checkpoint failed: {exc}")
            return None
        self.checkpoint_count += 1
        self.last_checkpoint_id = checkpoint_id
        self.last_checkpoint_at = time.time()
        self._ckpt_time = time.monotonic()
        for name, tenant in list(self.tenants.items()):
            watermark = tenant.engine.watermark
            if watermark is not None:
                self._ckpt_marks[name] = watermark
        print(f"serve: periodic checkpoint {checkpoint_id}")
        return checkpoint_id

    async def drain_all(self, checkpoint_store=None) -> str | None:
        """Drain every tenant; optionally checkpoint them on the way out.

        With a ``checkpoint_store``, all tenants land in **one** atomic
        checkpoint (blobs under ``tenants/<name>/``), committed only
        after every tenant has quiesced and been written — a crash
        mid-drain leaves the previous checkpoint intact.  Returns the
        committed checkpoint id (``None`` when not checkpointing).
        """
        self.draining = True
        writer = None
        if checkpoint_store is not None:
            writer = checkpoint_store.begin()
        try:
            for tenant in list(self.tenants.values()):
                await tenant.drain(writer)
            if writer is not None:
                writer.set_meta(kind="server", tenants=sorted(self.tenants))
                return writer.commit()
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        return None

    @classmethod
    def restore(
        cls,
        store,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
        checkpoint_id: str | None = None,
        checkpoint_store=None,
        checkpoint_policy=None,
        fault_plan: FaultPlan | None = None,
    ) -> "TenantManager":
        """Rebuild every tenant from a server checkpoint in ``store``.

        ``engine_config`` (e.g. built from the relaunch's CLI flags) is
        applied to every restored engine and may differ from the stored
        configuration only in ``shards`` / ``shard_transport`` — the
        same rebalancing contract as
        :meth:`StreamingGraphEngine.restore`.  ``None`` restores each
        tenant under its stored configuration.

        ``checkpoint_store`` / ``checkpoint_policy`` re-arm periodic
        checkpointing on the restored manager (typically the same store
        the restore came from), so a relaunched server keeps taking
        checkpoints.
        """
        reader = store.open(checkpoint_id)
        kind = reader.meta.get("kind")
        if kind != "server":
            raise CheckpointError(
                f"checkpoint {reader.checkpoint_id} is not a server "
                f"checkpoint (manifest kind is {kind!r}, expected "
                "'server')"
            )
        manager = cls(
            limits,
            engine_config,
            checkpoint_store=checkpoint_store,
            checkpoint_policy=checkpoint_policy,
            fault_plan=fault_plan,
        )
        try:
            for name in reader.meta.get("tenants", []):
                manager.tenants[name] = Tenant.restored(
                    name, reader, manager.limits, engine_config,
                    fault_plan=fault_plan,
                )
        except BaseException:
            for tenant in manager.tenants.values():
                tenant.draining = True
                tenant.engine.close()
            raise
        return manager
