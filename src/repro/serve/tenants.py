"""Per-tenant engine sessions, worker threads, fan-out and admission.

Each tenant owns one :class:`~repro.engine.session.StreamingGraphEngine`
built from the tenant's :class:`~repro.engine.session.EngineConfig`, and
one **worker thread** that executes every engine call in submission
order: ingestion stays timestamp-ordered, result callbacks fire off the
event loop, and the asyncio handlers never block on engine work (they
``await`` a future instead).

Admission control is declarative (:class:`ServerLimits`): tenant count,
queries per tenant, subscribers per tenant, and an ingest token bucket
(edges/second with a burst allowance).  Violations raise
:class:`AdmissionError`, which the HTTP layer maps to ``429 Too Many
Requests`` with a ``Retry-After`` hint for rate limits.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import CheckpointError
from repro.serve.protocol import RegisterSpec, dumps, encode_event
from repro.serve.subscriptions import BACKPRESSURE_POLICIES, SubscriberQueue


class AdmissionError(Exception):
    """An admission-control rejection (HTTP 429).

    ``retry_after`` carries the token-bucket refill estimate in seconds
    (``None`` for structural limits like query/subscriber counts, where
    retrying without releasing something cannot succeed).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class NotFoundError(Exception):
    """Unknown tenant or query (HTTP 404)."""


class ResumeGapError(Exception):
    """A resume request for a sequence number that has already left the
    replay ring (HTTP 409): the gap cannot be filled, the client must
    re-subscribe from live and reconcile on its own."""


@dataclass(frozen=True)
class ServerLimits:
    """Admission-control knobs, applied uniformly per tenant."""

    max_tenants: int = 64
    max_queries_per_tenant: int = 64
    max_subscribers_per_tenant: int = 1024
    #: ingest quota in edges/second (``None`` = unmetered); enforced by
    #: a token bucket with ``ingest_burst`` capacity
    ingest_rate: float | None = None
    ingest_burst: int = 10_000
    #: subscriber queue bound (events) and default backpressure policy
    queue_maxsize: int = 1024
    default_policy: str = "block"
    #: per-query replay ring size (events kept for resumable
    #: subscriptions; 0 disables resume entirely)
    replay_buffer: int = 1024

    def __post_init__(self) -> None:
        if self.default_policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown default_policy {self.default_policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if self.replay_buffer < 0:
            raise ValueError(
                f"replay_buffer must be >= 0, got {self.replay_buffer}"
            )


class TokenBucket:
    """The ingest-rate quota: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float | None, burst: int):
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_consume(self, n: int) -> float:
        """Take ``n`` tokens; returns 0.0 on success, else the seconds
        until the bucket will hold ``n`` (the ``Retry-After`` hint)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
            self._stamp = now
            if n <= self._tokens:
                self._tokens -= n
                return 0.0
            return max((n - self._tokens) / self.rate, 0.001)


class RateMeter:
    """Sliding-window event rate (the ``/metrics`` ingest rate)."""

    def __init__(self, horizon: float = 10.0):
        self.horizon = horizon
        self.total = 0
        self._samples: list[tuple[float, int]] = []
        self._lock = threading.Lock()

    def add(self, n: int) -> None:
        with self._lock:
            self.total += n
            self._samples.append((time.monotonic(), n))

    def rate(self) -> float:
        """Events/second over the trailing horizon."""
        with self._lock:
            cutoff = time.monotonic() - self.horizon
            self._samples = [s for s in self._samples if s[0] >= cutoff]
            return sum(n for _, n in self._samples) / self.horizon


class QueryChannel:
    """One registered query's push fan-out: seq numbering + subscribers.

    ``deliver`` runs on the tenant's engine worker thread, inside
    ``push_many``: it stamps the per-query sequence number, encodes the
    event once, and offers ``(seq, message)`` to every subscriber's
    queue under its backpressure policy.  Every subscriber therefore
    observes the same numbered stream — the property the load client's
    parity check rests on.

    The channel also keeps the last ``replay`` stamped messages in a
    ring.  A reconnecting subscriber presents its last-seen seq and is
    attached *atomically* with the replay of everything newer — the
    stamping section of ``deliver`` and the replay+attach section of
    ``attach`` serialize on the channel lock, so the resumed stream has
    neither gaps nor duplicates.  A seq that already left the ring
    raises :class:`ResumeGapError`.
    """

    def __init__(self, name: str, policy: str | None = None, replay: int = 1024):
        self.name = name
        #: per-query default backpressure policy (register-time choice)
        self.policy = policy
        self.seq = 0
        self._ring: deque[tuple[int, str]] = deque(maxlen=max(replay, 0))
        self._subscribers: list[SubscriberQueue] = []
        self._lock = threading.Lock()

    def deliver(self, event) -> None:
        with self._lock:
            self.seq += 1
            seq = self.seq
            message = dumps(encode_event(seq, event))
            if self._ring.maxlen:
                self._ring.append((seq, message))
            subscribers = list(self._subscribers)
        stale = [sub for sub in subscribers if not sub.offer((seq, message))]
        if stale:
            with self._lock:
                for sub in stale:
                    if sub in self._subscribers:
                        self._subscribers.remove(sub)

    def attach(
        self, sub: SubscriberQueue, last_seq: int | None = None
    ) -> None:
        """Attach a subscriber; with ``last_seq``, replay first.

        ``last_seq`` is the highest seq the client has already seen;
        every retained event past it is preloaded into the subscriber's
        queue before attachment, under the same lock ``deliver`` stamps
        under, so concurrent deliveries land exactly once — replayed or
        live, never both, never neither.
        """
        with self._lock:
            if last_seq is not None and last_seq > self.seq:
                raise ResumeGapError(
                    f"cannot resume query {self.name!r} from seq "
                    f"{last_seq}: the stream is at seq {self.seq} (was "
                    "the server restored from an older checkpoint?)"
                )
            if last_seq is not None and last_seq < self.seq:
                oldest = self._ring[0][0] if self._ring else self.seq + 1
                if last_seq + 1 < oldest:
                    raise ResumeGapError(
                        f"cannot resume query {self.name!r} from seq "
                        f"{last_seq}: events up to seq {oldest - 1} have "
                        "left the replay buffer"
                    )
                sub.preload([item for item in self._ring if item[0] > last_seq])
            self._subscribers.append(sub)

    def detach(self, sub: SubscriberQueue) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def queue_depths(self) -> list[int]:
        with self._lock:
            return [sub.depth for sub in self._subscribers]

    def close_subscribers(self, reason: str | None) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for sub in subscribers:
            sub.close(reason)

    # -- durability -----------------------------------------------------
    def snapshot_state(self) -> dict:
        """Seq counter + replay ring, for the serve-layer checkpoint."""
        with self._lock:
            return {
                "seq": self.seq,
                "policy": self.policy,
                "ring": list(self._ring),
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.seq = state["seq"]
            for seq, message in state.get("ring", ()):
                self._ring.append((int(seq), message))


_STOP = object()


class Tenant:
    """One tenant: an engine session plus its single worker thread."""

    def __init__(
        self,
        name: str,
        config: EngineConfig,
        limits: ServerLimits,
        engine: StreamingGraphEngine | None = None,
    ):
        self.name = name
        self.config = config
        self.limits = limits
        #: a restore passes the already-rebuilt engine; the normal path
        #: starts an empty one
        self.engine = engine if engine is not None else StreamingGraphEngine(config)
        self.channels: dict[str, QueryChannel] = {}
        self.bucket = TokenBucket(limits.ingest_rate, limits.ingest_burst)
        self.ingest_meter = RateMeter()
        self._auto = 0
        self._commands: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self.draining = False
        self._drained = False
        self._thread = threading.Thread(
            target=self._worker, name=f"tenant-{name}", daemon=True
        )
        self._thread.start()

    # -- worker thread ---------------------------------------------------
    def _worker(self) -> None:
        while True:
            fn, future = self._commands.get()
            if fn is _STOP:
                future.set_result(None)
                break
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn())
            except BaseException as exc:
                future.set_exception(exc)

    def submit(self, fn) -> concurrent.futures.Future:
        """Queue one engine call for the worker thread (FIFO order)."""
        if self.draining:
            raise AdmissionError(f"tenant {self.name!r} is draining")
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._commands.put((fn, future))
        return future

    async def call(self, fn):
        """Run ``fn`` on the worker thread, awaiting its result."""
        return await asyncio.wrap_future(self.submit(fn))

    # -- engine-facing operations (run on the worker thread) -------------
    def register(self, spec: RegisterSpec) -> str:
        """Build + register the query; returns the query id.

        Admission (query count, name collisions) is checked under the
        tenant lock *before* the expensive parse/compile.
        """
        with self._lock:
            if len(self.channels) >= self.limits.max_queries_per_tenant:
                raise AdmissionError(
                    f"tenant {self.name!r} is at its query limit "
                    f"({self.limits.max_queries_per_tenant})"
                )
            qid = spec.name
            if qid is None:
                qid = f"q{self._auto}"
                self._auto += 1
            if qid in self.channels:
                raise AdmissionError(f"query {qid!r} already registered")
            channel = QueryChannel(
                qid, spec.policy, replay=self.limits.replay_buffer
            )
            self.channels[qid] = channel
        try:
            query = spec.build_query()
            self.engine.register(query, name=qid, on_result=channel.deliver)
        except BaseException:
            with self._lock:
                self.channels.pop(qid, None)
            raise
        return qid

    def unregister(self, qid: str) -> None:
        with self._lock:
            channel = self.channels.pop(qid, None)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        self.engine.unregister(qid)
        channel.close_subscribers("query unregistered")

    def ingest(self, edges: list) -> dict:
        stats = self.engine.push_many(edges)
        self.ingest_meter.add(len(edges))
        return {
            "ingested": len(edges),
            "watermark": self.engine.watermark,
            "elapsed": stats.total_seconds,
        }

    def channel(self, qid: str) -> QueryChannel:
        channel = self.channels.get(qid)
        if channel is None:
            raise NotFoundError(f"unknown query {qid!r}")
        return channel

    @property
    def subscriber_count(self) -> int:
        return sum(c.subscriber_count for c in self.channels.values())

    def admit_subscriber(self) -> None:
        if self.subscriber_count >= self.limits.max_subscribers_per_tenant:
            raise AdmissionError(
                f"tenant {self.name!r} is at its subscriber limit "
                f"({self.limits.max_subscribers_per_tenant})"
            )

    # -- drain / durability ----------------------------------------------
    async def drain(self, checkpoint_writer=None) -> None:
        """Graceful shutdown: finish queued work, close, flush, stop.

        Ordering matters for the no-lost-results guarantee: the stop
        sentinel *follows* every already-queued ingest command, so all
        in-flight results reach the subscriber queues before the queues
        are closed — subscribers then read their remaining backlog and
        see a clean end-of-stream.

        With ``checkpoint_writer``, the tenant is snapshotted after the
        worker has stopped (so the engine is quiescent) and before
        ``engine.close()`` (process-transport shards must still be
        alive to report their state).

        Idempotent: a second drain (e.g. an explicit ``drain_all``
        followed by the server's own shutdown) is a no-op — the stop
        sentinel must not be re-queued once the worker has exited.
        """
        self.draining = True
        if self._drained:
            return
        self._drained = True
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._commands.put((_STOP, future))
        await asyncio.wrap_future(future)
        if checkpoint_writer is not None:
            self.checkpoint_into(checkpoint_writer)
        self.engine.close()
        for channel in self.channels.values():
            channel.close_subscribers("server draining")
        self._thread.join(timeout=10)

    def checkpoint_into(self, writer) -> None:
        """Write this tenant's blobs (engine + serve state) under
        ``tenants/<name>/``.  The engine must be quiescent (worker
        stopped or idle)."""
        prefix = f"tenants/{self.name}/"
        self.engine.write_checkpoint(writer, prefix=prefix)
        writer.put(
            prefix + "serve",
            {
                "auto": self._auto,
                "queries": {
                    qid: channel.snapshot_state()
                    for qid, channel in self.channels.items()
                },
            },
        )

    @classmethod
    def restored(
        cls,
        name: str,
        reader,
        limits: ServerLimits,
        engine_config: EngineConfig | None = None,
    ) -> "Tenant":
        """Rebuild one tenant from a server checkpoint.

        The engine is restored first (bit-identical state), then each
        query's channel is re-created with its checkpointed seq counter
        and replay ring and re-wired as the query's result callback —
        so the resumed stream numbers continue exactly where the
        snapshot left them.
        """
        prefix = f"tenants/{name}/"
        engine = StreamingGraphEngine.restore_from_reader(
            reader, prefix=prefix, config=engine_config
        )
        try:
            serve_state = reader.get(prefix + "serve")
            tenant = cls(name, engine.config, limits, engine=engine)
        except BaseException:
            engine.close()
            raise
        try:
            tenant._auto = int(serve_state.get("auto", 0))
            if set(serve_state["queries"]) != set(engine.query_names):
                raise CheckpointError(
                    f"checkpoint {reader.checkpoint_id}: blob "
                    f"'{prefix}serve' lists queries "
                    f"{sorted(serve_state['queries'])} but the restored "
                    f"engine holds {sorted(engine.query_names)}"
                )
            for qid, qstate in serve_state["queries"].items():
                channel = QueryChannel(
                    qid, qstate.get("policy"), replay=limits.replay_buffer
                )
                channel.restore_state(qstate)
                tenant.channels[qid] = channel
                engine.set_result_callback(qid, channel.deliver)
        except BaseException:
            tenant.draining = True
            engine.close()
            raise
        return tenant


class TenantManager:
    """The tenant registry: lazy creation under admission control."""

    def __init__(
        self,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
    ):
        self.limits = limits or ServerLimits()
        self.engine_config = engine_config or EngineConfig()
        self.tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self.draining = False

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise NotFoundError(f"unknown tenant {name!r}")
        return tenant

    def get_or_create(self, name: str) -> Tenant:
        with self._lock:
            if self.draining:
                raise AdmissionError("server is draining")
            tenant = self.tenants.get(name)
            if tenant is None:
                if len(self.tenants) >= self.limits.max_tenants:
                    raise AdmissionError(
                        f"tenant limit reached ({self.limits.max_tenants})"
                    )
                tenant = Tenant(name, self.engine_config, self.limits)
                self.tenants[name] = tenant
            return tenant

    async def drain_all(self, checkpoint_store=None) -> str | None:
        """Drain every tenant; optionally checkpoint them on the way out.

        With a ``checkpoint_store``, all tenants land in **one** atomic
        checkpoint (blobs under ``tenants/<name>/``), committed only
        after every tenant has quiesced and been written — a crash
        mid-drain leaves the previous checkpoint intact.  Returns the
        committed checkpoint id (``None`` when not checkpointing).
        """
        self.draining = True
        writer = None
        if checkpoint_store is not None:
            writer = checkpoint_store.begin()
        try:
            for tenant in list(self.tenants.values()):
                await tenant.drain(writer)
            if writer is not None:
                writer.set_meta(kind="server", tenants=sorted(self.tenants))
                return writer.commit()
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        return None

    @classmethod
    def restore(
        cls,
        store,
        limits: ServerLimits | None = None,
        engine_config: EngineConfig | None = None,
        checkpoint_id: str | None = None,
    ) -> "TenantManager":
        """Rebuild every tenant from a server checkpoint in ``store``.

        ``engine_config`` (e.g. built from the relaunch's CLI flags) is
        applied to every restored engine and may differ from the stored
        configuration only in ``shards`` / ``shard_transport`` — the
        same rebalancing contract as
        :meth:`StreamingGraphEngine.restore`.  ``None`` restores each
        tenant under its stored configuration.
        """
        reader = store.open(checkpoint_id)
        kind = reader.meta.get("kind")
        if kind != "server":
            raise CheckpointError(
                f"checkpoint {reader.checkpoint_id} is not a server "
                f"checkpoint (manifest kind is {kind!r}, expected "
                "'server')"
            )
        manager = cls(limits, engine_config)
        try:
            for name in reader.meta.get("tenants", []):
                manager.tenants[name] = Tenant.restored(
                    name, reader, manager.limits, engine_config
                )
        except BaseException:
            for tenant in manager.tenants.values():
                tenant.draining = True
                tenant.engine.close()
            raise
        return manager
