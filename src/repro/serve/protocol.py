"""Wire protocol of the serving layer: JSON requests in, JSON events out.

One module owns every schema the server speaks, so the server handlers,
the load client and the tests agree by construction:

* **register** — ``POST /tenants/{t}/queries`` body → a first-class
  :class:`~repro.ql.query.Query` (any dialect, compile options,
  ``$param`` bindings via the prepared-query pipeline);
* **ingest** — ``POST /tenants/{t}/ingest`` body → a list of
  :class:`~repro.core.tuples.SGE` edges;
* **events** — each result :class:`~repro.dataflow.graph.Event` a
  query's ``on_result`` callback emits → one JSON object carrying a
  per-query sequence number, the signed sgt and (when materialized) the
  path vertices.  The load client replays the same edges through an
  in-process engine and compares these objects byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.tuples import SGE, PathPayload
from repro.ql.prepared import prepare
from repro.ql.query import Query

#: Query dialects accepted by the register endpoint; ``"auto"`` defers
#: to :meth:`Query.from_text` detection.
DIALECTS = ("auto", "datalog", "gcore", "rpq")

#: Per-query compile options a register body may carry (the engine's
#: PER_QUERY_OPTIONS — engine-wide fields are tenant-level, not
#: per-query).
QUERY_OPTIONS = ("path_impl", "materialize_paths", "coalesce_intermediate")


class ProtocolError(ValueError):
    """A malformed or invalid request body (HTTP 400)."""


@dataclass(frozen=True)
class RegisterSpec:
    """A validated register request (see :func:`parse_register`)."""

    text: str
    dialect: str = "auto"
    window: int | None = None
    slide: int | None = None
    params: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    name: str | None = None
    #: subscriber backpressure policy for this query's subscriptions
    #: (overridable per subscription via the ``policy`` query param)
    policy: str | None = None

    def build_query(self) -> Query:
        """Construct the engine-facing :class:`Query` value.

        ``$param`` bindings route through :func:`repro.ql.prepared.prepare`
        — the same template/bind pipeline in-process users get, so a
        parameterized register costs one parse per template text.
        """
        dialect = None if self.dialect == "auto" else self.dialect
        if self.params:
            template = prepare(
                self.text,
                self.window,
                slide=self.slide,
                dialect=dialect,
                **self.options,
            )
            return template.bind(**self.params)
        if dialect is None:
            return Query.from_text(
                self.text, self.window, slide=self.slide, **self.options
            )
        if dialect == "gcore":
            if self.window is not None:
                raise ProtocolError(
                    "gcore queries carry their window in ON ... WINDOW "
                    "clauses; drop the 'window' field"
                )
            return Query.gcore(self.text, **self.options)
        ctor = Query.datalog if dialect == "datalog" else Query.rpq
        if self.window is None:
            raise ProtocolError(
                f"the {dialect!r} dialect requires a 'window' field"
            )
        return ctor(self.text, self.window, slide=self.slide, **self.options)


def _require(body: dict, key: str, kind, what: str):
    value = body.get(key)
    if not isinstance(value, kind):
        raise ProtocolError(f"field {key!r} must be {what}")
    return value


def parse_register(body: object) -> RegisterSpec:
    """Validate a register request body into a :class:`RegisterSpec`."""
    if not isinstance(body, dict):
        raise ProtocolError("register body must be a JSON object")
    text = _require(body, "query", str, "the query text (a string)")
    dialect = body.get("dialect", "auto")
    if dialect not in DIALECTS:
        raise ProtocolError(
            f"unknown dialect {dialect!r}; expected one of {DIALECTS}"
        )
    window = body.get("window")
    if window is not None and (isinstance(window, bool) or not isinstance(window, int)):
        raise ProtocolError("field 'window' must be an integer")
    slide = body.get("slide")
    if slide is not None and (isinstance(slide, bool) or not isinstance(slide, int)):
        raise ProtocolError("field 'slide' must be an integer")
    params = body.get("params", {})
    if not isinstance(params, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in params.items()
    ):
        raise ProtocolError(
            "field 'params' must map $param names to label strings"
        )
    options = body.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("field 'options' must be a JSON object")
    unknown = set(options) - set(QUERY_OPTIONS)
    if unknown:
        raise ProtocolError(
            f"unknown compile option(s) {sorted(unknown)}; "
            f"per-query options are {list(QUERY_OPTIONS)}"
        )
    name = body.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("field 'name' must be a string")
    policy = body.get("policy")
    if policy is not None and not isinstance(policy, str):
        raise ProtocolError("field 'policy' must be a string")
    return RegisterSpec(
        text=text,
        dialect=dialect,
        window=window,
        slide=slide,
        params=dict(params),
        options=dict(options),
        name=name,
        policy=policy,
    )


def parse_ingest(body: object) -> list[SGE]:
    """Validate an ingest request body into a timestamp-ordered edge list."""
    if not isinstance(body, dict):
        raise ProtocolError("ingest body must be a JSON object")
    edges = _require(body, "edges", list, "a list of edge objects")
    out: list[SGE] = []
    previous_t: int | None = None
    for i, item in enumerate(edges):
        if not isinstance(item, dict):
            raise ProtocolError(f"edge {i} must be a JSON object")
        try:
            src = item["src"]
            trg = item["trg"]
            label = item["label"]
            t = item["t"]
        except KeyError as exc:
            raise ProtocolError(
                f"edge {i} is missing field {exc.args[0]!r} "
                "(need src, trg, label, t)"
            ) from None
        if not isinstance(label, str):
            raise ProtocolError(f"edge {i}: 'label' must be a string")
        if isinstance(t, bool) or not isinstance(t, int):
            raise ProtocolError(f"edge {i}: 't' must be an integer")
        if previous_t is not None and t < previous_t:
            raise ProtocolError(
                f"edge {i} at t={t} breaks the batch's timestamp order "
                f"(previous t={previous_t}); sort each ingest batch"
            )
        previous_t = t
        out.append(SGE(src, trg, label, t))
    return out


def encode_event(seq: int, event) -> dict:
    """One result event as the JSON object subscribers receive.

    The event arrives decoded (the engine wraps ``on_result`` callbacks
    in the interner decode), so ``src``/``trg`` are the original vertex
    values.  ``path`` is present only for materialized path results.
    """
    sgt = event.sgt
    obj = {
        "seq": seq,
        "sign": event.sign,
        "src": sgt.src,
        "trg": sgt.trg,
        "label": sgt.label,
        "from": sgt.interval.ts,
        "to": sgt.interval.exp,
    }
    payload = sgt.payload
    if isinstance(payload, PathPayload):
        obj["path"] = list(payload.vertices)
    return obj


def dumps(obj: object) -> str:
    """Canonical JSON used on every wire surface (stable key order, so
    the parity client can compare encoded strings directly)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))
