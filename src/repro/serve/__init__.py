"""The serving layer: an asyncio multi-tenant front-end over the engine.

Stdlib-only (asyncio + sockets — no required dependencies): an HTTP +
WebSocket/SSE server that fronts per-tenant
:class:`~repro.engine.session.StreamingGraphEngine` sessions with query
registration, batched edge ingestion, push-based result subscriptions,
admission control, quotas, metrics and graceful drain.  See
:mod:`repro.serve.app` for the endpoint surface and
``scripts/serve.py`` for the launcher.
"""

from repro.serve.app import GraphStreamServer
from repro.serve.subscriptions import BACKPRESSURE_POLICIES, SubscriberQueue
from repro.serve.tenants import AdmissionError, ServerLimits, TenantManager

__all__ = [
    "GraphStreamServer",
    "SubscriberQueue",
    "BACKPRESSURE_POLICIES",
    "ServerLimits",
    "TenantManager",
    "AdmissionError",
]
