"""Bounded per-subscriber delivery queues bridging engine → event loop.

Result events are produced on a tenant's engine worker *thread* (the
``on_result`` callbacks fire inside ``push_many``) and consumed by
asyncio connection handlers.  :class:`SubscriberQueue` is that bridge:
a bounded deque guarded by a ``threading.Condition`` on the producer
side, with an ``asyncio.Event`` the consumer awaits, signaled through
``loop.call_soon_threadsafe`` only on empty→non-empty transitions (one
wakeup per drain cycle, not per event).

Backpressure when a subscriber stops draining is a per-subscription
choice among three policies:

``"block"``
    The producing worker thread waits for queue space — ingestion slows
    to the slowest subscriber's pace, and **no subscriber ever misses an
    event** (the policy the parity-checking load client uses).
``"drop"``
    The event is counted and discarded for this subscriber; delivery
    resumes when the queue drains.  Ingestion never stalls.
``"disconnect"``
    The subscription is closed with a ``slow consumer`` reason; the
    handler sends a final notice and hangs up.  Ingestion never stalls
    and every *delivered* stream is gap-free.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque

BACKPRESSURE_POLICIES = ("block", "drop", "disconnect")


class SubscriberQueue:
    """One subscriber's bounded event queue (thread → asyncio bridge)."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        maxsize: int = 1024,
        policy: str = "block",
    ):
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.policy = policy
        self.maxsize = maxsize
        self._loop = loop
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._event = asyncio.Event()
        self._signaled = False
        self.closed = False
        #: why the queue closed (``None`` for a consumer-side close)
        self.close_reason: str | None = None
        #: events enqueued for this subscriber
        self.delivered = 0
        #: events discarded under the ``"drop"`` policy
        self.dropped = 0

    # -- producer side (engine worker thread) --------------------------
    def offer(self, item: object) -> bool:
        """Enqueue one event per the backpressure policy.

        Returns False when the queue is (or just became) closed — the
        fan-out loop then detaches this subscriber.  Called from the
        tenant's engine worker thread.
        """
        with self._cond:
            if self.closed:
                return False
            if len(self._items) >= self.maxsize:
                if self.policy == "drop":
                    self.dropped += 1
                    return True
                if self.policy == "disconnect":
                    self._close_locked("slow consumer")
                    return False
                # "block": wait for the consumer to drain (or vanish)
                while len(self._items) >= self.maxsize and not self.closed:
                    self._cond.wait()
                if self.closed:
                    return False
            self._items.append(item)
            self.delivered += 1
            self._wake_consumer_locked()
            return True

    def preload(self, items: list) -> None:
        """Seed the queue with replayed events before it is attached.

        Resume replay happens on the event-loop thread *before* the
        handler's drain loop starts, so it must not be subject to the
        backpressure policy: a ``block`` producer would wait on a
        consumer that cannot run yet (same thread), deadlocking the
        loop.  The overshoot is bounded by the channel's replay ring,
        not ``maxsize``.
        """
        with self._cond:
            if self.closed:
                return
            for item in items:
                self._items.append(item)
                self.delivered += 1
            if items:
                self._wake_consumer_locked()

    def close(self, reason: str | None = None) -> None:
        """Close the queue (idempotent; safe from any thread).

        Already-enqueued events stay readable — :meth:`drain` returns
        them before reporting the close — so a drain-time close loses
        nothing that was delivered.
        """
        with self._cond:
            if self.closed:
                return
            self._close_locked(reason)

    def _close_locked(self, reason: str | None) -> None:
        self.closed = True
        self.close_reason = reason
        self._cond.notify_all()  # release a blocked producer
        self._wake_consumer_locked()

    def _wake_consumer_locked(self) -> None:
        if not self._signaled:
            self._signaled = True
            try:
                self._loop.call_soon_threadsafe(self._event.set)
            except RuntimeError:  # pragma: no cover - loop shut down
                pass

    # -- consumer side (asyncio handler) --------------------------------
    @property
    def depth(self) -> int:
        """Current queue occupancy (for the metrics endpoint)."""
        return len(self._items)

    async def drain(self) -> list | None:
        """Await and return every queued item; ``None`` once closed.

        Returns the whole backlog in one batch (the handler writes it as
        one socket flush).  After :meth:`close`, remaining items are
        still returned first; the ``None`` terminator follows on the
        next call.
        """
        while True:
            await self._event.wait()
            with self._cond:
                items = list(self._items)
                self._items.clear()
                self._signaled = False
                self._event.clear()
                closed = self.closed
                # a producer blocked on a full queue can resume now
                self._cond.notify_all()
            if closed:
                # keep the event set so the call after the final batch
                # (and any call after that) returns None immediately
                self._event.set()
                return items or None
            if items:
                return items
