"""Minimal HTTP/1.1, SSE and WebSocket plumbing over asyncio streams.

Just enough of each protocol for the serving layer, implemented on the
stdlib only:

* request parsing (request line, headers, ``Content-Length`` bodies);
* response building with keep-alive disabled (one request per
  connection keeps the server loop trivial and the load-client honest);
* Server-Sent Events framing (``id:`` + ``data:`` lines);
* the WebSocket server handshake (RFC 6455 ``Sec-WebSocket-Accept``)
  and frame codec — unmasked server→client text frames, masked
  client→server frames, close/ping handling.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: RFC 6455 handshake GUID
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

WS_TEXT = 0x1
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA


class HttpError(Exception):
    """A protocol-level failure carrying an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split path, query params, headers, body."""

    method: str
    path: str
    segments: tuple[str, ...]
    query: dict[str, str]
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )


async def read_request(reader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrun, reset
        if getattr(exc, "partial", b"") == b"":
            return None
        raise HttpError(400, "malformed request head") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    path = unquote(split.path)
    segments = tuple(seg for seg in path.split("/") if seg)
    query = dict(parse_qsl(split.query))
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length!r}") from None
    if n > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(n) if n else b""
    return HttpRequest(method, path, segments, query, headers, body)


def response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def response_with_headers(status: int, body: bytes, extra: dict) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: close")
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# -- Server-Sent Events ----------------------------------------------------

SSE_HEAD = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n"
    b"\r\n"
)


def sse_event(
    data: str, event: str | None = None, event_id: int | str | None = None
) -> bytes:
    """One SSE frame; ``data`` must be newline-free (our JSON lines are).

    ``event_id`` becomes the frame's ``id:`` line — browsers (and our
    load client) echo the last one back as ``Last-Event-ID`` on
    reconnect, which the subscribe endpoint uses to replay the gap.
    """
    head = f"id: {event_id}\n" if event_id is not None else ""
    if event is not None:
        return f"{head}event: {event}\ndata: {data}\n\n".encode()
    return f"{head}data: {data}\n\n".encode()


# -- WebSocket -------------------------------------------------------------


def websocket_accept(key: str) -> str:
    digest = hashlib.sha1(key.encode("latin-1") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake(request: HttpRequest) -> bytes:
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise HttpError(400, "websocket upgrade without Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def ws_frame(payload: bytes, opcode: int = WS_TEXT) -> bytes:
    """Encode one unmasked server→client frame (FIN set)."""
    head = bytearray([0x80 | opcode])
    n = len(payload)
    if n < 126:
        head.append(n)
    elif n < 1 << 16:
        head.append(126)
        head += n.to_bytes(2, "big")
    else:
        head.append(127)
        head += n.to_bytes(8, "big")
    return bytes(head) + payload


def ws_close_frame(code: int = 1000, reason: str = "") -> bytes:
    return ws_frame(code.to_bytes(2, "big") + reason.encode(), WS_CLOSE)


async def ws_read_frame(reader) -> tuple[int, bytes] | None:
    """Read one client frame → ``(opcode, payload)``; ``None`` on EOF.

    Client frames are masked per RFC 6455; fragmentation is not
    supported (the serving protocol never needs it).
    """
    try:
        head = await reader.readexactly(2)
    except Exception:
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    n = head[1] & 0x7F
    try:
        if n == 126:
            n = int.from_bytes(await reader.readexactly(2), "big")
        elif n == 127:
            n = int.from_bytes(await reader.readexactly(8), "big")
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(n) if n else b""
    except Exception:
        return None
    if masked and payload:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, payload
