"""Dataflow graph: operators, channels, events, batches, watermarks.

Events carry an sgt and a sign: ``+1`` for insertions, ``-1`` for explicit
deletions (negative tuples, Section 6.2.5).  Expirations due to window
movement are *not* events — they are handled by each stateful operator
when the watermark advances (the direct approach), or synthesized into
deletions internally by negative-tuple operators.

Tuples move through the topology either one at a time (:meth:`emit` /
:meth:`PhysicalOperator.on_event`) or as :class:`~repro.core.batch.DeltaBatch`
groups sharing a slide epoch (:meth:`emit_batch` /
:meth:`PhysicalOperator.on_batch`).  The base class provides a per-tuple
fallback shim for ``on_batch``: incoming events are replayed through
``on_event`` while emissions are captured, then forwarded downstream as
one batch — so any operator participates in batched execution, and hot
operators override ``on_batch`` with real bulk implementations.  Batches
preserve arrival order exactly; order is semantically significant (a
retraction must observe the insertions that preceded it, and expand-only
operators keep the *first* derivation they find).

Watermark propagation follows Timely's frontier rule: an operator acts on
the minimum watermark across its input ports, so diamonds in the graph
never observe time moving backwards.
"""

from __future__ import annotations

from typing import Callable

from repro.core.batch import DeltaBatch
from repro.core.coalesce import coalesce_stream
from repro.core.intervals import Interval, net_cover
from repro.core.tuples import SGE, SGT, EdgePayload, Label, Vertex
from repro.errors import ExecutionError

INSERT = 1
DELETE = -1


class Event:
    """An insertion (+1) or explicit deletion (-1) of an sgt.

    A hand-written ``__slots__`` value class: per-tuple execution
    allocates one per operator hop, so construction cost is hot (batched
    execution avoids the wrapper entirely for insert-only batches).
    """

    __slots__ = ("sgt", "sign")

    def __init__(self, sgt: SGT, sign: int = INSERT):
        if sign != INSERT and sign != DELETE:
            raise ExecutionError(f"invalid event sign {sign}")
        self.sgt = sgt
        self.sign = sign

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Event:
            return self.sgt == other.sgt and self.sign == other.sign  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.sgt, self.sign))

    def __repr__(self) -> str:
        return f"Event(sgt={self.sgt!r}, sign={self.sign!r})"


class PhysicalOperator:
    """Base class for physical operators.

    Subclasses implement :meth:`on_event` (per-tuple processing; push
    outputs with :meth:`emit` or :meth:`emit_sgt`) and optionally
    :meth:`on_advance` (state purge when the watermark moves).  Batched
    execution goes through :meth:`on_batch`, whose default implementation
    replays the batch per tuple while capturing emissions, then flushes
    them downstream as one batch; hot operators override it.
    """

    def __init__(self, name: str):
        self.name = name
        self._downstream: list[tuple["PhysicalOperator", int]] = []
        self._input_watermarks: dict[int, int] = {}
        self._watermark = -1
        #: number of input ports; maintained by DataflowGraph.connect
        self.arity = 0
        #: emission-capture buffers, active only while a batch is being
        #: processed (see :meth:`_begin_batch` / :meth:`_end_batch`)
        self._capture_sgts: list[SGT] | None = None
        self._capture_signs: list[int] = []
        self._capture_mixed = False

    # ------------------------------------------------------------------
    # Wiring (used by DataflowGraph)
    # ------------------------------------------------------------------
    def _subscribe(self, consumer: "PhysicalOperator", port: int) -> None:
        self._downstream.append((consumer, port))

    def _register_input(self, port: int) -> None:
        self._input_watermarks[port] = -1
        self.arity = max(self.arity, port + 1)

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        captured = self._capture_sgts
        if captured is not None:
            captured.append(event.sgt)
            self._capture_signs.append(event.sign)
            if event.sign != INSERT:
                self._capture_mixed = True
            return
        for consumer, port in self._downstream:
            consumer.on_event(port, event)

    def emit_sgt(self, sgt: SGT, sign: int = INSERT) -> None:
        """Emit without allocating an :class:`Event` while capturing.

        Equivalent to ``emit(Event(sgt, sign))`` but batch implementations
        that route through it never pay the wrapper allocation when the
        output is being collected into a batch.
        """
        captured = self._capture_sgts
        if captured is not None:
            captured.append(sgt)
            self._capture_signs.append(sign)
            if sign != INSERT:
                self._capture_mixed = True
            return
        event = Event(sgt, sign)
        for consumer, port in self._downstream:
            consumer.on_event(port, event)

    def on_event(self, port: int, event: Event) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch flow
    # ------------------------------------------------------------------
    def emit_batch(self, batch: DeltaBatch) -> None:
        """Forward a batch downstream.

        Batches flow *along linear edges only*: with a single subscriber
        the whole batch is handed over in one call.  At a fanout point —
        several subscriptions, which includes one consumer subscribed on
        several ports (a self-join) and diamonds that reconverge further
        down — delivery degrades to per-event emission in exactly the
        per-tuple interleaving (event 1 to every subscriber, then event
        2, …).  Handing whole batches to each subscriber in turn would
        reorder events *across ports* relative to per-tuple execution,
        and order-sensitive consumers (the expand-only negative-tuple
        PATH keeps the first derivation it finds) would produce
        different results.
        """
        if not batch.sgts:
            return
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_batch(port, batch)
            return
        if not downstream:
            return
        for sgt, sign in batch.events():
            event = Event(sgt, sign)
            for consumer, port in downstream:
                consumer.on_event(port, event)

    def on_sge_batch(self, port: int, boundary: int, edges: list[SGE]) -> None:
        """Process one batch of raw input sges from a source.

        The default shim wraps each sge into its minimal ``[t, t+1)`` NOW
        sgt and processes the result as a :class:`DeltaBatch`; WSCAN
        overrides this to assign the real window intervals directly from
        the sges, skipping the intermediate NOW tuples entirely.
        """
        sgts = [
            SGT(
                e.src,
                e.trg,
                e.label,
                Interval(e.t, e.t + 1),
                EdgePayload(e.src, e.trg, e.label),
            )
            for e in edges
        ]
        self.on_batch(port, DeltaBatch(boundary, sgts))

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Process one delta batch; the default is a per-tuple shim.

        Events are replayed in arrival order through :meth:`on_event`
        while emissions are captured, then flushed downstream as a single
        batch — one downstream call per batch instead of one per tuple.
        """
        self._begin_batch()
        try:
            on_event = self.on_event
            signs = batch.signs
            if signs is None:
                for sgt in batch.sgts:
                    on_event(port, Event(sgt, INSERT))
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    on_event(port, Event(sgt, sign))
        finally:
            self._end_batch(batch.boundary)

    def _begin_batch(self) -> None:
        """Start capturing emissions into a batch buffer."""
        if self._capture_sgts is not None:
            raise ExecutionError(f"{self.name}: nested batch processing")
        self._capture_sgts = []
        self._capture_signs = []
        self._capture_mixed = False

    def _end_batch(self, boundary: int) -> None:
        """Stop capturing and flush collected emissions downstream."""
        sgts = self._capture_sgts
        signs = self._capture_signs if self._capture_mixed else None
        self._capture_sgts = None
        self._capture_signs = []
        if sgts:
            self.emit_batch(DeltaBatch(boundary, sgts, signs))

    # ------------------------------------------------------------------
    # Progress (watermarks)
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        return self._watermark

    def receive_watermark(self, port: int, t: int) -> None:
        """Record an upstream watermark; advance when the frontier moves."""
        current = self._input_watermarks.get(port, -1)
        if t < current:
            raise ExecutionError(
                f"{self.name}: watermark regression on port {port}: {t} < {current}"
            )
        self._input_watermarks[port] = t
        frontier = min(self._input_watermarks.values()) if self._input_watermarks else t
        if frontier > self._watermark:
            self._watermark = frontier
            self.on_advance(frontier)
            for consumer, consumer_port in self._downstream:
                consumer.receive_watermark(consumer_port, frontier)

    def on_advance(self, t: int) -> None:
        """Hook: the window has advanced to instant ``t``.

        Stateful operators purge state with ``exp <= t`` here; the default
        is a no-op.  Emissions from this hook are allowed (negative-tuple
        operators emit retractions and re-derivations).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class SourceOp(PhysicalOperator):
    """Entry point of a dataflow: forwards externally pushed events.

    One source exists per input label; the executor routes each incoming
    sge to the source of its label.
    """

    def __init__(self, label: Label):
        super().__init__(f"source[{label}]")
        self.label = label

    def push(self, event: Event) -> None:
        self.emit(event)

    def push_sges(self, boundary: int, edges: list[SGE]) -> None:
        """Forward one batch of raw input sges (batched executor path).

        Same fanout rule as :meth:`PhysicalOperator.emit_batch`: the
        whole batch flows only along a linear edge; with several
        subscribers (e.g. two WSCANs windowing the same label) delivery
        falls back to per-event pushes in per-tuple interleaving.
        """
        if not edges:
            return
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_sge_batch(port, boundary, edges)
            return
        if not downstream:
            return
        for e in edges:
            event = Event(
                SGT(
                    e.src,
                    e.trg,
                    e.label,
                    Interval(e.t, e.t + 1),
                    EdgePayload(e.src, e.trg, e.label),
                )
            )
            for consumer, port in downstream:
                consumer.on_event(port, event)

    def push_watermark(self, t: int) -> None:
        # Sources have a single implicit input port 0 driven by the
        # executor.
        self.receive_watermark(0, t)

    def on_event(self, port: int, event: Event) -> None:  # pragma: no cover
        raise ExecutionError("sources do not consume events")


class SinkOp(PhysicalOperator):
    """Terminal operator collecting result events.

    Keeps every event in arrival order; :meth:`coverage` folds insertions
    and retractions into per-key disjoint validity covers, and
    :meth:`results` returns the coalesced sgts (set semantics).
    """

    def __init__(self, name: str = "sink", callback: Callable[[Event], None] | None = None):
        super().__init__(name)
        self.events: list[Event] = []
        self._callback = callback

    def set_callback(self, callback: Callable[[Event], None] | None) -> None:
        """Install (or clear) a per-event delivery callback.

        The callback observes the raw signed event stream — exactly what
        :meth:`results` coalesces — so push (callback) and pull
        (:meth:`results`) consumers see the same data.
        """
        self._callback = callback

    def on_event(self, port: int, event: Event) -> None:
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        signs = batch.signs
        if signs is None:
            arrived = [Event(sgt) for sgt in batch.sgts]
        else:
            arrived = [Event(sgt, sign) for sgt, sign in zip(batch.sgts, signs)]
        self.events.extend(arrived)
        if self._callback is not None:
            for event in arrived:
                self._callback(event)

    @property
    def insert_count(self) -> int:
        return sum(1 for e in self.events if e.sign == INSERT)

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per (src, trg, label) after applying signs.

        Counting semantics: retracting one of several overlapping
        derivations keeps the instants the others still support.
        """
        plus: dict[tuple, list[Interval]] = {}
        minus: dict[tuple, list[Interval]] = {}
        for event in self.events:
            bucket = plus if event.sign == INSERT else minus
            bucket.setdefault(event.sgt.key(), []).append(event.sgt.interval)
        out: dict[tuple, list[Interval]] = {}
        for key, intervals in plus.items():
            remaining = net_cover(intervals, minus.get(key, []))
            if remaining:
                out[key] = remaining
        return out

    def results(self) -> list[SGT]:
        """Coalesced insert-side sgts (ignores retractions); see
        :meth:`coverage` for sign-aware folding."""
        return coalesce_stream(e.sgt for e in self.events if e.sign == INSERT)

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Keys whose net validity cover contains instant ``t``."""
        return {
            key
            for key, intervals in self.coverage().items()
            if any(iv.contains(t) for iv in intervals)
        }

    def clear(self) -> None:
        self.events.clear()


class DataflowGraph:
    """A small DAG of physical operators with explicit wiring."""

    def __init__(self) -> None:
        self.operators: list[PhysicalOperator] = []
        self.sources: dict[Label, SourceOp] = {}
        self.sinks: list[SinkOp] = []
        #: id-index over ``operators`` — membership checks (one per
        #: connect()) must not scan the list once sessions hold many
        #: queries' operators.
        self._member_ids: set[int] = set()

    def add(self, op: PhysicalOperator) -> PhysicalOperator:
        self.operators.append(op)
        self._member_ids.add(id(op))
        if isinstance(op, SourceOp):
            if op.label in self.sources:
                raise ExecutionError(f"duplicate source for label {op.label!r}")
            self.sources[op.label] = op
        if isinstance(op, SinkOp):
            self.sinks.append(op)
        return op

    def add_source(self, label: Label) -> SourceOp:
        existing = self.sources.get(label)
        if existing is not None:
            return existing
        source = SourceOp(label)
        return self.add(source)  # type: ignore[return-value]

    def connect(
        self, producer: PhysicalOperator, consumer: PhysicalOperator, port: int = 0
    ) -> None:
        if id(producer) not in self._member_ids or id(consumer) not in self._member_ids:
            raise ExecutionError("connect() requires operators added to the graph")
        consumer._register_input(port)
        producer._subscribe(consumer, port)

    def producer_of(self, consumer: PhysicalOperator) -> PhysicalOperator | None:
        """The operator feeding ``consumer``, if any (first match)."""
        for op in self.operators:
            for candidate, _ in op._downstream:
                if candidate is consumer:
                    return op
        return None

    def prune(self, sinks: list[SinkOp]) -> list[PhysicalOperator]:
        """Remove ``sinks`` and every operator reachable *only* through them.

        Liveness is computed upstream from the remaining sinks (query
        sinks and taps alike): an operator survives iff some retained
        sink still consumes — directly or transitively — from it.
        Subscriptions from surviving producers to removed consumers are
        severed, so shared operators keep streaming to the queries that
        remain.  Returns the removed operators (callers evict compilation
        cache entries pointing at them).
        """
        removed = set(sinks)
        kept_sinks = [s for s in self.sinks if s not in removed]
        producers: dict[PhysicalOperator, list[PhysicalOperator]] = {}
        for op in self.operators:
            for consumer, _ in op._downstream:
                producers.setdefault(consumer, []).append(op)
        live: set[PhysicalOperator] = set()
        stack: list[PhysicalOperator] = list(kept_sinks)
        while stack:
            op = stack.pop()
            if op in live:
                continue
            live.add(op)
            stack.extend(producers.get(op, ()))
        dead = [op for op in self.operators if op not in live]
        self.operators = [op for op in self.operators if op in live]
        self._member_ids = {id(op) for op in self.operators}
        self.sinks = kept_sinks
        self.sources = {
            label: source
            for label, source in self.sources.items()
            if source in live
        }
        for op in self.operators:
            op._downstream = [
                (consumer, port)
                for consumer, port in op._downstream
                if consumer in live
            ]
        return dead

    def sync_watermarks(self) -> None:
        """Align consumer input watermarks with their producers'.

        Used when splicing new operators into a *live* dataflow: a cached
        (shared) producer only re-announces its watermark on the next
        frontier movement, so a freshly attached consumer would otherwise
        lag one slide behind.  ``receive_watermark`` cascades, so one
        sweep over all edges converges.
        """
        for op in list(self.operators):
            wm = op._watermark
            if wm < 0:
                continue
            for consumer, port in list(op._downstream):
                if consumer._input_watermarks.get(port, -1) < wm:
                    consumer.receive_watermark(port, wm)

    def source_labels(self) -> set[Label]:
        return set(self.sources)

    def push(self, label: Label, event: Event) -> None:
        source = self.sources.get(label)
        if source is None:
            return  # edges with labels not used by the query are discarded
        source.push(event)

    def push_watermark(self, t: int) -> None:
        for source in self.sources.values():
            source.push_watermark(t)

    def state_size(self) -> int:
        """Total retained state across operators (for memory diagnostics)."""
        total = 0
        for op in self.operators:
            size = getattr(op, "state_size", None)
            if callable(size):
                total += size()
        return total
