"""Dataflow graph: operators, channels, events, watermarks.

Events carry an sgt and a sign: ``+1`` for insertions, ``-1`` for explicit
deletions (negative tuples, Section 6.2.5).  Expirations due to window
movement are *not* events — they are handled by each stateful operator
when the watermark advances (the direct approach), or synthesized into
deletions internally by negative-tuple operators.

Watermark propagation follows Timely's frontier rule: an operator acts on
the minimum watermark across its input ports, so diamonds in the graph
never observe time moving backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.coalesce import coalesce_stream
from repro.core.intervals import Interval, cover, net_cover
from repro.core.tuples import SGT, Label, Vertex
from repro.errors import ExecutionError

INSERT = 1
DELETE = -1


@dataclass(frozen=True, slots=True)
class Event:
    """An insertion (+1) or explicit deletion (-1) of an sgt."""

    sgt: SGT
    sign: int = INSERT

    def __post_init__(self) -> None:
        if self.sign not in (INSERT, DELETE):
            raise ExecutionError(f"invalid event sign {self.sign}")


class PhysicalOperator:
    """Base class for physical operators.

    Subclasses implement :meth:`on_event` (per-tuple processing; push
    outputs with :meth:`emit`) and optionally :meth:`on_advance` (state
    purge when the watermark moves).
    """

    def __init__(self, name: str):
        self.name = name
        self._downstream: list[tuple["PhysicalOperator", int]] = []
        self._input_watermarks: dict[int, int] = {}
        self._watermark = -1
        #: number of input ports; maintained by DataflowGraph.connect
        self.arity = 0

    # ------------------------------------------------------------------
    # Wiring (used by DataflowGraph)
    # ------------------------------------------------------------------
    def _subscribe(self, consumer: "PhysicalOperator", port: int) -> None:
        self._downstream.append((consumer, port))

    def _register_input(self, port: int) -> None:
        self._input_watermarks[port] = -1
        self.arity = max(self.arity, port + 1)

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        for consumer, port in self._downstream:
            consumer.on_event(port, event)

    def on_event(self, port: int, event: Event) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Progress (watermarks)
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        return self._watermark

    def receive_watermark(self, port: int, t: int) -> None:
        """Record an upstream watermark; advance when the frontier moves."""
        current = self._input_watermarks.get(port, -1)
        if t < current:
            raise ExecutionError(
                f"{self.name}: watermark regression on port {port}: {t} < {current}"
            )
        self._input_watermarks[port] = t
        frontier = min(self._input_watermarks.values()) if self._input_watermarks else t
        if frontier > self._watermark:
            self._watermark = frontier
            self.on_advance(frontier)
            for consumer, consumer_port in self._downstream:
                consumer.receive_watermark(consumer_port, frontier)

    def on_advance(self, t: int) -> None:
        """Hook: the window has advanced to instant ``t``.

        Stateful operators purge state with ``exp <= t`` here; the default
        is a no-op.  Emissions from this hook are allowed (negative-tuple
        operators emit retractions and re-derivations).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class SourceOp(PhysicalOperator):
    """Entry point of a dataflow: forwards externally pushed events.

    One source exists per input label; the executor routes each incoming
    sge to the source of its label.
    """

    def __init__(self, label: Label):
        super().__init__(f"source[{label}]")
        self.label = label

    def push(self, event: Event) -> None:
        self.emit(event)

    def push_watermark(self, t: int) -> None:
        # Sources have a single implicit input port 0 driven by the
        # executor.
        self.receive_watermark(0, t)

    def on_event(self, port: int, event: Event) -> None:  # pragma: no cover
        raise ExecutionError("sources do not consume events")


class SinkOp(PhysicalOperator):
    """Terminal operator collecting result events.

    Keeps every event in arrival order; :meth:`coverage` folds insertions
    and retractions into per-key disjoint validity covers, and
    :meth:`results` returns the coalesced sgts (set semantics).
    """

    def __init__(self, name: str = "sink", callback: Callable[[Event], None] | None = None):
        super().__init__(name)
        self.events: list[Event] = []
        self._callback = callback

    def on_event(self, port: int, event: Event) -> None:
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    @property
    def insert_count(self) -> int:
        return sum(1 for e in self.events if e.sign == INSERT)

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per (src, trg, label) after applying signs.

        Counting semantics: retracting one of several overlapping
        derivations keeps the instants the others still support.
        """
        plus: dict[tuple, list[Interval]] = {}
        minus: dict[tuple, list[Interval]] = {}
        for event in self.events:
            bucket = plus if event.sign == INSERT else minus
            bucket.setdefault(event.sgt.key(), []).append(event.sgt.interval)
        out: dict[tuple, list[Interval]] = {}
        for key, intervals in plus.items():
            remaining = net_cover(intervals, minus.get(key, []))
            if remaining:
                out[key] = remaining
        return out

    def results(self) -> list[SGT]:
        """Coalesced insert-side sgts (ignores retractions); see
        :meth:`coverage` for sign-aware folding."""
        return coalesce_stream(e.sgt for e in self.events if e.sign == INSERT)

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Keys whose net validity cover contains instant ``t``."""
        return {
            key
            for key, intervals in self.coverage().items()
            if any(iv.contains(t) for iv in intervals)
        }

    def clear(self) -> None:
        self.events.clear()


class DataflowGraph:
    """A small DAG of physical operators with explicit wiring."""

    def __init__(self) -> None:
        self.operators: list[PhysicalOperator] = []
        self.sources: dict[Label, SourceOp] = {}
        self.sinks: list[SinkOp] = []

    def add(self, op: PhysicalOperator) -> PhysicalOperator:
        self.operators.append(op)
        if isinstance(op, SourceOp):
            if op.label in self.sources:
                raise ExecutionError(f"duplicate source for label {op.label!r}")
            self.sources[op.label] = op
        if isinstance(op, SinkOp):
            self.sinks.append(op)
        return op

    def add_source(self, label: Label) -> SourceOp:
        existing = self.sources.get(label)
        if existing is not None:
            return existing
        source = SourceOp(label)
        return self.add(source)  # type: ignore[return-value]

    def connect(
        self, producer: PhysicalOperator, consumer: PhysicalOperator, port: int = 0
    ) -> None:
        if producer not in self.operators or consumer not in self.operators:
            raise ExecutionError("connect() requires operators added to the graph")
        consumer._register_input(port)
        producer._subscribe(consumer, port)

    def source_labels(self) -> set[Label]:
        return set(self.sources)

    def push(self, label: Label, event: Event) -> None:
        source = self.sources.get(label)
        if source is None:
            return  # edges with labels not used by the query are discarded
        source.push(event)

    def push_watermark(self, t: int) -> None:
        for source in self.sources.values():
            source.push_watermark(t)

    def state_size(self) -> int:
        """Total retained state across operators (for memory diagnostics)."""
        total = 0
        for op in self.operators:
            size = getattr(op, "state_size", None)
            if callable(size):
                total += size()
        return total
