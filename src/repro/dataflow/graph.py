"""Dataflow graph: operators, channels, events, batches, watermarks.

Events carry an sgt and a sign: ``+1`` for insertions, ``-1`` for explicit
deletions (negative tuples, Section 6.2.5).  Expirations due to window
movement are *not* events — they are handled by each stateful operator
when the watermark advances (the direct approach), or synthesized into
deletions internally by negative-tuple operators.

Tuples move through the topology either one at a time (:meth:`emit` /
:meth:`PhysicalOperator.on_event`) or as :class:`~repro.core.batch.DeltaBatch`
groups sharing a slide epoch (:meth:`emit_batch` /
:meth:`PhysicalOperator.on_batch`).  The base class provides a per-tuple
fallback shim for ``on_batch``: incoming events are replayed through
``on_event`` while emissions are captured, then forwarded downstream as
one batch — so any operator participates in batched execution, and hot
operators override ``on_batch`` with real bulk implementations.  Batches
preserve arrival order exactly; order is semantically significant (a
retraction must observe the insertions that preceded it, and expand-only
operators keep the *first* derivation they find).

Watermark propagation follows Timely's frontier rule: an operator acts on
the minimum watermark across its input ports, so diamonds in the graph
never observe time moving backwards.
"""

from __future__ import annotations

from typing import Callable

from repro.core.batch import DeltaBatch
from repro.core.coalesce import coalesce_stream
from repro.core.columns import ColumnBuilder
from repro.core.intervals import Interval, net_cover
from repro.core.nplib import as_list
from repro.core.tuples import SGE, SGT, EdgePayload, Label, PathPayload, Vertex
from repro.errors import ExecutionError

INSERT = 1
DELETE = -1


class Event:
    """An insertion (+1) or explicit deletion (-1) of an sgt.

    A hand-written ``__slots__`` value class: per-tuple execution
    allocates one per operator hop, so construction cost is hot (batched
    execution avoids the wrapper entirely for insert-only batches).
    """

    __slots__ = ("sgt", "sign")

    def __init__(self, sgt: SGT, sign: int = INSERT):
        if sign != INSERT and sign != DELETE:
            raise ExecutionError(f"invalid event sign {sign}")
        self.sgt = sgt
        self.sign = sign

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Event:
            return self.sgt == other.sgt and self.sign == other.sign  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.sgt, self.sign))

    def __repr__(self) -> str:
        return f"Event(sgt={self.sgt!r}, sign={self.sign!r})"


class PhysicalOperator:
    """Base class for physical operators.

    Subclasses implement :meth:`on_event` (per-tuple processing; push
    outputs with :meth:`emit` or :meth:`emit_sgt`) and optionally
    :meth:`on_advance` (state purge when the watermark moves).  Batched
    execution goes through :meth:`on_batch`, whose default implementation
    replays the batch per tuple while capturing emissions, then flushes
    them downstream as one batch; hot operators override it.
    """

    def __init__(self, name: str):
        self.name = name
        self._downstream: list[tuple["PhysicalOperator", int]] = []
        self._input_watermarks: dict[int, int] = {}
        self._watermark = -1
        #: number of input ports; maintained by DataflowGraph.connect
        self.arity = 0
        #: emission-capture buffers, active only while a batch is being
        #: processed (see :meth:`_begin_batch` / :meth:`_end_batch`)
        self._capture_sgts: list[SGT] | None = None
        self._capture_signs: list[int] = []
        self._capture_mixed = False
        #: columnar emission capture (see :meth:`_begin_batch_cols`):
        #: operators consuming a columnar batch append scalar output rows
        #: here instead of constructing sgts
        self._capture_cols: ColumnBuilder | None = None

    # ------------------------------------------------------------------
    # Wiring (used by DataflowGraph)
    # ------------------------------------------------------------------
    def _subscribe(self, consumer: "PhysicalOperator", port: int) -> None:
        self._downstream.append((consumer, port))

    def _register_input(self, port: int) -> None:
        self._input_watermarks[port] = -1
        self.arity = max(self.arity, port + 1)

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        captured = self._capture_sgts
        if captured is not None:
            captured.append(event.sgt)
            self._capture_signs.append(event.sign)
            if event.sign != INSERT:
                self._capture_mixed = True
            return
        if self._capture_cols is not None:
            sgt = event.sgt
            self._append_col(sgt.src, sgt.trg, sgt.label, sgt.interval, event.sign)
            return
        for consumer, port in self._downstream:
            consumer.on_event(port, event)

    def emit_sgt(self, sgt: SGT, sign: int = INSERT) -> None:
        """Emit without allocating an :class:`Event` while capturing.

        Equivalent to ``emit(Event(sgt, sign))`` but batch implementations
        that route through it never pay the wrapper allocation when the
        output is being collected into a batch.
        """
        captured = self._capture_sgts
        if captured is not None:
            captured.append(sgt)
            self._capture_signs.append(sign)
            if sign != INSERT:
                self._capture_mixed = True
            return
        if self._capture_cols is not None:
            self._append_col(sgt.src, sgt.trg, sgt.label, sgt.interval, sign)
            return
        event = Event(sgt, sign)
        for consumer, port in self._downstream:
            consumer.on_event(port, event)

    def _append_col(
        self, src, trg, label: Label, interval: Interval, sign: int
    ) -> None:
        """Route a stray row emission into the active columnar capture."""
        cols = self._capture_cols
        assert cols is not None
        if label != cols.label:
            raise ExecutionError(
                f"{self.name}: emission labeled {label!r} during columnar "
                f"capture of {cols.label!r}"
            )
        cols.append(src, trg, interval.ts, interval.exp, sign)

    def on_event(self, port: int, event: Event) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch flow
    # ------------------------------------------------------------------
    def emit_batch(self, batch: DeltaBatch) -> None:
        """Forward a batch downstream.

        Batches flow *along linear edges only*: with a single subscriber
        the whole batch is handed over in one call.  At a fanout point —
        several subscriptions, which includes one consumer subscribed on
        several ports (a self-join) and diamonds that reconverge further
        down — delivery degrades to per-event emission in exactly the
        per-tuple interleaving (event 1 to every subscriber, then event
        2, …).  Handing whole batches to each subscriber in turn would
        reorder events *across ports* relative to per-tuple execution,
        and order-sensitive consumers (the expand-only negative-tuple
        PATH keeps the first derivation it finds) would produce
        different results.
        """
        if not len(batch):
            return
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_batch(port, batch)
            return
        if not downstream:
            return
        for sgt, sign in batch.events():
            event = Event(sgt, sign)
            for consumer, port in downstream:
                consumer.on_event(port, event)

    def on_sge_batch(self, port: int, boundary: int, edges: list[SGE]) -> None:
        """Process one batch of raw input sges from a source.

        The default shim wraps each sge into its minimal ``[t, t+1)`` NOW
        sgt and processes the result as a :class:`DeltaBatch`; WSCAN
        overrides this to assign the real window intervals directly from
        the sges, skipping the intermediate NOW tuples entirely.
        """
        sgts = [
            SGT(e.src, e.trg, e.label, Interval(e.t, e.t + 1)) for e in edges
        ]
        self.on_batch(port, DeltaBatch(boundary, sgts))

    def on_edge(self, port: int, src, dst, t: int, label: Label) -> None:
        """Process one raw input edge as bare scalars.

        The columnar executor dispatches short same-label runs per edge;
        this entry point skips the intermediate NOW-sgt/Event pair the
        classic ``push`` path allocates.  WSCAN overrides it to window
        the edge directly; the default shim reconstructs the NOW event
        for any other consumer wired to a source.
        """
        self.on_event(
            port, Event(SGT(src, dst, label, Interval(t, t + 1)))
        )

    def on_edge_columns(
        self,
        port: int,
        boundary: int,
        label: Label,
        src: list[int],
        dst: list[int],
        ts: list[int],
    ) -> None:
        """Process one batch of raw input edges in columnar form.

        The columnar executor interns vertices at ingress and hands each
        same-label run to the sources as three parallel scalar columns.
        WSCAN overrides this with a column-at-a-time windowing pass; the
        default shim reconstructs sges (carrying interned ids) for any
        other consumer wired directly to a source.
        """
        self.on_sge_batch(
            port,
            boundary,
            [
                SGE(s, d, label, t)
                # as_list: vector-mode arrays must materialize to plain
                # ints before entering row-land (sges are row values).
                for s, d, t in zip(as_list(src), as_list(dst), as_list(ts))
            ],
        )

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Process one delta batch; the default is a per-tuple shim.

        Events are replayed in arrival order through :meth:`on_event`
        while emissions are captured, then flushed downstream as a single
        batch — one downstream call per batch instead of one per tuple.
        """
        self._begin_batch()
        try:
            on_event = self.on_event
            signs = batch.signs
            if signs is None:
                for sgt in batch.sgts:
                    on_event(port, Event(sgt, INSERT))
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    on_event(port, Event(sgt, sign))
        finally:
            self._end_batch(batch.boundary)

    def _begin_batch(self) -> None:
        """Start capturing emissions into a batch buffer."""
        if self._capture_sgts is not None or self._capture_cols is not None:
            raise ExecutionError(f"{self.name}: nested batch processing")
        self._capture_sgts = []
        self._capture_signs = []
        self._capture_mixed = False

    def _end_batch(self, boundary: int) -> None:
        """Stop capturing and flush collected emissions downstream."""
        sgts = self._capture_sgts
        signs = self._capture_signs if self._capture_mixed else None
        self._capture_sgts = None
        self._capture_signs = []
        if sgts:
            self.emit_batch(DeltaBatch(boundary, sgts, signs))

    def _begin_batch_cols(self, label: Label) -> None:
        """Start capturing emissions as scalar columns under ``label``.

        Used by operators processing a columnar batch whose outputs are
        payload-free and label-constant; the operator appends scalar
        rows to ``self._capture_cols`` directly (any stray
        :meth:`emit_sgt` is routed into the builder too).
        """
        if self._capture_sgts is not None or self._capture_cols is not None:
            raise ExecutionError(f"{self.name}: nested batch processing")
        self._capture_cols = ColumnBuilder(label)

    def _end_batch_cols(self, boundary: int) -> None:
        """Stop columnar capture and flush one columnar batch downstream."""
        builder = self._capture_cols
        self._capture_cols = None
        if builder is not None and len(builder):
            columns, signs = builder.take()
            self.emit_batch(DeltaBatch(boundary, signs=signs, columns=columns))

    # ------------------------------------------------------------------
    # Progress (watermarks)
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        return self._watermark

    def receive_watermark(self, port: int, t: int) -> None:
        """Record an upstream watermark; advance when the frontier moves."""
        watermarks = self._input_watermarks
        current = watermarks.get(port, -1)
        if t < current:
            raise ExecutionError(
                f"{self.name}: watermark regression on port {port}: {t} < {current}"
            )
        watermarks[port] = t
        if len(watermarks) <= 1:
            # Single input port (the overwhelmingly common wiring): the
            # frontier is the port's own watermark — skip the min().
            frontier = t
        else:
            frontier = min(watermarks.values())
        if frontier > self._watermark:
            self._watermark = frontier
            self.on_advance(frontier)
            for consumer, consumer_port in self._downstream:
                consumer.receive_watermark(consumer_port, frontier)

    def on_advance(self, t: int) -> None:
        """Hook: the window has advanced to instant ``t``.

        Stateful operators purge state with ``exp <= t`` here; the default
        is a no-op.  Emissions from this hook are allowed (negative-tuple
        operators emit retractions and re-derivations).
        """

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict | None:
        """Serializable operator state, or ``None`` for stateless
        operators.  Stateful operators override this together with
        :meth:`restore_state`; snapshots are only taken at a watermark
        boundary with no batch in flight."""
        return None

    def restore_state(self, state: dict) -> None:
        """Load a state blob captured by :meth:`snapshot_state`."""
        from repro.errors import CheckpointError

        raise CheckpointError(
            f"{self.name} is stateless but a state blob was provided"
        )

    def state_breakdown(self) -> dict | None:
        """``{"rows": n, "bytes": estimate}`` for stateful operators
        (``None`` for stateless ones).  Bytes are a structural estimate —
        cheap enough for ``/metrics``, close enough to size checkpoints."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class SourceOp(PhysicalOperator):
    """Entry point of a dataflow: forwards externally pushed events.

    One source exists per input label; the executor routes each incoming
    sge to the source of its label.
    """

    def __init__(self, label: Label):
        super().__init__(f"source[{label}]")
        self.label = label

    def push(self, event: Event) -> None:
        self.emit(event)

    def push_sges(self, boundary: int, edges: list[SGE]) -> None:
        """Forward one batch of raw input sges (batched executor path).

        Same fanout rule as :meth:`PhysicalOperator.emit_batch`: the
        whole batch flows only along a linear edge; with several
        subscribers (e.g. two WSCANs windowing the same label) delivery
        falls back to per-event pushes in per-tuple interleaving.
        """
        if not edges:
            return
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_sge_batch(port, boundary, edges)
            return
        if not downstream:
            return
        for e in edges:
            event = Event(SGT(e.src, e.trg, e.label, Interval(e.t, e.t + 1)))
            for consumer, port in downstream:
                consumer.on_event(port, event)

    def push_scalar(self, src, dst, t: int) -> None:
        """Forward one raw input edge as bare scalars (columnar-executor
        per-edge path for runs too short to batch).  Linear edges reach
        the consumer's :meth:`~PhysicalOperator.on_edge` with no
        intermediate objects; fanout falls back to one NOW event shared
        by every subscriber (per-tuple interleaving preserved)."""
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_edge(port, src, dst, t, self.label)
            return
        if not downstream:
            return
        event = Event(SGT(src, dst, self.label, Interval(t, t + 1)))
        for consumer, port in downstream:
            consumer.on_event(port, event)

    def push_columns(
        self,
        boundary: int,
        src: list[int],
        dst: list[int],
        ts: list[int],
    ) -> None:
        """Forward one batch of raw input edges as scalar columns.

        Same fanout rule as :meth:`push_sges`: whole batches flow only
        along linear edges; with several subscribers delivery falls back
        to per-event pushes in per-tuple interleaving (the events carry
        the interned ids the columns hold).
        """
        if len(src) == 0:
            return
        downstream = self._downstream
        if len(downstream) == 1:
            consumer, port = downstream[0]
            consumer.on_edge_columns(port, boundary, self.label, src, dst, ts)
            return
        if not downstream:
            return
        label = self.label
        # Fanout materializes rows: plain ints only (vector-mode arrays
        # are converted in one C call per column).
        src, dst, ts = as_list(src), as_list(dst), as_list(ts)
        for s, d, t in zip(src, dst, ts):
            event = Event(SGT(s, d, label, Interval(t, t + 1)))
            for consumer, port in downstream:
                consumer.on_event(port, event)

    def push_watermark(self, t: int) -> None:
        # Sources have a single implicit input port 0 driven by the
        # executor.
        self.receive_watermark(0, t)

    def on_event(self, port: int, event: Event) -> None:  # pragma: no cover
        raise ExecutionError("sources do not consume events")


class SinkOp(PhysicalOperator):
    """Terminal operator collecting result events.

    Keeps every event in arrival order; :meth:`coverage` folds insertions
    and retractions into per-key disjoint validity covers, and
    :meth:`results` returns the coalesced sgts (set semantics).

    Under interned execution the arriving events carry dense vertex ids;
    an attached ``interner`` decodes them back to the original values at
    read time (``results`` / ``coverage`` / ``valid_at``), or eagerly on
    arrival when ``decode_eagerly`` is set (tap sinks, whose raw
    ``events`` are user-facing).

    Batches are retained as-is and unwrapped into events lazily: result
    delivery inside the timed execution loop is one list append per
    batch, and the per-event ``Event`` wrappers are built only when a
    reader (or an installed callback, which needs push delivery) asks
    for them.
    """

    def __init__(self, name: str = "sink", callback: Callable[[Event], None] | None = None):
        super().__init__(name)
        self._events: list[Event] = []
        #: arrived-but-not-yet-unwrapped batches, in arrival order
        #: relative to ``_events`` (deferred only while no callback is
        #: installed; a marker of the split position is not needed
        #: because deferral stops as soon as a callback exists)
        self._pending: list[DeltaBatch] = []
        self._callback = callback
        #: the engine's vertex interner, when interned ids flow here
        self.interner = None
        #: decode events on arrival instead of at read time
        self.decode_eagerly = False

    @property
    def events(self) -> list[Event]:
        """Every received event, in arrival order (unwraps pending
        batches on access)."""
        if self._pending:
            self._drain_pending()
        return self._events

    def _drain_pending(self) -> None:
        pending = self._pending
        self._pending = []
        for batch in pending:
            self._events.extend(self._batch_events(batch))

    def _batch_events(self, batch: DeltaBatch) -> list[Event]:
        signs = batch.signs
        if signs is None:
            arrived = [Event(sgt) for sgt in batch.sgts]
        else:
            arrived = [Event(sgt, sign) for sgt, sign in zip(batch.sgts, signs)]
        if self.decode_eagerly and self.interner is not None:
            decode = self.interner.decode_event
            arrived = [decode(event) for event in arrived]
        return arrived

    def set_callback(self, callback: Callable[[Event], None] | None) -> None:
        """Install (or clear) a per-event delivery callback.

        The callback observes the raw signed event stream — exactly what
        :meth:`results` coalesces — so push (callback) and pull
        (:meth:`results`) consumers see the same data.
        """
        if self._pending:
            self._drain_pending()
        self._callback = callback

    def on_event(self, port: int, event: Event) -> None:
        if self.decode_eagerly and self.interner is not None:
            event = self.interner.decode_event(event)
        if self._pending:
            self._drain_pending()
        self._events.append(event)
        if self._callback is not None:
            self._callback(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        if self._callback is None:
            # No push consumer: retain the batch, unwrap at read time.
            self._pending.append(batch)
            return
        if self._pending:
            self._drain_pending()
        arrived = self._batch_events(batch)
        self._events.extend(arrived)
        for event in arrived:
            self._callback(event)

    @property
    def insert_count(self) -> int:
        return sum(1 for e in self.events if e.sign == INSERT)

    def coverage(self) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
        """Net validity cover per (src, trg, label) after applying signs.

        Counting semantics: retracting one of several overlapping
        derivations keeps the instants the others still support.
        """
        return events_coverage(self.events, self._key_decoder())

    def results(self) -> list[SGT]:
        """Coalesced insert-side sgts (ignores retractions); see
        :meth:`coverage` for sign-aware folding."""
        inserts = (e.sgt for e in self.events if e.sign == INSERT)
        if self.interner is not None and not self.decode_eagerly:
            decode = self.interner.decode_sgt
            inserts = (decode(sgt) for sgt in inserts)
        return coalesce_stream(inserts)

    def _key_decoder(self):
        if self.interner is not None and not self.decode_eagerly:
            return self.interner.decode_key
        return None

    def valid_at(self, t: int) -> set[tuple[Vertex, Vertex, Label]]:
        """Keys whose net validity cover contains instant ``t``."""
        return {
            key
            for key, intervals in self.coverage().items()
            if any(iv.contains(t) for iv in intervals)
        }

    def clear(self) -> None:
        self._events.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"kind": "sink", "events": encode_events(self.events)}

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "sink":
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"operator {self.name}: expected a sink state blob, got "
                f"kind={state.get('kind')!r}"
            )
        self._pending = []
        self._events = decode_events(state["events"])

    def state_breakdown(self) -> dict:
        rows = len(self.events)
        return {"rows": rows, "bytes": rows * 120}


def encode_events(events: list[Event]) -> list[tuple]:
    """Sink events as plain tuples for checkpoint blobs.

    Default (edge) payloads are reconstructed lazily by ``SGT.payload``,
    so only materialized :class:`PathPayload` hops are captured.
    """
    rows = []
    for event in events:
        sgt = event.sgt
        payload = sgt._payload
        if payload is not None and payload.__class__ is PathPayload:
            hops = tuple(
                (hop.src, hop.trg, hop.label) for hop in payload.hops
            )
        else:
            hops = None
        rows.append(
            (
                sgt.src,
                sgt.trg,
                sgt.label,
                sgt.interval.ts,
                sgt.interval.exp,
                hops,
                event.sign,
            )
        )
    return rows


def decode_events(rows: list[tuple]) -> list[Event]:
    """Rebuild :func:`encode_events` tuples into sink events."""
    out = []
    for src, trg, label, ts, exp, hops, sign in rows:
        payload = (
            PathPayload(
                tuple(EdgePayload(h_src, h_trg, h_label) for h_src, h_trg, h_label in hops)
            )
            if hops is not None
            else None
        )
        out.append(Event(SGT(src, trg, label, Interval(ts, exp), payload), sign))
    return out


def events_coverage(
    events: list[Event], decode: Callable[[tuple], tuple] | None = None
) -> dict[tuple[Vertex, Vertex, Label], list[Interval]]:
    """Net validity cover per result key over a signed event stream.

    The one implementation of the counting-semantics fold (retracting
    one of several overlapping derivations keeps the instants the
    others still support), shared by :meth:`SinkOp.coverage` and the
    sharded engine's merged-sink reads.  ``decode`` optionally maps
    interned result keys back to original vertex values.
    """
    plus: dict[tuple, list[Interval]] = {}
    minus: dict[tuple, list[Interval]] = {}
    for event in events:
        bucket = plus if event.sign == INSERT else minus
        bucket.setdefault(event.sgt.key(), []).append(event.sgt.interval)
    out: dict[tuple, list[Interval]] = {}
    for key, intervals in plus.items():
        remaining = net_cover(intervals, minus.get(key, []))
        if remaining:
            out[decode(key) if decode else key] = remaining
    return out


class DataflowGraph:
    """A small DAG of physical operators with explicit wiring."""

    def __init__(self) -> None:
        self.operators: list[PhysicalOperator] = []
        self.sources: dict[Label, SourceOp] = {}
        self.sinks: list[SinkOp] = []
        #: id-index over ``operators`` — membership checks (one per
        #: connect()) must not scan the list once sessions hold many
        #: queries' operators.
        self._member_ids: set[int] = set()

    def add(self, op: PhysicalOperator) -> PhysicalOperator:
        self.operators.append(op)
        self._member_ids.add(id(op))
        if isinstance(op, SourceOp):
            if op.label in self.sources:
                raise ExecutionError(f"duplicate source for label {op.label!r}")
            self.sources[op.label] = op
        if isinstance(op, SinkOp):
            self.sinks.append(op)
        return op

    def add_source(self, label: Label) -> SourceOp:
        existing = self.sources.get(label)
        if existing is not None:
            return existing
        source = SourceOp(label)
        return self.add(source)  # type: ignore[return-value]

    def connect(
        self, producer: PhysicalOperator, consumer: PhysicalOperator, port: int = 0
    ) -> None:
        if id(producer) not in self._member_ids or id(consumer) not in self._member_ids:
            raise ExecutionError("connect() requires operators added to the graph")
        consumer._register_input(port)
        producer._subscribe(consumer, port)

    def producer_of(self, consumer: PhysicalOperator) -> PhysicalOperator | None:
        """The operator feeding ``consumer``, if any (first match)."""
        for op in self.operators:
            for candidate, _ in op._downstream:
                if candidate is consumer:
                    return op
        return None

    def prune(self, sinks: list[SinkOp]) -> list[PhysicalOperator]:
        """Remove ``sinks`` and every operator reachable *only* through them.

        Liveness is computed upstream from the remaining sinks (query
        sinks and taps alike): an operator survives iff some retained
        sink still consumes — directly or transitively — from it.
        Subscriptions from surviving producers to removed consumers are
        severed, so shared operators keep streaming to the queries that
        remain.  Returns the removed operators (callers evict compilation
        cache entries pointing at them).
        """
        removed = set(sinks)
        kept_sinks = [s for s in self.sinks if s not in removed]
        producers: dict[PhysicalOperator, list[PhysicalOperator]] = {}
        for op in self.operators:
            for consumer, _ in op._downstream:
                producers.setdefault(consumer, []).append(op)
        live: set[PhysicalOperator] = set()
        stack: list[PhysicalOperator] = list(kept_sinks)
        while stack:
            op = stack.pop()
            if op in live:
                continue
            live.add(op)
            stack.extend(producers.get(op, ()))
        dead = [op for op in self.operators if op not in live]
        self.operators = [op for op in self.operators if op in live]
        self._member_ids = {id(op) for op in self.operators}
        self.sinks = kept_sinks
        self.sources = {
            label: source
            for label, source in self.sources.items()
            if source in live
        }
        for op in self.operators:
            op._downstream = [
                (consumer, port)
                for consumer, port in op._downstream
                if consumer in live
            ]
        return dead

    def sync_watermarks(self) -> None:
        """Align consumer input watermarks with their producers'.

        Used when splicing new operators into a *live* dataflow: a cached
        (shared) producer only re-announces its watermark on the next
        frontier movement, so a freshly attached consumer would otherwise
        lag one slide behind.  ``receive_watermark`` cascades, so one
        sweep over all edges converges.
        """
        for op in list(self.operators):
            wm = op._watermark
            if wm < 0:
                continue
            for consumer, port in list(op._downstream):
                if consumer._input_watermarks.get(port, -1) < wm:
                    consumer.receive_watermark(port, wm)

    def source_labels(self) -> set[Label]:
        return set(self.sources)

    def push(self, label: Label, event: Event) -> None:
        source = self.sources.get(label)
        if source is None:
            return  # edges with labels not used by the query are discarded
        source.push(event)

    def push_watermark(self, t: int) -> None:
        for source in self.sources.values():
            source.push_watermark(t)

    def state_size(self) -> int:
        """Total retained state across operators (for memory diagnostics)."""
        total = 0
        for op in self.operators:
            size = getattr(op, "state_size", None)
            if callable(size):
                total += size()
        return total

    def state_breakdown(self) -> dict[str, dict]:
        """Per-operator ``{"rows", "bytes"}`` estimates for every
        stateful operator, keyed on operator name (diagnostics surface;
        exposed through engine ``stats()`` and the server's /metrics)."""
        out: dict[str, dict] = {}
        for op in self.operators:
            breakdown = op.state_breakdown()
            if breakdown is None:
                continue
            merged = out.get(op.name)
            if merged is None:
                out[op.name] = dict(breakdown)
            else:
                # Two instances may share a name (one per query); the
                # metrics surface aggregates them.
                merged["rows"] += breakdown["rows"]
                merged["bytes"] += breakdown["bytes"]
        return out
