"""Push-based dataflow substrate (Section 6.1).

A miniature Timely-Dataflow-style execution layer: physical operators are
vertices of a directed graph; :class:`~repro.dataflow.executor.Executor`
pushes streaming graph events through the graph in event-time order and
advances a watermark at window-slide boundaries so stateful operators can
purge expired state (the *direct* approach) or synthesize expirations
(the *negative-tuple* approach).
"""

from repro.dataflow.graph import DataflowGraph, Event, PhysicalOperator, SinkOp, SourceOp
from repro.dataflow.executor import Executor, SlideStats

__all__ = [
    "Event",
    "PhysicalOperator",
    "DataflowGraph",
    "SourceOp",
    "SinkOp",
    "Executor",
    "SlideStats",
]
