"""Event-time executor driving a dataflow over an input graph stream.

The executor consumes sges in timestamp order.  Whenever an edge's
timestamp crosses a slide boundary (multiples of the query's slide
interval ``beta``), the watermark advances first — stateful operators
purge or expire — and only then is the edge pushed.  Per-slide wall-clock
times are recorded so the benchmark harness can report the paper's two
metrics: aggregate throughput (edges/s) and tail (p99) slide latency.

Windowing is *not* the executor's job: sources emit sgts with the minimal
``[t, t+1)`` NOW interval and the WSCAN physical operators assign real
validity intervals (Definition 16), which is what lets a single query mix
windows of different lengths over different input streams (Example 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, sgt_from_sge
from repro.dataflow.graph import DELETE, INSERT, DataflowGraph, Event


@dataclass
class SlideStats:
    """Wall-clock accounting for one window slide."""

    boundary: int
    seconds: float = 0.0
    edges: int = 0


@dataclass
class RunStats:
    """Aggregate statistics of one execution."""

    slides: list[SlideStats] = field(default_factory=list)
    total_edges: int = 0
    total_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Edges per second over the whole run."""
        if self.total_seconds == 0:
            return float("inf")
        return self.total_edges / self.total_seconds

    def tail_latency(self, quantile: float = 0.99) -> float:
        """The ``quantile`` (default p99) of per-slide processing time."""
        if not self.slides:
            return 0.0
        ordered = sorted(s.seconds for s in self.slides)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]


class Executor:
    """Drives a dataflow graph over an sge stream in event time.

    Parameters
    ----------
    graph:
        The physical dataflow.
    slide:
        The slide interval ``beta`` at which the watermark advances.
    """

    def __init__(self, graph: DataflowGraph, slide: int = 1):
        if slide <= 0:
            raise ValueError(f"slide must be positive, got {slide}")
        self.graph = graph
        self.slide = slide
        self._current_boundary: int | None = None

    def run(self, stream: Iterable[SGE]) -> RunStats:
        """Process the whole stream; returns per-slide timing statistics."""
        stats = RunStats()
        current: SlideStats | None = None
        start = time.perf_counter()
        slide_start = start

        for edge in stream:
            boundary = self._boundary(edge.t)
            if current is None or boundary > current.boundary:
                now = time.perf_counter()
                if current is not None:
                    current.seconds = now - slide_start
                    stats.slides.append(current)
                slide_start = now
                current = SlideStats(boundary=boundary)
                self._advance(boundary)
            self.graph.push(edge.label, Event(_now_sgt(edge), INSERT))
            current.edges += 1
            stats.total_edges += 1

        end = time.perf_counter()
        if current is not None:
            current.seconds = end - slide_start
            stats.slides.append(current)
        stats.total_seconds = end - start
        return stats

    # ------------------------------------------------------------------
    # Step-wise API (used by the engine facade and by tests)
    # ------------------------------------------------------------------
    def push_edge(self, edge: SGE) -> None:
        """Advance the watermark if needed, then insert one edge."""
        self._advance(self._boundary(edge.t))
        self.graph.push(edge.label, Event(_now_sgt(edge), INSERT))

    def delete_edge(self, edge: SGE) -> None:
        """Explicitly delete a previously inserted edge (negative tuple).

        WSCAN assigns intervals deterministically, so replaying the edge
        with a negative sign reaches stateful operators with exactly the
        interval the insertion carried.
        """
        self.graph.push(edge.label, Event(_now_sgt(edge), DELETE))

    def advance_to(self, t: int) -> None:
        """Advance the watermark to the slide boundary at or before t."""
        self._advance(self._boundary(t))

    def _boundary(self, t: int) -> int:
        return (t // self.slide) * self.slide

    def _advance(self, boundary: int) -> None:
        """Advance the watermark through every slide boundary up to
        ``boundary``.

        A time-based sliding window moves at *every* multiple of the slide
        interval, whether or not edges arrived in between (Definition 16);
        the negative-tuple PATH operator performs its expiry re-derivations
        exactly on those movements, so boundaries must not be skipped.
        """
        if self._current_boundary is None:
            self._current_boundary = boundary
            self.graph.push_watermark(boundary)
            return
        while self._current_boundary < boundary:
            self._current_boundary += self.slide
            self.graph.push_watermark(self._current_boundary)


def _now_sgt(edge: SGE) -> SGT:
    """Wrap an sge with the minimal single-instant NOW interval."""
    return sgt_from_sge(edge, Interval(edge.t, edge.t + 1))
