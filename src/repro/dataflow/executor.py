"""Event-time executor driving a dataflow over an input graph stream.

The executor consumes sges in timestamp order.  Whenever an edge's
timestamp crosses a slide boundary (multiples of the query's slide
interval ``beta``), the watermark advances first — stateful operators
purge or expire — and only then are edges pushed.  Per-slide wall-clock
times are recorded so the benchmark harness can report the paper's two
metrics: aggregate throughput (edges/s) and tail (p99) slide latency.

Execution granularity: edges are accumulated per slide by the shared
:class:`~repro.core.batch.BatchScheduler` (the same driver the DD
baseline uses) and applied either one tuple at a time
(``batch_size=None``, the original per-tuple semantics) or as
:class:`~repro.core.batch.DeltaBatch` groups flushed through the operator
topology (``batch_size=n``).  Batched and per-tuple execution produce
identical results because every operator observes the same event order
as in per-tuple mode: within one slide the batches are split into
consecutive same-label runs, and batches flow only along *linear* edges
of the dataflow — at fanout points (one producer feeding several
subscriptions, e.g. a self-join's two ports or a reconverging diamond)
delivery degrades to per-event emission in exact per-tuple interleaving
(see :meth:`repro.dataflow.graph.PhysicalOperator.emit_batch`).

Late edges (timestamps behind the current slide boundary): the watermark
never regresses, and a late edge is **never reassigned to the current
slide** — WSCAN derives validity from the edge's own timestamp.  The
``late_policy`` parameter selects what happens to it:

* ``"allow"`` (default) — process it with its true timestamp; results
  that would have involved already-purged state may be missed.
* ``"drop"`` — discard it and count it in :attr:`Executor.late_count`.
* ``"raise"`` — raise :class:`~repro.errors.StreamOrderError`.

For bounded disorder, compose with
:func:`repro.dataflow.disorder.reorder`, which restores timestamp order
upstream of the executor.

Windowing is *not* the executor's job: sources emit sgts with the minimal
``[t, t+1)`` NOW interval and the WSCAN physical operators assign real
validity intervals (Definition 16), which is what lets a single query mix
windows of different lengths over different input streams (Example 4).
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.batch import BatchScheduler, RunStats, SlideStats
from repro.core.intervals import Interval
from repro.core.nplib import np, require_numpy
from repro.core.tuples import SGE, SGT, sgt_from_sge
from repro.dataflow.graph import DELETE, INSERT, DataflowGraph, Event
from repro.errors import StreamOrderError

__all__ = ["Executor", "RunStats", "SlideStats"]

#: Late-edge policies (see module docstring).
LATE_POLICIES = ("allow", "drop", "raise")


class Executor:
    """Drives a dataflow graph over an sge stream in event time.

    Parameters
    ----------
    graph:
        The physical dataflow.
    slide:
        The slide interval ``beta`` at which the watermark advances.
    batch_size:
        ``None`` preserves per-tuple execution; a positive integer flushes
        :class:`~repro.core.batch.DeltaBatch` groups of up to that many
        edges through the topology, amortizing per-operator-hop call
        overhead across the batch.
    late_policy:
        What to do with edges behind the current watermark boundary
        (``"allow"``, ``"drop"`` or ``"raise"``; see module docstring).
    interner:
        When given, the executor runs in *columnar* mode: vertices are
        dictionary-encoded to dense ids at ingress (every ingress path —
        bulk runs, single pushes and explicit deletions — interns through
        the same table), and ``run`` flushes each same-label run as
        parallel scalar columns instead of per-tuple events
        (``batch_size`` still caps flush sizes).  Sinks attached to the
        graph must decode through the same interner; the engine session
        wires this up.
    columnar_min_run:
        Minimum same-label run length that flows as a columnar batch
        (``None`` keeps the class default, see :attr:`columnar_min_run`).
    vector:
        When true (requires ``interner`` and numpy), ingress runs flow
        as numpy int64 column arrays and — when :attr:`vector_grouped`
        is left on — each slide's edges are grouped per source label (in
        first-appearance order) instead of segmented into consecutive
        same-label runs, which is what lets interleaved multi-label
        streams form batches long enough to vectorize.  The engine
        session only enables grouping when its compile-time analysis
        proves the registered plans are insensitive to cross-label
        reordering within a slide (see
        :func:`repro.ql.pipeline.vector_ingress_mode`).
    """

    def __init__(
        self,
        graph: DataflowGraph,
        slide: int = 1,
        batch_size: int | None = None,
        late_policy: str = "allow",
        interner=None,
        columnar_min_run: int | None = None,
        vector: bool = False,
    ):
        if slide <= 0:
            raise ValueError(f"slide must be positive, got {slide}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if late_policy not in LATE_POLICIES:
            raise ValueError(
                f"unknown late policy {late_policy!r}; expected one of {LATE_POLICIES}"
            )
        if columnar_min_run is not None:
            if columnar_min_run < 1:
                raise ValueError(
                    f"columnar_min_run must be >= 1, got {columnar_min_run}"
                )
            self.columnar_min_run = columnar_min_run
        if vector:
            require_numpy('Executor(vector=True)')
            if interner is None:
                raise ValueError("vector execution requires an interner")
        self.graph = graph
        self.slide = slide
        self.batch_size = batch_size
        self.late_policy = late_policy
        self.interner = interner
        self.vector = vector
        #: Per-slide label grouping (vector mode only); the engine flips
        #: this off when a registered plan is order-sensitive across
        #: labels (see the ``vector`` parameter).  Off means vector mode
        #: falls back to the same-label run segmentation of columnar
        #: mode — arrays still flow, batches are just shorter.
        self.vector_grouped = True
        #: Late edges discarded under ``late_policy="drop"``.
        self.late_count = 0
        #: Wall-clock time of the most recent window movement (None
        #: before the first edge) — the observability hook behind
        #: ``QueryHandle.stats()`` and the serving layer's watermark-lag
        #: metric.  Written once per boundary movement, not per edge.
        self.last_advance_at: float | None = None
        self._current_boundary: int | None = None

    @property
    def current_boundary(self) -> int | None:
        """The slide boundary the watermark has advanced to (``None``
        before the first edge)."""
        return self._current_boundary

    def run(self, stream: Iterable[SGE]) -> RunStats:
        """Process the whole stream; returns per-slide timing statistics."""
        if self.vector:
            apply = self._apply_vector
        elif self.interner is not None:
            apply = self._apply_columnar
        elif self.batch_size is None:
            apply = self._apply_tuples
        else:
            apply = self._apply_batch
        scheduler = BatchScheduler(
            self.slide,
            self.batch_size,
            on_late=None if self.late_policy == "allow" else self._on_late,
        )
        return scheduler.run(stream, apply)

    # ------------------------------------------------------------------
    # Step-wise API (used by the engine facade and by tests)
    # ------------------------------------------------------------------
    def push_edge(self, edge: SGE) -> None:
        """Advance the watermark if needed, then insert one edge."""
        boundary = self._boundary(edge.t)
        if (
            self._current_boundary is not None
            and boundary < self._current_boundary
            and self.late_policy != "allow"
            and not self._on_late(edge, self._current_boundary)
        ):
            return
        self._advance(boundary)
        if self.interner is not None:
            edge = self._intern_edge(edge)
        self.graph.push(edge.label, Event(_now_sgt(edge), INSERT))

    def delete_edge(self, edge: SGE) -> None:
        """Explicitly delete a previously inserted edge (negative tuple).

        WSCAN assigns intervals deterministically, so replaying the edge
        with a negative sign reaches stateful operators with exactly the
        interval the insertion carried.
        """
        if self.interner is not None:
            edge = self._intern_edge(edge)
        self.graph.push(edge.label, Event(_now_sgt(edge), DELETE))

    def advance_to(self, t: int) -> None:
        """Advance the watermark to the slide boundary at or before t."""
        self._advance(self._boundary(t))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_clock(self) -> dict:
        """The executor's event-time position (taken at a boundary with
        no batch in flight)."""
        return {
            "boundary": self._current_boundary,
            "late_count": self.late_count,
        }

    def restore_clock(self, state: dict) -> None:
        """Re-announce the checkpointed watermark through the restored
        topology.

        Called *after* operator state is loaded: re-advancing at the
        pre-snapshot boundary is a no-op for every stateful operator
        (wheels already drained to the boundary, adjacency purged,
        coalescer keys re-scheduled strictly beyond it), and the sweep
        rebuilds each operator's watermark bookkeeping, which is not
        checkpointed.
        """
        self.late_count = state["late_count"]
        boundary = state["boundary"]
        if boundary is not None:
            self._current_boundary = boundary
            self.graph.push_watermark(boundary)
            self.graph.sync_watermarks()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_tuples(self, boundary: int, edges: list[SGE]) -> None:
        """Per-tuple application: one event per edge, in arrival order."""
        self._advance(boundary)
        push = self.graph.push
        for edge in edges:
            push(edge.label, Event(_now_sgt(edge), INSERT))

    def _apply_batch(self, boundary: int, edges: list[SGE]) -> None:
        """Batched application: consecutive same-label runs become
        insert-only :class:`DeltaBatch` groups flushed through the
        topology.  Splitting on label changes (rather than grouping the
        whole slide per label) preserves global arrival order, so every
        operator sees exactly the event order of per-tuple mode.  Edges
        whose label has no source are discarded *before* segmenting — the
        query never observes them, so they must not shorten runs (a query
        over one of many interleaved input labels still gets whole-batch
        runs).
        """
        self._advance(boundary)
        sources = self.graph.sources
        if len(sources) == 1:
            # Single-source fast path (common: one window per plan label
            # set): no segmentation at all.
            ((label, source),) = sources.items()
            kept = [e for e in edges if e.label == label]
            source.push_sges(boundary, kept)
            return
        kept = [e for e in edges if e.label in sources]
        i = 0
        n = len(kept)
        while i < n:
            label = kept[i].label
            j = i + 1
            while j < n and kept[j].label == label:
                j += 1
            sources[label].push_sges(boundary, kept[i:j])
            i = j

    #: Minimum same-label run length that flows as a columnar batch.
    #: Shorter runs are dispatched per event (still interned): the fixed
    #: per-batch cost — column/batch construction, capture buffers, one
    #: extra dispatch per operator hop — only amortizes across a few
    #: tuples, and heavily interleaved streams (the SNB workload carries
    #: four labels) produce runs of 2-3 edges where per-event dispatch
    #: is measurably cheaper.  Order is preserved either way, so the two
    #: forms mix freely within one slide.
    columnar_min_run = 8

    def _apply_columnar(self, boundary: int, edges: list[SGE]) -> None:
        """Columnar application: same same-label-run segmentation as
        :meth:`_apply_batch`, but each run is interned at ingress and
        flushed to its source as parallel scalar columns — no per-edge
        object of any kind flows into the dataflow.
        """
        self._advance(boundary)
        sources = self.graph.sources
        intern = self.interner.intern
        min_run = self.columnar_min_run
        if len(sources) == 1:
            ((label, source),) = sources.items()
            src: list[int] = []
            dst: list[int] = []
            ts: list[int] = []
            for e in edges:
                if e.label == label:
                    src.append(intern(e.src))
                    dst.append(intern(e.trg))
                    ts.append(e.t)
            if len(src) >= min_run:
                source.push_columns(boundary, src, dst, ts)
            else:
                push_scalar = source.push_scalar
                for s, d, t in zip(src, dst, ts):
                    push_scalar(s, d, t)
            return
        kept = [e for e in edges if e.label in sources]
        i = 0
        n = len(kept)
        while i < n:
            label = kept[i].label
            j = i + 1
            while j < n and kept[j].label == label:
                j += 1
            source = sources[label]
            if j - i >= min_run:
                run = kept[i:j]
                source.push_columns(
                    boundary,
                    [intern(e.src) for e in run],
                    [intern(e.trg) for e in run],
                    [e.t for e in run],
                )
            else:
                push_scalar = source.push_scalar
                while i < j:
                    e = kept[i]
                    push_scalar(intern(e.src), intern(e.trg), e.t)
                    i += 1
            i = j

    def _apply_vector(self, boundary: int, edges: list[SGE]) -> None:
        """Vector application: bulk-interned numpy column ingress.

        With :attr:`vector_grouped` on, one slide's edges are grouped by
        source label — groups ordered by each label's first appearance,
        rows within a group in arrival order — so interleaved
        multi-label streams form real batches (consecutive same-label
        runs are only 2-3 edges long on the benchmark workloads).
        Cross-label reordering within a slide is the *only* order
        relaxation of the vector mode; every kernel downstream is
        exactly order-preserving, and the engine enables grouping only
        for plans whose results are invariant under it.  With grouping
        off, segmentation matches :meth:`_apply_columnar` run for run.
        """
        self._advance(boundary)
        sources = self.graph.sources
        if len(sources) == 1:
            ((label, source),) = sources.items()
            self._flush_vector(
                source, boundary, [e for e in edges if e.label == label]
            )
            return
        if self.vector_grouped:
            groups: dict = {}
            for e in edges:
                run = groups.get(e.label)
                if run is None:
                    run = groups[e.label] = (
                        [] if e.label in sources else False
                    )
                if run is not False:
                    run.append(e)
            for label, run in groups.items():
                if run is not False:
                    self._flush_vector(sources[label], boundary, run)
            return
        kept = [e for e in edges if e.label in sources]
        i = 0
        n = len(kept)
        while i < n:
            label = kept[i].label
            j = i + 1
            while j < n and kept[j].label == label:
                j += 1
            self._flush_vector(sources[label], boundary, kept[i:j])
            i = j

    def _flush_vector(self, source, boundary: int, run: list[SGE]) -> None:
        """Bulk-intern one label run and push it as int64 arrays.

        Runs shorter than :attr:`columnar_min_run` dispatch per event
        (identical to columnar mode): batch overhead — array
        construction included — only amortizes across enough rows.
        """
        if not run:
            return
        interner = self.interner
        if len(run) >= self.columnar_min_run:
            src, dst, ts = interner.intern_edges(run)
            source.push_columns(
                boundary,
                np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(ts, dtype=np.int64),
            )
        else:
            intern = interner.intern
            push_scalar = source.push_scalar
            for e in run:
                push_scalar(intern(e.src), intern(e.trg), e.t)

    def _intern_edge(self, edge: SGE) -> SGE:
        intern = self.interner.intern
        return SGE(intern(edge.src), intern(edge.trg), edge.label, edge.t)

    def _on_late(self, edge: SGE, boundary: int) -> bool:
        """Apply the drop/raise late policy; True keeps the edge.

        ``boundary`` is the slide the stream has progressed to — the one
        the edge is behind.
        """
        if self.late_policy == "raise":
            raise StreamOrderError(
                f"edge at t={edge.t} (slide {self._boundary(edge.t)}) "
                f"arrived behind the slide boundary {boundary}"
            )
        self.late_count += 1
        return False

    def _boundary(self, t: int) -> int:
        return (t // self.slide) * self.slide

    def _advance(self, boundary: int) -> None:
        """Advance the watermark through every slide boundary up to
        ``boundary``.

        A time-based sliding window moves at *every* multiple of the slide
        interval, whether or not edges arrived in between (Definition 16);
        the negative-tuple PATH operator performs its expiry re-derivations
        exactly on those movements, so boundaries must not be skipped.
        """
        if self._current_boundary is None:
            self._current_boundary = boundary
            self.last_advance_at = time.time()
            self.graph.push_watermark(boundary)
            return
        if self._current_boundary < boundary:
            self.last_advance_at = time.time()
        while self._current_boundary < boundary:
            self._current_boundary += self.slide
            self.graph.push_watermark(self._current_boundary)


def _now_sgt(edge: SGE) -> SGT:
    """Wrap an sge with the minimal single-instant NOW interval."""
    return sgt_from_sge(edge, Interval(edge.t, edge.t + 1))
