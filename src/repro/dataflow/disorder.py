"""Bounded out-of-order arrival handling.

The paper assumes in-order arrival and leaves out-of-order streams as
future work (footnote 2).  This module provides the standard solution
from the stream-processing literature: a *bounded disorder buffer* that
holds arriving edges for a configurable lateness bound and releases them
in timestamp order.  Edges later than the bound are either dropped or
raised, per policy.

The buffer composes with everything downstream — the engine continues to
see a perfectly ordered stream, so no operator changes are needed.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.core.tuples import SGE
from repro.errors import StreamOrderError

#: What to do with an edge that arrives later than the lateness bound.
DROP = "drop"
RAISE = "raise"


class DisorderBuffer:
    """Reorders a stream with bounded lateness.

    Parameters
    ----------
    lateness:
        Maximum allowed disorder: an edge with timestamp ``t`` may arrive
        any time before the watermark passes ``t + lateness``.
    late_policy:
        ``"drop"`` (count and discard) or ``"raise"``.
    on_late:
        Optional callback invoked with each late edge (e.g. for a
        dead-letter stream).
    """

    def __init__(
        self,
        lateness: int,
        late_policy: str = DROP,
        on_late: Callable[[SGE], None] | None = None,
    ):
        if lateness < 0:
            raise ValueError(f"lateness must be non-negative, got {lateness}")
        if late_policy not in (DROP, RAISE):
            raise ValueError(f"unknown late policy {late_policy!r}")
        self.lateness = lateness
        self.late_policy = late_policy
        self._on_late = on_late
        self._heap: list[tuple[int, int, SGE]] = []
        self._seq = 0
        self._watermark = -1
        self.late_count = 0

    def push(self, edge: SGE) -> list[SGE]:
        """Offer one (possibly out-of-order) edge.

        Returns the edges *released* by this arrival, in timestamp order:
        the watermark advances to ``edge.t - lateness`` and everything at
        or below it is final.
        """
        if edge.t <= self._watermark:
            self.late_count += 1
            if self._on_late is not None:
                self._on_late(edge)
            if self.late_policy == RAISE:
                raise StreamOrderError(
                    f"edge at t={edge.t} arrived after watermark "
                    f"{self._watermark} (lateness bound {self.lateness})"
                )
            return []

        self._seq += 1
        heapq.heappush(self._heap, (edge.t, self._seq, edge))
        new_watermark = edge.t - self.lateness
        if new_watermark > self._watermark:
            self._watermark = new_watermark
        return self._drain(self._watermark)

    def flush(self) -> list[SGE]:
        """Release everything still buffered (end of stream)."""
        released = self._drain(None)
        return released

    def _drain(self, up_to: int | None) -> list[SGE]:
        released: list[SGE] = []
        while self._heap and (up_to is None or self._heap[0][0] <= up_to):
            _, _, edge = heapq.heappop(self._heap)
            released.append(edge)
        return released

    def __len__(self) -> int:
        return len(self._heap)


def reorder(
    stream: Iterable[SGE],
    lateness: int,
    late_policy: str = DROP,
) -> Iterator[SGE]:
    """Wrap an out-of-order stream into an in-order one.

    >>> from repro.core.tuples import SGE
    >>> edges = [SGE(1, 2, "l", 5), SGE(1, 3, "l", 2), SGE(1, 4, "l", 9)]
    >>> [e.t for e in reorder(edges, lateness=5)]
    [2, 5, 9]
    """
    buffer = DisorderBuffer(lateness, late_policy)
    for edge in stream:
        yield from buffer.push(edge)
    yield from buffer.flush()
