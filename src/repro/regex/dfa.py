"""Deterministic finite automata over label alphabets.

The physical PATH operators drive graph traversals with a DFA, pairing
graph vertices with automaton states (Section 6.2.3).  The DFA is produced
by subset construction from the Thompson NFA and then Hopcroft-minimized,
so Δ-PATH index sizes do not depend on regex syntax accidents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import RegexNode
from repro.regex.nfa import NFA, thompson
from repro.regex.parser import parse_regex


@dataclass
class DFA:
    """A DFA with integer states; state 0 is always the start state.

    ``transitions[state][label]`` is the unique successor (total on the
    recorded keys only; missing keys mean the dead state).
    """

    start: int
    accepting: frozenset[int]
    transitions: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def states(self) -> set[int]:
        found = {self.start}
        found.update(self.accepting)
        for src, by_label in self.transitions.items():
            found.add(src)
            found.update(by_label.values())
        return found

    @property
    def alphabet(self) -> frozenset[str]:
        labels: set[str] = set()
        for by_label in self.transitions.values():
            labels.update(by_label)
        return frozenset(labels)

    def delta(self, state: int, label: str) -> int | None:
        """The transition function; None is the implicit dead state."""
        return self.transitions.get(state, {}).get(label)

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        state: int | None = self.start
        for label in word:
            if state is None:
                return False
            state = self.delta(state, label)
        return state is not None and state in self.accepting

    def states_with_transition_on(self, label: str) -> list[tuple[int, int]]:
        """All (s, t) pairs with ``delta(s, label) = t``.

        S-PATH iterates this when a new edge with ``label`` arrives (line 6
        of Algorithm S-PATH).
        """
        pairs: list[tuple[int, int]] = []
        for src, by_label in self.transitions.items():
            trg = by_label.get(label)
            if trg is not None:
                pairs.append((src, trg))
        return pairs

    def start_is_accepting(self) -> bool:
        """True iff the language contains the empty word."""
        return self.start in self.accepting


def subset_construction(nfa: NFA) -> DFA:
    """Determinize an epsilon-NFA; unreachable states are never created."""
    alphabet = nfa.alphabet
    start_set = nfa.epsilon_closure({nfa.start})
    ids: dict[frozenset[int], int] = {start_set: 0}
    worklist = [start_set]
    transitions: dict[int, dict[str, int]] = {}
    accepting: set[int] = set()
    if nfa.accept in start_set:
        accepting.add(0)

    while worklist:
        current = worklist.pop()
        current_id = ids[current]
        for label in alphabet:
            nxt = nfa.epsilon_closure(nfa.move(current, label))
            if not nxt:
                continue
            if nxt not in ids:
                ids[nxt] = len(ids)
                worklist.append(nxt)
                if nfa.accept in nxt:
                    accepting.add(ids[nxt])
            transitions.setdefault(current_id, {})[label] = ids[nxt]

    return DFA(start=0, accepting=frozenset(accepting), transitions=transitions)


def dfa_from_regex(regex: RegexNode | str) -> DFA:
    """Compile a regex (AST or textual) into a minimal DFA."""
    from repro.regex.minimize import minimize

    node = parse_regex(regex) if isinstance(regex, str) else regex
    return minimize(subset_construction(thompson(node)))
