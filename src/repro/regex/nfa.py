"""Thompson construction: regex AST to epsilon-NFA."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Symbol,
)

EPSILON = None  # transition label for epsilon moves


@dataclass
class NFA:
    """An epsilon-NFA over a label alphabet.

    States are integers.  ``transitions[state][label]`` is the set of
    successor states; ``label`` is a string or ``None`` for epsilon.
    """

    start: int
    accept: int
    transitions: dict[int, dict[str | None, set[int]]] = field(default_factory=dict)

    def add_transition(self, src: int, label: str | None, trg: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(label, set()).add(trg)

    @property
    def states(self) -> set[int]:
        found = {self.start, self.accept}
        for src, by_label in self.transitions.items():
            found.add(src)
            for targets in by_label.values():
                found.update(targets)
        return found

    @property
    def alphabet(self) -> frozenset[str]:
        labels: set[str] = set()
        for by_label in self.transitions.values():
            labels.update(l for l in by_label if l is not None)
        return frozenset(labels)

    def epsilon_closure(self, states: set[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.transitions.get(state, {}).get(EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: frozenset[int], label: str) -> set[int]:
        """States reachable from ``states`` by consuming ``label``."""
        result: set[int] = set()
        for state in states:
            result.update(self.transitions.get(state, {}).get(label, ()))
        return result

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        """Simulate the NFA on a word of labels."""
        current = self.epsilon_closure({self.start})
        for label in word:
            current = self.epsilon_closure(self.move(current, label))
            if not current:
                return False
        return self.accept in current


class _Builder:
    """Allocates fresh state ids while building fragments."""

    def __init__(self) -> None:
        self._next = 0
        self.nfa = NFA(start=-1, accept=-1)

    def fresh(self) -> int:
        state = self._next
        self._next += 1
        return state

    def build(self, node: RegexNode) -> tuple[int, int]:
        """Return (start, accept) of the fragment for ``node``."""
        if isinstance(node, Symbol):
            start, accept = self.fresh(), self.fresh()
            self.nfa.add_transition(start, node.label, accept)
            return start, accept
        if isinstance(node, Empty):
            start, accept = self.fresh(), self.fresh()
            self.nfa.add_transition(start, EPSILON, accept)
            return start, accept
        if isinstance(node, Concat):
            ls, la = self.build(node.left)
            rs, ra = self.build(node.right)
            self.nfa.add_transition(la, EPSILON, rs)
            return ls, ra
        if isinstance(node, Alternation):
            start, accept = self.fresh(), self.fresh()
            ls, la = self.build(node.left)
            rs, ra = self.build(node.right)
            self.nfa.add_transition(start, EPSILON, ls)
            self.nfa.add_transition(start, EPSILON, rs)
            self.nfa.add_transition(la, EPSILON, accept)
            self.nfa.add_transition(ra, EPSILON, accept)
            return start, accept
        if isinstance(node, Star):
            start, accept = self.fresh(), self.fresh()
            inner_start, inner_accept = self.build(node.inner)
            self.nfa.add_transition(start, EPSILON, inner_start)
            self.nfa.add_transition(start, EPSILON, accept)
            self.nfa.add_transition(inner_accept, EPSILON, inner_start)
            self.nfa.add_transition(inner_accept, EPSILON, accept)
            return start, accept
        if isinstance(node, Plus):
            # X+ == X X*
            inner_start, inner_accept = self.build(node.inner)
            accept = self.fresh()
            self.nfa.add_transition(inner_accept, EPSILON, inner_start)
            self.nfa.add_transition(inner_accept, EPSILON, accept)
            return inner_start, accept
        if isinstance(node, Optional_):
            start, accept = self.fresh(), self.fresh()
            inner_start, inner_accept = self.build(node.inner)
            self.nfa.add_transition(start, EPSILON, inner_start)
            self.nfa.add_transition(start, EPSILON, accept)
            self.nfa.add_transition(inner_accept, EPSILON, accept)
            return start, accept
        raise TypeError(f"unknown regex node {node!r}")


def thompson(node: RegexNode) -> NFA:
    """Build an epsilon-NFA for ``node`` via Thompson construction."""
    builder = _Builder()
    start, accept = builder.build(node)
    builder.nfa.start = start
    builder.nfa.accept = accept
    return builder.nfa
