"""Regex abstract syntax trees over label alphabets."""

from __future__ import annotations

from dataclasses import dataclass


class RegexNode:
    """Base class for regex AST nodes.

    Nodes are immutable and hashable so they can key caches (e.g. compiled
    DFA caches in the physical PATH operators).
    """

    def alphabet(self) -> frozenset[str]:
        """The set of labels mentioned by this expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """True iff the empty word belongs to the language."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Symbol(RegexNode):
    """A single edge label."""

    label: str

    def alphabet(self) -> frozenset[str]:
        return frozenset({self.label})

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True, slots=True)
class Empty(RegexNode):
    """The empty word (epsilon)."""

    def alphabet(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True, slots=True)
class Concat(RegexNode):
    """Concatenation ``left . right``."""

    left: RegexNode
    right: RegexNode

    def alphabet(self) -> frozenset[str]:
        return self.left.alphabet() | self.right.alphabet()

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def __str__(self) -> str:
        return f"({self.left} {self.right})"


@dataclass(frozen=True, slots=True)
class Alternation(RegexNode):
    """Alternation ``left | right``."""

    left: RegexNode
    right: RegexNode

    def alphabet(self) -> frozenset[str]:
        return self.left.alphabet() | self.right.alphabet()

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


@dataclass(frozen=True, slots=True)
class Star(RegexNode):
    """Kleene star ``inner*``."""

    inner: RegexNode

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True, slots=True)
class Plus(RegexNode):
    """Kleene plus ``inner+`` — one or more repetitions.

    Transitive closure in Regular Queries (``l+ as d``) maps to Plus; the
    paper's PATH examples (``RL+``, ``f+``) all use plus rather than star
    because a zero-length path has no endpoints to report.
    """

    inner: RegexNode

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def __str__(self) -> str:
        return f"({self.inner})+"


@dataclass(frozen=True, slots=True)
class Optional_(RegexNode):
    """Optional ``inner?`` — zero or one occurrence."""

    inner: RegexNode

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"({self.inner})?"


def concat_all(parts: list[RegexNode]) -> RegexNode:
    """Left-fold a list of nodes into a concatenation chain."""
    if not parts:
        return Empty()
    node = parts[0]
    for part in parts[1:]:
        node = Concat(node, part)
    return node


def alternate_all(parts: list[RegexNode]) -> RegexNode:
    """Left-fold a list of nodes into an alternation chain."""
    if not parts:
        return Empty()
    node = parts[0]
    for part in parts[1:]:
        node = Alternation(node, part)
    return node
