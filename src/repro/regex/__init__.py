"""Regular expressions over edge-label alphabets.

The PATH operator (Definition 20) constrains path label sequences to a
regular language.  This package provides the full pipeline the physical
PATH operators need:

* a regex AST (:mod:`repro.regex.ast`) with concatenation, alternation,
  Kleene star/plus and optional,
* a parser for the textual syntax used by the workloads
  (:mod:`repro.regex.parser`), e.g. ``"a (b|c)* d+"``,
* Thompson construction to an NFA (:mod:`repro.regex.nfa`),
* subset construction to a DFA and Hopcroft minimization
  (:mod:`repro.regex.dfa`, :mod:`repro.regex.minimize`).

Alphabet symbols are edge labels (strings), not characters.
"""

from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Symbol,
)
from repro.regex.dfa import DFA, dfa_from_regex
from repro.regex.minimize import minimize
from repro.regex.nfa import NFA, thompson
from repro.regex.parser import parse_regex

__all__ = [
    "RegexNode",
    "Symbol",
    "Concat",
    "Alternation",
    "Star",
    "Plus",
    "Optional_",
    "Empty",
    "parse_regex",
    "NFA",
    "thompson",
    "DFA",
    "dfa_from_regex",
    "minimize",
]
