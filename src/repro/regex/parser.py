"""Parser for textual label regexes.

Grammar (whitespace separates tokens; juxtaposition means concatenation):

.. code-block:: text

    expr     := term ('|' term)*
    term     := factor+
    factor   := atom ('*' | '+' | '?')*
    atom     := LABEL | '(' expr ')'
    LABEL    := [A-Za-z_][A-Za-z0-9_]*

The workloads also accept ``.`` and ``/`` as explicit concatenation
operators (the paper writes ``a ◦ b*`` and G-CORE writes ``-/ <:a*> /-``),
so ``"a.b*"``, ``"a/b*"`` and ``"a b*"`` all denote the same expression.
"""

from __future__ import annotations

import re as _stdlib_re

from repro.errors import ParseError
from repro.regex.ast import (
    Alternation,
    Concat,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Symbol,
)

_TOKEN_RE = _stdlib_re.compile(
    r"\s*(?:(?P<label>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[()|*+?])"
    r"|(?P<concat>[./◦·]))"
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(
                f"unexpected character {text[pos]!r}", pos, source=text
            )
        if match.lastgroup == "label":
            tokens.append(("label", match.group("label"), match.start("label")))
        elif match.lastgroup == "op":
            tokens.append(("op", match.group("op"), match.start("op")))
        # concat separators are purely cosmetic; juxtaposition already
        # denotes concatenation
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str, int]], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    def _peek(self) -> tuple[str, str, int] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _fail(self, message: str, pos: int) -> ParseError:
        return ParseError(message, pos, source=self._text)

    def parse(self) -> RegexNode:
        node = self._expr()
        leftover = self._peek()
        if leftover is not None:
            raise self._fail(f"unexpected token {leftover[1]!r}", leftover[2])
        return node

    def _expr(self) -> RegexNode:
        node = self._term()
        while True:
            token = self._peek()
            if token is None or token[1] != "|":
                return node
            self._advance()
            node = Alternation(node, self._term())

    def _term(self) -> RegexNode:
        parts: list[RegexNode] = []
        while True:
            token = self._peek()
            if token is None or token[1] in ("|", ")"):
                break
            parts.append(self._factor())
        if not parts:
            token = self._peek()
            pos = token[2] if token else len(self._text)
            raise self._fail("expected a label or '('", pos)
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def _factor(self) -> RegexNode:
        node = self._atom()
        while True:
            token = self._peek()
            if token is None or token[1] not in ("*", "+", "?"):
                return node
            _, op, _ = self._advance()
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Plus(node)
            else:
                node = Optional_(node)

    def _atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise self._fail("unexpected end of expression", len(self._text))
        kind, value, pos = token
        if kind == "label":
            self._advance()
            return Symbol(value)
        if value == "(":
            self._advance()
            node = self._expr()
            closing = self._peek()
            if closing is None or closing[1] != ")":
                raise self._fail("unbalanced parenthesis", pos)
            self._advance()
            return node
        raise self._fail(f"unexpected token {value!r}", pos)


def parse_regex(text: str) -> RegexNode:
    """Parse a textual label regex into an AST.

    >>> str(parse_regex("a (b|c)* d+"))
    '((a ((b|c))*) (d)+)'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty regular expression")
    return _Parser(tokens, text).parse()
