"""Hopcroft DFA minimization.

Works on partial DFAs (missing transitions denote the dead state).  The
output is renumbered so the start state is 0 and state ids are dense,
which keeps Δ-PATH index keys compact.
"""

from __future__ import annotations

from collections import defaultdict

from repro.regex.dfa import DFA

_DEAD = -1


def minimize(dfa: DFA) -> DFA:
    """Return an equivalent DFA with the minimum number of states."""
    alphabet = sorted(dfa.alphabet)
    states = sorted(dfa.states)
    # Complete the automaton with an explicit dead state so Hopcroft's
    # partition refinement sees a total transition function.
    total: dict[int, dict[str, int]] = {s: dict(dfa.transitions.get(s, {})) for s in states}
    needs_dead = any(
        label not in total[s] for s in states for label in alphabet
    )
    if needs_dead:
        total[_DEAD] = {}
        states = [_DEAD] + states
    for s in states:
        for label in alphabet:
            total[s].setdefault(label, _DEAD)

    accepting = set(dfa.accepting)
    non_accepting = set(states) - accepting

    # Hopcroft's algorithm.
    partition: list[set[int]] = [s for s in (accepting, non_accepting) if s]
    worklist: list[set[int]] = [min(partition, key=len)] if len(partition) == 2 else list(partition)

    preimage: dict[tuple[str, int], set[int]] = defaultdict(set)
    for s in states:
        for label in alphabet:
            preimage[(label, total[s][label])].add(s)

    while worklist:
        splitter = worklist.pop()
        for label in alphabet:
            x = set()
            for t in splitter:
                x.update(preimage.get((label, t), ()))
            new_partition: list[set[int]] = []
            for block in partition:
                inter = block & x
                diff = block - x
                if inter and diff:
                    new_partition.append(inter)
                    new_partition.append(diff)
                    if block in worklist:
                        worklist.remove(block)
                        worklist.append(inter)
                        worklist.append(diff)
                    else:
                        worklist.append(min(inter, diff, key=len))
                else:
                    new_partition.append(block)
            partition = new_partition

    # Map each state to its block representative, dropping the dead block.
    block_of: dict[int, int] = {}
    for index, block in enumerate(partition):
        for s in block:
            block_of[s] = index

    # Renumber blocks reachable from the start block, start first.
    start_block = block_of[dfa.start]
    renumber: dict[int, int] = {start_block: 0}
    order = [start_block]
    transitions: dict[int, dict[str, int]] = {}
    accepting_blocks: set[int] = set()

    index = 0
    while index < len(order):
        block = order[index]
        index += 1
        representative = next(iter(partition[block]))
        if representative == _DEAD:
            continue
        if representative in accepting:
            accepting_blocks.add(renumber[block])
        for label in alphabet:
            target_state = total[representative][label]
            target_block = block_of[target_state]
            target_repr = next(iter(partition[target_block]))
            # A block containing the dead state is entirely dead (dead is
            # non-accepting with self loops only) — skip such transitions.
            if target_repr == _DEAD or _is_dead_block(
                partition[target_block], accepting, total, alphabet, block_of
            ):
                continue
            if target_block not in renumber:
                renumber[target_block] = len(renumber)
                order.append(target_block)
            transitions.setdefault(renumber[block], {})[label] = renumber[target_block]

    return DFA(
        start=0,
        accepting=frozenset(accepting_blocks),
        transitions=transitions,
    )


def _is_dead_block(
    block: set[int],
    accepting: set[int],
    total: dict[int, dict[str, int]],
    alphabet: list[str],
    block_of: dict[int, int],
) -> bool:
    """A block is dead iff it is non-accepting and only reaches itself."""
    if block & accepting:
        return False
    block_id = block_of[next(iter(block))]
    for s in block:
        for label in alphabet:
            if block_of[total[s][label]] != block_id:
                return False
    return True
