"""The epoch-driven DD baseline runtime.

Evaluates a Regular Query incrementally: the sliding window is an
evolving collection of input edges (insertions on arrival, retractions on
expiry), and each epoch — one slide interval — propagates the batched
diffs through the rule DAG in dependency order.

This is the implementation behind the ``backend="dd"`` engine of
:class:`repro.engine.session.StreamingGraphEngine`; the historical
:class:`repro.dd.engine.DDEngine` facade is a deprecated shim over the
same machinery.

The contrast with the SGA engine is deliberate and mirrors the paper:

* work is batched per epoch, so larger slides amortize fixed costs and
  *increase* throughput (Figure 11), while SGA's tuple-at-a-time
  operators are insensitive to the slide (Figure 10b);
* expirations are ordinary retractions: transitive closure pays DRed's
  over-delete/re-derive traversals on every window movement, which is
  exactly the structural cost S-PATH's direct approach avoids.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.batch import BatchScheduler, RunStats, SlideStats
from repro.core.expiry import TimingWheel
from repro.core.tuples import SGE, Label
from repro.core.windows import SlidingWindow
from repro.dd.collection import Pair, WeightedRelation
from repro.dd.operators import IncrementalClosure, rule_delta
from repro.errors import ExecutionError
from repro.query.datalog import ANSWER, RQProgram
from repro.query.validation import topological_order, validate_rq

#: Both engines share the scheduler's statistics types
#: (``RunStats.epochs`` aliases ``RunStats.slides``).
DDEpochStats = SlideStats
DDRunStats = RunStats


class DDRuntime:
    """Incremental Regular Query evaluation over a sliding window.

    ``batch_size`` bounds the number of arrivals applied per propagation
    round: ``None`` (the default, and DD's native semantics) propagates
    once per epoch — the whole slide's diffs as one logical timestamp —
    while a positive value splits large epochs into several rounds at the
    same boundary.  Both engines are driven by the same
    :class:`~repro.core.batch.BatchScheduler`, so their benchmark numbers
    compare the algorithms, not the drivers.
    """

    def __init__(
        self,
        program: RQProgram,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
        batch_size: int | None = None,
    ):
        validate_rq(program)
        self.program = program
        self.window = window
        self.label_windows = dict(label_windows or {})
        self.batch_size = batch_size
        self.order = topological_order(program)

        self.relations: dict[str, WeightedRelation] = {
            label: WeightedRelation(label) for label in self.order
        }
        self.closures: dict[str, IncrementalClosure] = {}
        self._closure_base: dict[str, str] = {}
        for atom in program.closure_atoms():
            self.closures[atom.name] = IncrementalClosure(atom.name)
            self._closure_base[atom.name] = atom.label

        self._edb = program.edb_labels
        # Timing wheel of (src, trg, label) window retractions, keyed on
        # each edge's expiry instant.
        self._expiry = TimingWheel()
        self._boundary: int | None = None
        self._horizon = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def boundary(self) -> int | None:
        """The epoch boundary the runtime has progressed to."""
        return self._boundary

    @property
    def horizon(self) -> int:
        """The latest expiry instant of any edge ever inserted.

        At every boundary at or past the horizon the window is empty
        (absent further arrivals), so the Answer is the empty set —
        readers can report that without performing the window movement.
        """
        return self._horizon

    @property
    def has_retained_state(self) -> bool:
        """True while any windowed edge has yet to expire.

        Once the expiry heap drains, the EDB relations are empty and so
        is everything derived from them — further empty epochs cannot
        change the Answer, which lets drivers jump over quiet stretches
        instead of advancing slide by slide.
        """
        return bool(self._expiry)

    def answer(self) -> set[Pair]:
        """The current content of the Answer relation."""
        return set(self.relations[ANSWER].facts())

    def run(self, stream: Iterable[SGE]) -> DDRunStats:
        """Process a whole stream epoch by epoch.

        Driven by the :class:`~repro.core.batch.BatchScheduler` shared
        with the SGA executor: the scheduler accumulates each slide's
        arrivals, times every flush, and hands the batch to
        :meth:`advance_epoch`.
        """
        scheduler = BatchScheduler(self.window.slide, self.batch_size)
        return scheduler.run(stream, self._apply_batch)

    def advance_epoch(self, boundary: int, inserts: list[SGE]) -> set[Pair]:
        """Process one epoch: retire expired edges, add arrivals.

        Returns the Answer relation after the epoch.  Epochs must be
        applied in increasing boundary order, and ``inserts`` must hold
        exactly the edges with ``slide_boundary(t) == boundary``.
        Repeated calls at the *same* boundary are allowed (the scheduler
        splits large epochs when a ``batch_size`` is set): expiry
        retractions are idempotent per boundary and the propagation is
        incremental, so the final Answer is unchanged — only the
        per-round accounting differs.

        Epoch/snapshot correspondence: after the epoch at boundary ``B``
        the engine state contains the edges that arrived by the end of
        the epoch (``t < B + beta``) and have not expired at ``B`` — for
        window sizes that are multiples of the slide (every configuration
        in the paper) this is precisely the snapshot at instant
        ``B + beta - 1``, the final instant of the epoch.  This batching
        of a whole slide into one logical timestamp is DD's epoch
        semantics (Section 7.3).
        """
        if self._boundary is not None and boundary < self._boundary:
            raise ExecutionError(
                f"epoch regression: {boundary} < {self._boundary}"
            )
        self._boundary = boundary

        deltas: dict[str, list[tuple[Pair, int]]] = {}

        # 1. Window retractions: edges whose validity ended by `boundary`.
        for src, trg, label in self._expiry.advance(boundary):
            self.relations[label].apply((src, trg), -1)

        # 2. Arrivals.
        for edge in inserts:
            if edge.label not in self._edb:
                continue
            window = self.label_windows.get(edge.label, self.window)
            interval = window.interval_for(edge.t)
            if interval.exp <= boundary:
                continue  # born and expired within this epoch
            self.relations[edge.label].apply((edge.src, edge.trg), 1)
            if interval.exp > self._horizon:
                self._horizon = interval.exp
            self._expiry.schedule(
                interval.exp, (edge.src, edge.trg, edge.label)
            )

        for label in self._edb:
            deltas[label] = self.relations[label].epoch_delta()

        # 3. Propagate through the rule DAG in dependency order.  The
        # old/new views of every relation stay live until the whole epoch
        # has been propagated (delta-joins read both versions).
        for label in self.order:
            if label in self._edb:
                continue
            relation = self.relations[label]
            if label in self.closures:
                base = self._closure_base[label]
                closure_delta = self.closures[label].apply_delta(
                    deltas.get(base, [])
                )
                for fact, sign in closure_delta:
                    relation.apply(fact, sign)
            else:
                for rule in self.program.rules_for(label):
                    for fact, sign in rule_delta(rule, self.relations, deltas):
                        relation.apply(fact, sign)
            deltas[label] = relation.epoch_delta()

        for relation in self.relations.values():
            relation.end_epoch()
        return self.answer()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_batch(self, boundary: int, edges: list[SGE]) -> None:
        self.advance_epoch(boundary, edges)

    def state_size(self) -> int:
        total = sum(len(r) for r in self.relations.values())
        total += sum(len(c) for c in self.closures.values())
        return total

    def state_breakdown(self) -> dict:
        rows = self.state_size()
        return {"rows": rows, "bytes": rows * 120}

    # ------------------------------------------------------------------
    # Checkpointing (between epochs: every relation's diff sets empty)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "dd",
            "boundary": self._boundary,
            "horizon": self._horizon,
            "relations": {
                name: relation.snapshot_state()
                for name, relation in self.relations.items()
            },
            "closures": {
                name: closure.snapshot_state()
                for name, closure in self.closures.items()
            },
            "expiry": self._expiry.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        from repro.errors import CheckpointError

        if state.get("kind") != "dd":
            raise CheckpointError(
                f"DD runtime: expected a dd state blob, got "
                f"kind={state.get('kind')!r}"
            )
        for name, relation in self.relations.items():
            if name not in state["relations"]:
                raise CheckpointError(
                    f"DD runtime: snapshot is missing relation {name!r}"
                )
            relation.restore_state(state["relations"][name])
        for name, closure in self.closures.items():
            if name not in state["closures"]:
                raise CheckpointError(
                    f"DD runtime: snapshot is missing closure {name!r}"
                )
            closure.restore_state(state["closures"][name])
        wheel = TimingWheel()
        wheel.restore(state["expiry"], decode=tuple)
        self._expiry = wheel
        self._boundary = state["boundary"]
        self._horizon = state["horizon"]
