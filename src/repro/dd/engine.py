"""The epoch-driven DD baseline engine.

Evaluates a Regular Query incrementally: the sliding window is an
evolving collection of input edges (insertions on arrival, retractions on
expiry), and each epoch — one slide interval — propagates the batched
diffs through the rule DAG in dependency order.

The contrast with the SGA engine is deliberate and mirrors the paper:

* work is batched per epoch, so larger slides amortize fixed costs and
  *increase* throughput (Figure 11), while SGA's tuple-at-a-time
  operators are insensitive to the slide (Figure 10b);
* expirations are ordinary retractions: transitive closure pays DRed's
  over-delete/re-derive traversals on every window movement, which is
  exactly the structural cost S-PATH's direct approach avoids.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.tuples import SGE, Label
from repro.core.windows import SlidingWindow
from repro.dd.collection import Pair, WeightedRelation
from repro.dd.operators import IncrementalClosure, rule_delta
from repro.errors import ExecutionError
from repro.query.datalog import ANSWER, RQProgram
from repro.query.validation import topological_order, validate_rq


@dataclass
class DDEpochStats:
    """Wall-clock accounting for one epoch (window slide)."""

    boundary: int
    seconds: float = 0.0
    edges: int = 0


@dataclass
class DDRunStats:
    epochs: list[DDEpochStats] = field(default_factory=list)
    total_edges: int = 0
    total_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        if self.total_seconds == 0:
            return float("inf")
        return self.total_edges / self.total_seconds

    def tail_latency(self, quantile: float = 0.99) -> float:
        if not self.epochs:
            return 0.0
        ordered = sorted(e.seconds for e in self.epochs)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]


class DDEngine:
    """Incremental Regular Query evaluation over a sliding window."""

    def __init__(
        self,
        program: RQProgram,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
    ):
        validate_rq(program)
        self.program = program
        self.window = window
        self.label_windows = dict(label_windows or {})
        self.order = topological_order(program)

        self.relations: dict[str, WeightedRelation] = {
            label: WeightedRelation(label) for label in self.order
        }
        self.closures: dict[str, IncrementalClosure] = {}
        self._closure_base: dict[str, str] = {}
        for atom in program.closure_atoms():
            self.closures[atom.name] = IncrementalClosure(atom.name)
            self._closure_base[atom.name] = atom.label

        self._edb = program.edb_labels
        # Min-heap of (expiry, seq, src, trg, label) for window retractions.
        self._expiry: list[tuple[int, int, object, object, Label]] = []
        self._seq = 0
        self._boundary: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer(self) -> set[Pair]:
        """The current content of the Answer relation."""
        return set(self.relations[ANSWER].facts())

    def run(self, stream: Iterable[SGE]) -> DDRunStats:
        """Process a whole stream epoch by epoch."""
        stats = DDRunStats()
        batch: list[SGE] = []
        boundary: int | None = None
        start = time.perf_counter()

        for edge in stream:
            edge_boundary = self.window.slide_boundary(edge.t)
            if boundary is None:
                boundary = edge_boundary
            if edge_boundary > boundary:
                self._timed_epoch(boundary, batch, stats)
                batch = []
                boundary = edge_boundary
            batch.append(edge)
        if boundary is not None:
            self._timed_epoch(boundary, batch, stats)
        stats.total_seconds = time.perf_counter() - start
        return stats

    def advance_epoch(self, boundary: int, inserts: list[SGE]) -> set[Pair]:
        """Process one epoch: retire expired edges, add arrivals.

        Returns the Answer relation after the epoch.  Epochs must be
        applied in increasing boundary order, and ``inserts`` must hold
        exactly the edges with ``slide_boundary(t) == boundary``.

        Epoch/snapshot correspondence: after the epoch at boundary ``B``
        the engine state contains the edges that arrived by the end of
        the epoch (``t < B + beta``) and have not expired at ``B`` — for
        window sizes that are multiples of the slide (every configuration
        in the paper) this is precisely the snapshot at instant
        ``B + beta - 1``, the final instant of the epoch.  This batching
        of a whole slide into one logical timestamp is DD's epoch
        semantics (Section 7.3).
        """
        if self._boundary is not None and boundary < self._boundary:
            raise ExecutionError(
                f"epoch regression: {boundary} < {self._boundary}"
            )
        self._boundary = boundary

        deltas: dict[str, list[tuple[Pair, int]]] = {}

        # 1. Window retractions: edges whose validity ended by `boundary`.
        while self._expiry and self._expiry[0][0] <= boundary:
            _, _, src, trg, label = heapq.heappop(self._expiry)
            self.relations[label].apply((src, trg), -1)

        # 2. Arrivals.
        for edge in inserts:
            if edge.label not in self._edb:
                continue
            window = self.label_windows.get(edge.label, self.window)
            interval = window.interval_for(edge.t)
            if interval.exp <= boundary:
                continue  # born and expired within this epoch
            self.relations[edge.label].apply((edge.src, edge.trg), 1)
            self._seq += 1
            heapq.heappush(
                self._expiry,
                (interval.exp, self._seq, edge.src, edge.trg, edge.label),
            )

        for label in self._edb:
            deltas[label] = self.relations[label].epoch_delta()

        # 3. Propagate through the rule DAG in dependency order.  The
        # old/new views of every relation stay live until the whole epoch
        # has been propagated (delta-joins read both versions).
        for label in self.order:
            if label in self._edb:
                continue
            relation = self.relations[label]
            if label in self.closures:
                base = self._closure_base[label]
                closure_delta = self.closures[label].apply_delta(
                    deltas.get(base, [])
                )
                for fact, sign in closure_delta:
                    relation.apply(fact, sign)
            else:
                for rule in self.program.rules_for(label):
                    for fact, sign in rule_delta(rule, self.relations, deltas):
                        relation.apply(fact, sign)
            deltas[label] = relation.epoch_delta()

        for relation in self.relations.values():
            relation.end_epoch()
        return self.answer()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _timed_epoch(
        self, boundary: int, batch: list[SGE], stats: DDRunStats
    ) -> None:
        started = time.perf_counter()
        self.advance_epoch(boundary, batch)
        elapsed = time.perf_counter() - started
        stats.epochs.append(
            DDEpochStats(boundary=boundary, seconds=elapsed, edges=len(batch))
        )
        stats.total_edges += len(batch)

    def state_size(self) -> int:
        total = sum(len(r) for r in self.relations.values())
        total += sum(len(c) for c in self.closures.values())
        return total
