"""Deprecated DD-baseline facade over :mod:`repro.engine.session`.

.. deprecated::
    :class:`DDEngine` is a thin compatibility shim over
    :class:`~repro.engine.session.StreamingGraphEngine` with
    ``backend="dd"`` and will be removed one release after the session
    API landed.  Migrate::

        # old
        engine = DDEngine(program, window)
        engine.run(stream); engine.answer()

        # new
        engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        handle = engine.register(SGQ(program, window))
        engine.push_many(stream); handle.answer()

The actual epoch-driven evaluation lives in
:class:`repro.dd.runtime.DDRuntime` (see that module for the algorithmic
contrast with the SGA operators the paper measures).
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.core.tuples import SGE, Label
from repro.core.windows import SlidingWindow
from repro.dd.collection import Pair
from repro.dd.runtime import DDEpochStats, DDRunStats, DDRuntime
from repro.query.datalog import RQProgram
from repro.query.sgq import SGQ

__all__ = ["DDEngine", "DDRunStats", "DDEpochStats"]

_DEPRECATION = (
    "DDEngine is deprecated; use StreamingGraphEngine with "
    "EngineConfig(backend=\"dd\") and the returned QueryHandle "
    "(see repro.engine.session)"
)


class DDEngine:
    """Incremental Regular Query evaluation over a sliding window.

    Deprecated: see the module docstring for the migration path.
    """

    def __init__(
        self,
        program: RQProgram,
        window: SlidingWindow,
        label_windows: dict[Label, SlidingWindow] | None = None,
        batch_size: int | None = None,
    ):
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        from repro.engine.session import EngineConfig, StreamingGraphEngine

        self.program = program
        self.window = window
        self.label_windows = dict(label_windows or {})
        self.batch_size = batch_size
        self._engine = StreamingGraphEngine(
            EngineConfig(backend="dd", batch_size=batch_size)
        )
        self._handle = self._engine.register(
            SGQ(program, window, self.label_windows), name="q0"
        )
        self._runtime: DDRuntime = self._handle._runtime

    # ------------------------------------------------------------------
    # Public API (delegates to the session's DD query handle)
    # ------------------------------------------------------------------
    def answer(self) -> set[Pair]:
        """The current content of the Answer relation."""
        return self._handle.answer()

    def run(self, stream: Iterable[SGE]) -> DDRunStats:
        """Process a whole stream epoch by epoch (shared scheduler)."""
        return self._engine.push_many(stream)

    def advance_epoch(self, boundary: int, inserts: list[SGE]) -> set[Pair]:
        """Process one epoch explicitly (see
        :meth:`repro.dd.runtime.DDRuntime.advance_epoch`)."""
        return self._handle.advance_epoch(boundary, inserts)

    def state_size(self) -> int:
        return self._runtime.state_size()

    # Historical attribute surface ------------------------------------
    @property
    def relations(self):
        return self._runtime.relations

    @property
    def closures(self):
        return self._runtime.closures

    @property
    def order(self):
        return self._runtime.order
