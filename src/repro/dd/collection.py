"""Weighted relations with per-epoch diffs.

A :class:`WeightedRelation` stores binary facts with multiplicities
(derivation counts) and exposes the *distinct* view downstream operators
consume: a fact exists when its weight is positive; the distinct delta of
an epoch is the set of facts whose existence toggled.

During an epoch the relation keeps both versions visible — ``old`` (the
state at epoch start) and ``new`` (after the epoch's diff) — because the
delta-join rules of counting IVM join each delta against mixed old/new
versions of the other atoms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.tuples import Vertex

Pair = tuple[Vertex, Vertex]


class WeightedRelation:
    """A binary relation with derivation counts and epoch bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self._weights: dict[Pair, int] = {}
        self._facts: set[Pair] = set()
        self._by_src: dict[Vertex, set[Pair]] = defaultdict(set)
        self._by_trg: dict[Vertex, set[Pair]] = defaultdict(set)
        # Distinct facts added/removed in the current epoch.
        self._epoch_plus: set[Pair] = set()
        self._epoch_minus: set[Pair] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, fact: Pair, weight: int) -> int:
        """Add ``weight`` derivations of ``fact``.

        Returns the distinct-level change: +1 if the fact came into
        existence, -1 if it ceased to exist, 0 otherwise.
        """
        if weight == 0:
            return 0
        old = self._weights.get(fact, 0)
        new = old + weight
        if new == 0:
            self._weights.pop(fact, None)
        else:
            self._weights[fact] = new

        if old <= 0 < new:
            self._insert_distinct(fact)
            return 1
        if new <= 0 < old:
            self._remove_distinct(fact)
            return -1
        return 0

    def _insert_distinct(self, fact: Pair) -> None:
        self._facts.add(fact)
        self._by_src[fact[0]].add(fact)
        self._by_trg[fact[1]].add(fact)
        if fact in self._epoch_minus:
            self._epoch_minus.discard(fact)
        else:
            self._epoch_plus.add(fact)

    def _remove_distinct(self, fact: Pair) -> None:
        self._facts.discard(fact)
        self._by_src[fact[0]].discard(fact)
        self._by_trg[fact[1]].discard(fact)
        if fact in self._epoch_plus:
            self._epoch_plus.discard(fact)
        else:
            self._epoch_minus.add(fact)

    def epoch_delta(self) -> list[tuple[Pair, int]]:
        """The distinct delta accumulated so far this epoch (not cleared).

        The old/new views stay live: downstream delta-joins must keep
        seeing both versions until the whole epoch has been propagated.
        """
        delta = [(fact, 1) for fact in self._epoch_plus]
        delta.extend((fact, -1) for fact in self._epoch_minus)
        return delta

    def end_epoch(self) -> list[tuple[Pair, int]]:
        """Close the epoch, returning the distinct delta as (fact, ±1)."""
        delta = self.epoch_delta()
        self._epoch_plus = set()
        self._epoch_minus = set()
        return delta

    # ------------------------------------------------------------------
    # Distinct views
    # ------------------------------------------------------------------
    def __contains__(self, fact: Pair) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def facts(self) -> Iterator[Pair]:
        return iter(self._facts)

    def weight(self, fact: Pair) -> int:
        return self._weights.get(fact, 0)

    def new_match(self, src: Vertex | None = None, trg: Vertex | None = None) -> Iterable[Pair]:
        """Current (post-diff) facts matching the bound endpoints."""
        if src is not None and trg is not None:
            fact = (src, trg)
            return (fact,) if fact in self._facts else ()
        if src is not None:
            return tuple(self._by_src.get(src, ()))
        if trg is not None:
            return tuple(self._by_trg.get(trg, ()))
        return tuple(self._facts)

    def old_match(self, src: Vertex | None = None, trg: Vertex | None = None) -> Iterable[Pair]:
        """Epoch-start facts matching the bound endpoints.

        old = (new - epoch_plus) + epoch_minus, filtered by the binding.
        """
        result = [
            fact
            for fact in self.new_match(src, trg)
            if fact not in self._epoch_plus
        ]
        for fact in self._epoch_minus:
            if (src is None or fact[0] == src) and (trg is None or fact[1] == trg):
                result.append(fact)
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Weights only: snapshots are taken between epochs (epoch diff
        sets empty), and facts/endpoint indexes derive from weights."""
        return {"weights": list(self._weights.items())}

    def restore_state(self, state: dict) -> None:
        self._weights = {tuple(fact): w for fact, w in state["weights"]}
        self._facts = {fact for fact, w in self._weights.items() if w > 0}
        self._by_src = defaultdict(set)
        self._by_trg = defaultdict(set)
        for fact in self._facts:
            self._by_src[fact[0]].add(fact)
            self._by_trg[fact[1]].add(fact)
        self._epoch_plus = set()
        self._epoch_minus = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedRelation({self.name}, {len(self._facts)} facts)"
