"""The Differential-Dataflow-style baseline engine (Sections 6.2, 7.2.2).

The paper compares its SGA operators against evaluating the same queries
directly on Differential Dataflow: the window content is maintained as an
evolving collection, per-epoch diffs flow through a dataflow of
general-purpose incremental operators, and recursion (transitive closure)
is handled by a generic incremental fixpoint.

This package implements that baseline as an epoch-batched incremental
Datalog engine:

* weighted multiset collections with per-epoch diffs
  (:mod:`repro.dd.collection`),
* counting-based incremental maintenance for the non-recursive rules and
  DRed (delete-and-re-derive) for transitive closure
  (:mod:`repro.dd.operators`),
* a runtime that slides the window by retracting expired edges and
  inserting arrivals, epoch by epoch (:mod:`repro.dd.runtime`) — this is
  what ``StreamingGraphEngine(backend="dd")`` drives; the historical
  :class:`~repro.dd.engine.DDEngine` facade is a deprecated shim.

Like DD — and unlike the SGA operators — it ignores the structure of
graph queries and the temporal order of window expirations, paying the
re-derivation costs the paper measures; and like DD it amortizes work
over epoch batches, so throughput grows with the slide interval
(Figure 11) where the tuple-at-a-time SGA operators stay flat
(Figure 10b).
"""

from repro.dd.collection import WeightedRelation
from repro.dd.engine import DDEngine, DDRunStats
from repro.dd.operators import IncrementalClosure
from repro.dd.runtime import DDRuntime

__all__ = [
    "WeightedRelation",
    "IncrementalClosure",
    "DDEngine",
    "DDRunStats",
    "DDRuntime",
]
