"""Incremental Datalog operators: delta-joins and DRed closure.

Two operator families cover Regular Queries:

* :func:`rule_delta` — counting-based incremental maintenance of a
  conjunctive rule: the per-epoch change of the rule head is the sum of
  the delta-rule expansions ``new_1 … new_{i-1} ⋈ Δ_i ⋈ old_{i+1} … old_n``
  (the classical Counting algorithm [Gupta et al., SIGMOD 1993]).
* :class:`IncrementalClosure` — transitive closure maintained with
  semi-naive insertion and DRed (over-delete + re-derive) deletion.
  This mirrors how a general-purpose incremental engine handles
  recursion: on deletion it must over-delete every pair whose derivation
  *might* involve a deleted edge and then traverse the remaining graph to
  re-derive survivors — the costly step the paper's direct approach
  avoids by exploiting expiration order (Section 6.2.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.tuples import Vertex
from repro.dd.collection import Pair, WeightedRelation
from repro.query.datalog import BodyAtom, ClosureAtom, Rule


def _atom_relation_name(atom: BodyAtom) -> str:
    return atom.name if isinstance(atom, ClosureAtom) else atom.label


def rule_delta(
    rule: Rule,
    relations: dict[str, WeightedRelation],
    deltas: dict[str, list[tuple[Pair, int]]],
) -> list[tuple[Pair, int]]:
    """Weighted delta of a rule head for the current epoch.

    ``deltas`` holds each body relation's distinct delta.  Atoms before
    the delta position join against the *new* version, atoms after it
    against the *old* version, so every new derivation is counted exactly
    once across the expansion terms.
    """
    out: list[tuple[Pair, int]] = []
    body = list(rule.body)

    for position, atom in enumerate(body):
        relation_name = _atom_relation_name(atom)
        delta = deltas.get(relation_name)
        if not delta:
            continue
        for fact, sign in delta:
            binding: dict[str, Vertex] = {}
            if not _bind_atom(atom, fact, binding):
                continue
            _extend(
                body,
                position,
                0,
                binding,
                relations,
                sign,
                rule,
                out,
            )
    return out


def _bind_atom(atom: BodyAtom, fact: Pair, binding: dict[str, Vertex]) -> bool:
    src_var, trg_var = atom.variables
    if src_var == trg_var and fact[0] != fact[1]:
        return False
    for var, value in ((src_var, fact[0]), (trg_var, fact[1])):
        bound = binding.get(var)
        if bound is not None and bound != value:
            return False
        binding[var] = value
    return True


def _extend(
    body: list[BodyAtom],
    delta_position: int,
    index: int,
    binding: dict[str, Vertex],
    relations: dict[str, WeightedRelation],
    sign: int,
    rule: Rule,
    out: list[tuple[Pair, int]],
) -> None:
    if index == len(body):
        out.append(((binding[rule.head_src], binding[rule.head_trg]), sign))
        return
    if index == delta_position:
        _extend(body, delta_position, index + 1, binding, relations, sign, rule, out)
        return

    atom = body[index]
    relation = relations[_atom_relation_name(atom)]
    src_var, trg_var = atom.variables
    src = binding.get(src_var)
    trg = binding.get(trg_var)
    matcher = relation.new_match if index < delta_position else relation.old_match
    for fact in matcher(src, trg):
        if src_var == trg_var and fact[0] != fact[1]:
            continue
        added = []
        ok = True
        for var, value in ((src_var, fact[0]), (trg_var, fact[1])):
            bound = binding.get(var)
            if bound is None:
                binding[var] = value
                added.append(var)
            elif bound != value:
                ok = False
                break
        if ok:
            _extend(
                body, delta_position, index + 1, binding, relations, sign, rule, out
            )
        for var in added:
            del binding[var]


class IncrementalClosure:
    """Transitive closure maintained *generically*, at rule level.

    A general-purpose incremental engine knows nothing about graphs: it
    sees the left-linear program

    .. code-block:: text

        TC(x, y) <- base(x, y)
        TC(x, y) <- TC(x, z), base(z, y)

    and maintains it with semi-naive fixpoints for insertions and DRed
    (over-delete then re-derive, both as rule-level fixpoints) for
    deletions [Gupta et al., SIGMOD 1993].  This is deliberately *not* a
    smart graph algorithm: over-deletion suspects every pair that is
    rule-derivable from a deleted tuple — on cyclic inputs that cascades
    to most of the closure on every window slide, which is the structural
    overhead the paper attributes to general-purpose IVM (Sections 2.2,
    6.2.4) and what its SGA operators avoid.
    """

    def __init__(self, name: str):
        self.name = name
        self._succ: dict[Vertex, set[Vertex]] = defaultdict(set)
        self._tc: set[Pair] = set()
        self._tc_succ: dict[Vertex, set[Vertex]] = defaultdict(set)
        self._tc_pred: dict[Vertex, set[Vertex]] = defaultdict(set)
        #: Cumulative count of rule-firing checks in DRed fixpoints,
        #: exposed so benchmarks can report the re-derivation overhead.
        self.rederivation_checks = 0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> set[Pair]:
        return self._tc

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._tc

    def __len__(self) -> int:
        return len(self._tc)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Base graph + closure (endpoint indexes over ``_tc`` derive)."""
        return {
            "succ": [(v, list(targets)) for v, targets in self._succ.items()],
            "tc": list(self._tc),
            "rederivation_checks": self.rederivation_checks,
        }

    def restore_state(self, state: dict) -> None:
        self._succ = defaultdict(set)
        for v, targets in state["succ"]:
            self._succ[v] = set(targets)
        self._tc = {tuple(pair) for pair in state["tc"]}
        self._tc_succ = defaultdict(set)
        self._tc_pred = defaultdict(set)
        for src, trg in self._tc:
            self._tc_succ[src].add(trg)
            self._tc_pred[trg].add(src)
        self.rederivation_checks = state["rederivation_checks"]

    # ------------------------------------------------------------------
    # Epoch application
    # ------------------------------------------------------------------
    def apply_delta(self, delta: Iterable[tuple[Pair, int]]) -> list[tuple[Pair, int]]:
        """Apply a distinct delta of the base relation (one epoch).

        Deletions run one batched DRed pass; insertions then run one
        semi-naive fixpoint.  Returns the distinct delta of the closure.
        """
        inserts = [fact for fact, sign in delta if sign > 0]
        deletes = [fact for fact, sign in delta if sign < 0]

        removed = self._delete_dred(deletes) if deletes else set()
        added = self._insert_seminaive(inserts) if inserts else set()

        out: list[tuple[Pair, int]] = []
        for pair in removed - added:
            out.append((pair, -1))
        for pair in added - removed:
            out.append((pair, 1))
        return out

    def _add_tc(self, pair: Pair) -> None:
        self._tc.add(pair)
        self._tc_succ[pair[0]].add(pair[1])
        self._tc_pred[pair[1]].add(pair[0])

    def _remove_tc(self, pair: Pair) -> None:
        self._tc.discard(pair)
        self._tc_succ[pair[0]].discard(pair[1])
        self._tc_pred[pair[1]].discard(pair[0])

    # ------------------------------------------------------------------
    # Semi-naive insertion fixpoint
    # ------------------------------------------------------------------
    def _insert_seminaive(self, edges: list[Pair]) -> set[Pair]:
        delta_base: set[Pair] = set()
        for u, v in edges:
            if v not in self._succ[u]:
                self._succ[u].add(v)
                delta_base.add((u, v))
        if not delta_base:
            return set()

        added: set[Pair] = set()
        # Rule 1 delta: TC(x, y) <- Δbase(x, y).
        # Rule 2 deltas: TC ⋈ Δbase, then iterate ΔTC ⋈ base.
        frontier: set[Pair] = set()
        for pair in delta_base:
            if pair not in self._tc:
                frontier.add(pair)
        for u, v in delta_base:
            for x in tuple(self._tc_pred.get(u, ())):
                if (x, v) not in self._tc and (x, v) not in frontier:
                    frontier.add((x, v))
        for pair in frontier:
            self._add_tc(pair)
            added.add(pair)

        while frontier:
            next_frontier: set[Pair] = set()
            for x, z in frontier:
                for y in self._succ.get(z, ()):
                    if (x, y) not in self._tc:
                        next_frontier.add((x, y))
            for pair in next_frontier:
                self._add_tc(pair)
                added.add(pair)
            frontier = next_frontier
        return added

    # ------------------------------------------------------------------
    # DRed deletion: over-delete fixpoint, then re-derive fixpoint
    # ------------------------------------------------------------------
    def _delete_dred(self, edges: list[Pair]) -> set[Pair]:
        deleted_base: set[Pair] = set()
        for u, v in edges:
            if v in self._succ.get(u, ()):
                self._succ[u].discard(v)
                deleted_base.add((u, v))
        if not deleted_base:
            return set()

        # Over-delete: everything rule-derivable from a deleted tuple.
        #   seed:   TC(x, y) with (x, y) in Δ⁻base
        #           TC(x, y) from TC(x, z), Δ⁻base(z, y)
        #   spread: TC(x, y) from Δ⁻TC(x, z), base_old(z, y)
        over: set[Pair] = set()
        frontier: set[Pair] = set()
        for pair in deleted_base:
            if pair in self._tc:
                frontier.add(pair)
        for z, y in deleted_base:
            for x in tuple(self._tc_pred.get(z, ())):
                if (x, y) in self._tc:
                    frontier.add((x, y))
        # base_old still contains the deleted edges for the spread step:
        # derivations recorded before this epoch may have used them.
        base_old: dict[Vertex, set[Vertex]] = defaultdict(set)
        for x, ys in self._succ.items():
            base_old[x] = set(ys)
        for u, v in deleted_base:
            base_old[u].add(v)

        while frontier:
            for pair in frontier:
                over.add(pair)
            next_frontier: set[Pair] = set()
            for x, z in frontier:
                for y in base_old.get(z, ()):
                    self.rederivation_checks += 1
                    if (x, y) in self._tc and (x, y) not in over:
                        next_frontier.add((x, y))
            frontier = next_frontier
        for pair in over:
            self._remove_tc(pair)

        # Re-derive: a suspect survives if it has a derivation from the
        # remaining base and surviving closure (rule-level fixpoint).
        rederived: set[Pair] = set()
        changed = True
        while changed:
            changed = False
            for pair in tuple(over - rederived):
                x, y = pair
                self.rederivation_checks += 1
                if y in self._succ.get(x, ()):
                    self._add_tc(pair)
                    rederived.add(pair)
                    changed = True
                    continue
                for z in self._tc_succ.get(x, ()):
                    if z != y and y in self._succ.get(z, ()):
                        self._add_tc(pair)
                        rederived.add(pair)
                        changed = True
                        break
        return over - rederived


def closure_from_scratch(succ: dict[Vertex, set[Vertex]]) -> set[Pair]:
    """Reference: full transitive closure by per-source BFS (testing)."""
    from collections import deque

    closure: set[Pair] = set()
    for root in list(succ):
        seen: set[Vertex] = set()
        queue = deque(succ.get(root, ()))
        while queue:
            vertex = queue.popleft()
            if vertex in seen:
                continue
            seen.add(vertex)
            closure.add((root, vertex))
            queue.extend(succ.get(vertex, ()))
    return closure
