"""Synthetic StackOverflow-like temporal interaction graph.

The real SO dataset [Paranjape et al., WSDM 2017] is a temporal graph of
user interactions with three edge labels:

* ``a2q`` — user *u* answered a question of user *v*,
* ``c2q`` — user *u* commented on a question of user *v*,
* ``c2a`` — user *u* commented on an answer of user *v*.

The paper highlights the properties that make SO its hardest workload
(Section 7.1.2): one vertex type, three labels, and a dense, cyclic
structure that yields many alternative paths between vertex pairs, which
inflates PATH operator state.  This generator reproduces those
properties at configurable scale:

* **preferential attachment** — interaction targets are chosen
  proportionally to past activity, giving the heavy-tailed degree
  distribution of Q&A sites;
* **reciprocity** — a fraction of interactions are answered back within
  a short delay, seeding 2-cycles;
* **community churn** — sources are drawn from a sliding "active user"
  pool, concentrating interactions in time exactly the way sliding-window
  state stresses operators.
"""

from __future__ import annotations

import random

from repro.core.tuples import SGE
from repro.core.windows import HOUR

#: Edge labels of the StackOverflow temporal graph.
SO_LABELS = ("a2q", "c2q", "c2a")


def stackoverflow_stream(
    n_edges: int = 20_000,
    n_users: int = 1_000,
    seed: int = 0,
    reciprocity: float = 0.3,
    mean_gap: int = HOUR // 12,
    active_pool: int = 100,
) -> list[SGE]:
    """Generate a StackOverflow-like interaction stream.

    Parameters
    ----------
    n_edges:
        Total number of interactions to generate.
    n_users:
        Number of distinct users (vertices).
    reciprocity:
        Probability that an interaction is reciprocated shortly after,
        creating the cycles the paper calls out as SO's defining
        difficulty.
    mean_gap:
        Mean inter-arrival gap in ticks (the dataset uses 60 ticks/hour).
    active_pool:
        Size of the currently-active user pool from which sources are
        drawn; the pool drifts over time to model community churn.
    """
    rng = random.Random(seed)
    label_weights = {"a2q": 0.5, "c2q": 0.3, "c2a": 0.2}
    labels = list(label_weights)
    weights = list(label_weights.values())

    # Preferential attachment state: one slot per past interaction
    # endpoint, plus one base slot per user so newcomers are reachable.
    attachment: list[int] = list(range(n_users))
    pool_start = 0

    t = 0
    pending: list[SGE] = []  # reciprocal edges scheduled for the future
    edges: list[SGE] = []

    while len(edges) < n_edges:
        # Flush reciprocal interactions that are due.
        while pending and pending[0].t <= t and len(edges) < n_edges:
            edges.append(pending.pop(0))

        if len(edges) >= n_edges:
            break

        src = pool_start + rng.randrange(active_pool)
        src %= n_users
        trg = attachment[rng.randrange(len(attachment))]
        if trg == src:
            trg = (trg + 1) % n_users
        label = rng.choices(labels, weights)[0]
        edges.append(SGE(src, trg, label, t))
        attachment.append(trg)
        attachment.append(src)

        if rng.random() < reciprocity:
            delay = 1 + rng.randrange(4 * mean_gap + 1)
            back_label = rng.choices(labels, weights)[0]
            pending.append(SGE(trg, src, back_label, t + delay))
            pending.sort(key=lambda e: e.t)

        t += rng.randint(0, 2 * mean_gap)
        # Drift the active pool slowly across the user base.
        if rng.random() < 0.02:
            pool_start = (pool_start + 1) % n_users

    edges.sort(key=lambda e: e.t)
    return edges[:n_edges]
