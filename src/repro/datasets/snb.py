"""Synthetic LDBC-SNB-like social network update stream.

The paper extracts the LDBC Social Network Benchmark update stream and
keeps four edge types (Section 7.1.2):

* ``knows``      — person ↔ person friendship (inserted in both
  directions, as LDBC materializes undirected friendships);
* ``likes``      — person → message;
* ``hasCreator`` — message → person;
* ``replyOf``    — message → message, **strictly tree-shaped**: every
  message replies to at most one earlier message, so the replyOf graph is
  a forest.

The forest structure of ``replyOf`` is the property the paper leans on to
explain DD's competitiveness on SNB ("there is only one path between a
pair of vertices, so PATH-specific optimizations do not apply") — this
generator preserves it by construction, and the accompanying tests assert
it.

Vertices are encoded as ``("P", i)`` for persons and ``("M", j)`` for
messages so the two spaces can never collide.
"""

from __future__ import annotations

import random

from repro.core.tuples import SGE, Vertex
from repro.core.windows import HOUR

#: Edge labels of the SNB update stream subset used by the paper.
SNB_LABELS = ("knows", "likes", "hasCreator", "replyOf")


def person(i: int) -> Vertex:
    return ("P", i)


def message(j: int) -> Vertex:
    return ("M", j)


def snb_stream(
    n_edges: int = 20_000,
    n_persons: int = 500,
    seed: int = 0,
    mean_gap: int = HOUR // 12,
    reply_fraction: float = 0.55,
) -> list[SGE]:
    """Generate an SNB-like update stream.

    Each step either creates a friendship, posts a fresh message, replies
    to an existing message, or likes a message.  Message creation emits
    the ``hasCreator`` edge; replies additionally emit ``replyOf`` —
    always pointing to an *earlier* message, keeping the reply graph a
    forest of in-trees.
    """
    rng = random.Random(seed)
    t = 0
    edges: list[SGE] = []
    messages: list[int] = []  # message ids in creation order
    next_message = 0

    def random_person() -> Vertex:
        return person(rng.randrange(n_persons))

    while len(edges) < n_edges:
        action = rng.random()
        if action < 0.15:
            # Friendship: LDBC materializes knows in both directions.
            a = rng.randrange(n_persons)
            b = rng.randrange(n_persons)
            if a == b:
                b = (b + 1) % n_persons
            edges.append(SGE(person(a), person(b), "knows", t))
            if len(edges) < n_edges:
                edges.append(SGE(person(b), person(a), "knows", t))
        elif action < 0.55:
            # New message (post or comment).
            creator = random_person()
            mid = next_message
            next_message += 1
            messages.append(mid)
            edges.append(SGE(message(mid), creator, "hasCreator", t))
            earlier = messages[:-1]
            if earlier and rng.random() < reply_fraction and len(edges) < n_edges:
                # Reply to a recent *earlier* message: strictly backwards,
                # so replyOf stays a forest.
                offset = rng.randrange(min(len(earlier), 50))
                parent = earlier[len(earlier) - 1 - offset]
                edges.append(SGE(message(mid), message(parent), "replyOf", t))
        else:
            # Like an existing message.
            if messages:
                liked = messages[
                    len(messages) - 1 - rng.randrange(min(len(messages), 100))
                ]
                edges.append(SGE(random_person(), message(liked), "likes", t))
        t += rng.randint(0, 2 * mean_gap)

    return edges[:n_edges]
