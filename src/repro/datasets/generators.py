"""Generic random stream generators for tests and micro-benchmarks."""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.tuples import SGE


def uniform_stream(
    n_edges: int,
    n_vertices: int,
    labels: Sequence[str],
    seed: int = 0,
    max_gap: int = 1,
) -> list[SGE]:
    """Uniformly random edges with non-decreasing timestamps.

    ``max_gap`` bounds the timestamp increment between consecutive edges;
    with ``max_gap=1`` roughly half the edges share a timestamp with
    their predecessor, exercising simultaneous arrivals.
    """
    rng = random.Random(seed)
    t = 0
    edges: list[SGE] = []
    for _ in range(n_edges):
        t += rng.randint(0, max_gap)
        edges.append(
            SGE(
                rng.randrange(n_vertices),
                rng.randrange(n_vertices),
                rng.choice(list(labels)),
                t,
            )
        )
    return edges


def zipf_stream(
    n_edges: int,
    n_vertices: int,
    labels: Sequence[str],
    seed: int = 0,
    skew: float = 1.1,
    max_gap: int = 1,
) -> list[SGE]:
    """Random edges with Zipf-distributed endpoint popularity.

    Heavy-tailed degree distributions are what make real graph workloads
    hard: hub vertices blow up join fan-out and Δ-PATH tree sizes.  The
    gMark benchmark generator [Bagan et al., TKDE 2016] uses the same
    knob; ``skew`` is the Zipf exponent.
    """
    rng = random.Random(seed)
    # Precompute a Zipf CDF over vertex ranks.
    weights = [1.0 / (rank**skew) for rank in range(1, n_vertices + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def pick() -> int:
        x = rng.random()
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    t = 0
    edges: list[SGE] = []
    for _ in range(n_edges):
        t += rng.randint(0, max_gap)
        edges.append(SGE(pick(), pick(), rng.choice(list(labels)), t))
    return edges
