"""TSV (de)serialization of edge streams.

Format: one edge per line, ``src<TAB>trg<TAB>label<TAB>timestamp``.
This matches the shape of the SNAP temporal-graph dumps the paper uses,
so a user with access to the real StackOverflow data can feed it in
directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.tuples import SGE
from repro.errors import ParseError


def write_stream(edges: Iterable[SGE], path: str | Path) -> int:
    """Write an edge stream to a TSV file; returns the edge count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for edge in edges:
            handle.write(f"{edge.src}\t{edge.trg}\t{edge.label}\t{edge.t}\n")
            count += 1
    return count


def read_stream(path: str | Path, vertex_type: type = str) -> list[SGE]:
    """Read an edge stream from a TSV file.

    ``vertex_type`` converts the endpoint columns (e.g. ``int`` for
    numeric vertex ids).  Lines starting with ``#`` are comments.
    """
    edges: list[SGE] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ParseError(
                    f"{path}:{line_number}: expected 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            src, trg, label, t = parts
            edges.append(SGE(vertex_type(src), vertex_type(trg), label, int(t)))
    edges.sort(key=lambda e: e.t)
    return edges
