"""Synthetic streaming graph datasets (Section 7.1.2 substitutes).

The paper evaluates on the SNAP StackOverflow temporal graph (63M edges)
and the LDBC SNB scale-factor-10 update stream (40M edges).  Neither is
redistributable here, so this package provides generators that reproduce
the *structural properties the experiments depend on*:

* :mod:`repro.datasets.stackoverflow` — a single vertex type, three edge
  labels (``a2q``, ``c2q``, ``c2a``), preferential attachment and
  reciprocity ⇒ dense, highly cyclic, many alternative paths (the paper's
  hardest case for PATH state).
* :mod:`repro.datasets.snb` — persons and messages with ``knows``,
  ``likes``, ``hasCreator`` and strictly tree-shaped ``replyOf`` edges
  (single path between any vertex pair ⇒ PATH-specific optimizations do
  not help, the paper's explanation for DD's strength there).
* :mod:`repro.datasets.generators` — generic uniform/Zipf random streams
  for tests and micro-benchmarks.
* :mod:`repro.datasets.io` — TSV (de)serialization of edge streams.
"""

from repro.datasets.generators import uniform_stream, zipf_stream
from repro.datasets.io import read_stream, write_stream
from repro.datasets.snb import SNB_LABELS, snb_stream
from repro.datasets.stackoverflow import SO_LABELS, stackoverflow_stream

__all__ = [
    "uniform_stream",
    "zipf_stream",
    "stackoverflow_stream",
    "SO_LABELS",
    "snb_stream",
    "SNB_LABELS",
    "read_stream",
    "write_stream",
]
