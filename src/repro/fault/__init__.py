"""Supervision and deterministic fault injection.

Three pieces make the engine and serve layer survive crashes with
provably identical output:

* :class:`~repro.fault.policy.CheckpointPolicy` — when to snapshot
  (``every_slides`` / ``every_seconds``) and how to retry recovery
  (:class:`~repro.fault.policy.RetryPolicy`).  Set it on
  :class:`~repro.engine.session.EngineConfig` to arm supervised
  auto-recovery on the sharded process transport, pass it to
  ``engine.enable_auto_checkpoint()`` or ``scripts/serve.py`` for
  periodic durable checkpoints.
* Supervision itself lives where the workers live —
  :mod:`repro.engine.sharded` (process pool) and
  :mod:`repro.serve.tenants` (tenant worker threads).
* :class:`~repro.fault.plan.FaultPlan` — a deterministic fault-injection
  harness that kills a shard worker on the Nth command, tears a pipe
  mid-message, fails an fsync/rename inside the checkpoint store, or
  raises inside a query callback at a chosen event count, so every
  recovery path is drilled by tests rather than hoped-for.
"""

from repro.fault.plan import FAULT_ACTIONS, FAULT_SITES, FaultPlan, InjectedFault
from repro.fault.policy import CheckpointPolicy, RetryPolicy

__all__ = [
    "CheckpointPolicy",
    "RetryPolicy",
    "FaultPlan",
    "InjectedFault",
    "FAULT_SITES",
    "FAULT_ACTIONS",
]
