"""Checkpoint cadence and recovery-retry policies.

Both are frozen dataclasses so they can ride inside
:class:`~repro.engine.session.EngineConfig` and round-trip through a
checkpoint manifest (``dataclasses.asdict`` on the way out, dict
coercion in ``__post_init__`` on the way back in).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How supervised recovery retries after a worker crash.

    ``max_restarts`` bounds the respawn attempts per failure;
    ``delay(attempt)`` is the exponential backoff before each attempt
    (the first attempt is immediate).
    """

    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before restart ``attempt`` (1-based)."""
        if attempt <= 1:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 2)
        return min(raw, self.backoff_max)


@dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """When to take a checkpoint, and how to recover from one.

    ``every_slides`` counts watermark slides since the last snapshot,
    ``every_seconds`` counts wall-clock time; at least one must be set
    and whichever fires first wins.  ``replay_bound`` caps the
    in-memory replay log the supervised shard runtime keeps between
    snapshots (a forced snapshot is taken when the log reaches the
    bound, regardless of cadence).  ``retry`` governs recovery
    attempts after a worker crash.
    """

    every_slides: int | None = None
    every_seconds: float | None = None
    replay_bound: int = 256
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.every_slides is None and self.every_seconds is None:
            raise ValueError(
                "CheckpointPolicy needs every_slides and/or every_seconds"
            )
        if self.every_slides is not None and self.every_slides < 1:
            raise ValueError("every_slides must be >= 1")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be > 0")
        if self.replay_bound < 1:
            raise ValueError("replay_bound must be >= 1")
        # Checkpoint round trip: EngineConfig(**asdict(config)) hands the
        # nested policy back as a plain dict.
        if isinstance(self.retry, dict):
            object.__setattr__(self, "retry", RetryPolicy(**self.retry))
        elif not isinstance(self.retry, RetryPolicy):
            raise ValueError("retry must be a RetryPolicy")

    def due(self, *, slides_since: int, seconds_since: float) -> bool:
        """True when either cadence trigger has elapsed."""
        if self.every_slides is not None and slides_since >= self.every_slides:
            return True
        if (
            self.every_seconds is not None
            and seconds_since >= self.every_seconds
        ):
            return True
        return False
