"""Deterministic fault injection.

A :class:`FaultPlan` is a list of *armed* faults, each bound to an
injection **site** (a named probe point compiled into the process
transport, the checkpoint store, and the serve layer) and an **action**
(what happens when it fires).  Sites count their occurrences, so "kill
shard 1's worker on its 3rd command" is deterministic and replayable —
every recovery path gets drilled by tests instead of hoped-for.

Sites::

    worker.command   each command a shard worker dequeues
                     (ctx: shard, command, generation)
    store.fsync      the manifest fsync inside CheckpointWriter.commit
    store.commit     the atomic rename inside CheckpointWriter.commit
    callback         each result event delivered to a query callback
                     (ctx: tenant, query)
    tenant.loop      each command a tenant worker thread dequeues
                     (ctx: tenant)
    serve.ingest     each ingest batch accepted by a tenant
                     (ctx: tenant)

Actions: ``raise`` (an :class:`InjectedFault`), ``kill`` (SIGKILL the
worker process), ``tear`` (write half a length-prefixed pipe message,
then die), ``hang`` (sleep forever — drills shutdown escalation).
Only ``worker.command`` understands ``kill``/``tear``/``hang``; every
other site raises.

Plans are picklable (they ship to forked shard workers); each process
holds its own occurrence counters.  Worker-site faults default to
``generation=0`` — the pool's first incarnation — so an injected crash
does not re-fire inside the respawned worker and recovery can be
observed.  Pass ``every_generation=True`` to keep crashing respawns
(retry-budget drills).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

FAULT_SITES = (
    "worker.command",
    "store.fsync",
    "store.commit",
    "callback",
    "tenant.loop",
    "serve.ingest",
)

FAULT_ACTIONS = ("raise", "kill", "tear", "hang")

#: Actions that only make sense inside a worker process.
_WORKER_ONLY = ("kill", "tear", "hang")


class InjectedFault(RuntimeError):
    """The exception a ``raise`` action throws at its site."""


@dataclass
class _Armed:
    site: str
    action: str
    at: int
    match: dict = field(default_factory=dict)
    repeat: bool = False
    count: int = 0
    fired: int = 0


class FaultPlan:
    """A deterministic, threadable set of armed faults.

    Arm methods chain (each returns ``self``) so a drill reads as one
    expression::

        plan = FaultPlan().kill_worker(shard=1, at_command=7)
        config = EngineConfig(shards=2, shard_transport="process",
                              checkpoint_policy=CheckpointPolicy(every_slides=4))
        engine = StreamingGraphEngine(config)
        engine.inject_faults(plan)
    """

    def __init__(self) -> None:
        self._armed: list[_Armed] = []
        self._lock = threading.Lock()

    # -- pickling (plans ship into forked shard workers) ---------------
    def __getstate__(self) -> dict:
        return {"armed": self._armed}

    def __setstate__(self, state: dict) -> None:
        self._armed = state["armed"]
        self._lock = threading.Lock()

    # -- arming --------------------------------------------------------
    def arm(
        self,
        site: str,
        action: str = "raise",
        *,
        at: int = 1,
        repeat: bool = False,
        **match: object,
    ) -> "FaultPlan":
        """Arm ``action`` at ``site`` on its ``at``-th matching occurrence.

        ``match`` keys filter on the site's context (``shard=1``,
        ``command="apply"``, ``query="q2"``, ...); a value of ``None``
        matches anything.  With ``repeat=True`` the fault keeps firing
        on every occurrence from the ``at``-th on.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r} (one of {FAULT_SITES})")
        if action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r} (one of {FAULT_ACTIONS})"
            )
        if action in _WORKER_ONLY and site != "worker.command":
            raise ValueError(f"action {action!r} only applies to worker.command")
        if at < 1:
            raise ValueError("at must be >= 1 (occurrences are 1-based)")
        cleaned = {k: v for k, v in match.items() if v is not None}
        with self._lock:
            self._armed.append(
                _Armed(site=site, action=action, at=at, match=cleaned, repeat=repeat)
            )
        return self

    def _arm_worker(
        self,
        action: str,
        *,
        shard: int | None,
        at_command: int,
        command: str | None,
        every_generation: bool,
    ) -> "FaultPlan":
        match: dict[str, object] = {"shard": shard, "command": command}
        if not every_generation:
            match["generation"] = 0
        return self.arm(
            "worker.command",
            action,
            at=at_command,
            repeat=every_generation,
            **match,
        )

    def kill_worker(
        self,
        *,
        shard: int | None = None,
        at_command: int = 1,
        command: str | None = None,
        every_generation: bool = False,
    ) -> "FaultPlan":
        """SIGKILL the worker on its Nth command (generation 0 only,
        unless ``every_generation`` — which also re-fires on respawns,
        for retry-budget drills)."""
        return self._arm_worker(
            "kill",
            shard=shard,
            at_command=at_command,
            command=command,
            every_generation=every_generation,
        )

    def tear_pipe(
        self,
        *,
        shard: int | None = None,
        at_command: int = 1,
        command: str | None = None,
        every_generation: bool = False,
    ) -> "FaultPlan":
        """Write half a length-prefixed reply, then die mid-message."""
        return self._arm_worker(
            "tear",
            shard=shard,
            at_command=at_command,
            command=command,
            every_generation=every_generation,
        )

    def crash_worker(
        self,
        *,
        shard: int | None = None,
        at_command: int = 1,
        command: str | None = None,
        every_generation: bool = False,
    ) -> "FaultPlan":
        """Raise :class:`InjectedFault` inside the worker command loop."""
        return self._arm_worker(
            "raise",
            shard=shard,
            at_command=at_command,
            command=command,
            every_generation=every_generation,
        )

    def hang_worker(
        self,
        *,
        shard: int | None = None,
        at_command: int = 1,
        command: str | None = None,
    ) -> "FaultPlan":
        """Wedge the worker (sleep forever) — drills shutdown escalation."""
        return self._arm_worker(
            "hang",
            shard=shard,
            at_command=at_command,
            command=command,
            every_generation=False,
        )

    def fail_fsync(self, *, at: int = 1) -> "FaultPlan":
        """Fail the manifest fsync inside ``CheckpointWriter.commit``."""
        return self.arm("store.fsync", "raise", at=at)

    def fail_commit(self, *, at: int = 1) -> "FaultPlan":
        """Fail the atomic rename inside ``CheckpointWriter.commit``."""
        return self.arm("store.commit", "raise", at=at)

    def raise_in_callback(
        self,
        *,
        tenant: str | None = None,
        query: str | None = None,
        at_event: int = 1,
    ) -> "FaultPlan":
        """Raise inside a query result callback at a chosen event count."""
        return self.arm(
            "callback", "raise", at=at_event, tenant=tenant, query=query
        )

    def crash_tenant_loop(
        self,
        *,
        tenant: str | None = None,
        at_command: int = 1,
        repeat: bool = False,
    ) -> "FaultPlan":
        """Crash the tenant worker thread's command loop."""
        return self.arm(
            "tenant.loop", "raise", at=at_command, repeat=repeat, tenant=tenant
        )

    def fail_ingest(
        self, *, tenant: str | None = None, at: int = 1
    ) -> "FaultPlan":
        """Raise inside the serve-layer ingest path."""
        return self.arm("serve.ingest", "raise", at=at, tenant=tenant)

    # -- firing --------------------------------------------------------
    def fire(self, site: str, **ctx: object) -> str | None:
        """Record one occurrence of ``site``; return the action now due.

        Every armed fault whose ``match`` agrees with ``ctx`` counts the
        occurrence; the first one whose count reaches ``at`` (or has
        passed it, with ``repeat``) fires and returns its action string.
        Returns ``None`` when nothing is due — callers do nothing.
        """
        with self._lock:
            for spec in self._armed:
                if spec.site != site:
                    continue
                if any(ctx.get(k) != v for k, v in spec.match.items()):
                    continue
                spec.count += 1
                if spec.count == spec.at or (spec.repeat and spec.count > spec.at):
                    spec.fired += 1
                    return spec.action
        return None

    def fired(self, site: str | None = None) -> int:
        """Total times faults have fired (optionally at one site).

        Counts are per-process: faults fired inside a forked worker are
        not visible on the parent's copy of the plan.
        """
        with self._lock:
            return sum(
                spec.fired
                for spec in self._armed
                if site is None or spec.site == site
            )

    def occurrences(self, site: str) -> int:
        """Occurrences counted at ``site`` in this process (max over
        armed specs, since each spec counts only its own matches)."""
        with self._lock:
            counts = [s.count for s in self._armed if s.site == site]
            return max(counts, default=0)

    def __repr__(self) -> str:
        armed = ", ".join(
            f"{s.site}:{s.action}@{s.at}{'+' if s.repeat else ''}"
            for s in self._armed
        )
        return f"FaultPlan([{armed}])"
