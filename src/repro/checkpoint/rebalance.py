"""Offline shard rebalancing: re-partition checkpointed operator state.

A checkpoint taken under ``shards=N`` can be restored under
``shards=M`` (both >= 2): the sharded compile topology — exchange
operator placement and uid allocation — does not depend on the shard
count, so the per-shard dataflows are isomorphic and only the *state
ownership* moves.  Each state kind re-partitions by the same key its
operator routes on:

* ``path`` — the Δ-forest is partitioned by tree-root vertex
  (:func:`~repro.core.partition.vertex_owner`); trees are disjoint
  across shards, so rebalancing merges all shards' forests and deals
  them out under the new ownership.  The window adjacency is
  *replicated* (traversals need the whole snapshot graph), so shard 0's
  copy serves every new shard.
* ``pattern`` — join tables are partitioned by the first-level probe
  key (:func:`~repro.core.partition.key_owner`), which is exactly the
  key ``on_binding`` routes exchanges by.
* ``coalesce`` — partitioned instances own result keys routed by
  ``(src, trg)``; replicated instances (PATH-side rep chains) copy
  shard 0's state.
* ``sink`` — result events concatenate onto new shard 0 (engine reads
  merge all shards' sinks, so placement is free).

Timing-wheel buckets merge old-shard-major; cross-shard drain order
within one expiry instant is therefore not preserved, which is why
rebalanced restores guarantee parity of result *sets*, coverage and
``valid_at`` — the sharded engine's read surfaces — rather than
bit-identical event interleavings (same-shard-count restores keep
those too).
"""

from __future__ import annotations

from repro.core.partition import key_owner, vertex_owner
from repro.errors import CheckpointError

__all__ = ["rebalance_states"]


def rebalance_states(states: list[dict], new_n: int) -> list[dict]:
    """Re-partition per-shard operator-state maps to ``new_n`` shards.

    ``states`` holds one ``{operator_key: blob}`` map per old shard (the
    maps share an identical key set — the topologies are isomorphic).
    Returns ``new_n`` such maps.
    """
    if not states:
        raise CheckpointError("rebalance: no shard states to re-partition")
    keys = set(states[0])
    for i, shard_state in enumerate(states[1:], start=1):
        if set(shard_state) != keys:
            raise CheckpointError(
                f"rebalance: shard {i} operator keys differ from shard 0 "
                f"(mismatched topologies)"
            )
    out: list[dict] = [{} for _ in range(new_n)]
    for key in keys:
        olds = [shard_state[key] for shard_state in states]
        kind = olds[0].get("kind")
        handler = _HANDLERS.get(kind)
        if handler is None:
            raise CheckpointError(
                f"rebalance: operator {key!r} has unsupported state kind "
                f"{kind!r}"
            )
        for shard_id, blob in enumerate(handler(olds, new_n)):
            out[shard_id][key] = blob
    return out


# ----------------------------------------------------------------------
# Wheel merging
# ----------------------------------------------------------------------
def _partition_wheel(wheels: list[dict], new_n: int, owner_of) -> list[dict]:
    """Merge per-shard wheel snapshots and deal entries to new owners.

    Buckets merge old-shard-major (shard 0's entries first), preserving
    each old shard's internal FIFO order.
    """
    now = max(wheel["now"] for wheel in wheels)
    span = wheels[0]["span"]
    outs = [
        {"now": now, "span": span, "fine": {}, "coarse": {}}
        for _ in range(new_n)
    ]
    for wheel in wheels:
        for exp, items in wheel["fine"].items():
            for item in items:
                fine = outs[owner_of(item)]["fine"]
                bucket = fine.get(exp)
                if bucket is None:
                    fine[exp] = [item]
                else:
                    bucket.append(item)
        for slot, entries in wheel["coarse"].items():
            for exp, item in entries:
                coarse = outs[owner_of(item)]["coarse"]
                bucket = coarse.get(slot)
                if bucket is None:
                    coarse[slot] = [(exp, item)]
                else:
                    bucket.append((exp, item))
    return outs


# ----------------------------------------------------------------------
# Per-kind handlers
# ----------------------------------------------------------------------
def _rebalance_path(olds: list[dict], new_n: int) -> list[dict]:
    if not olds[0].get("partitioned"):
        # Replicated PATH (rep-chain placement): every shard holds the
        # full forest; copy shard 0 everywhere.
        return [olds[0]] * new_n

    now = max(blob["now"] for blob in olds)
    start_state = olds[0]["index"]["start_state"]
    trees_by_owner: list[list] = [[] for _ in range(new_n)]
    inverted_by_owner: list[list] = [[] for _ in range(new_n)]
    for blob in olds:
        for root_vertex, nodes in blob["index"]["trees"]:
            trees_by_owner[vertex_owner(root_vertex, new_n)].append(
                (root_vertex, nodes)
            )
        # Inverted-index entries map node keys to owning tree roots;
        # each entry follows its roots (disjoint across old shards, so
        # per-owner entries for the same node key merge by union).
        for node_key, roots in blob["index"]["inverted"]:
            grouped: dict[int, list] = {}
            for root in roots:
                grouped.setdefault(vertex_owner(root, new_n), []).append(root)
            for owner, owned_roots in grouped.items():
                inverted_by_owner[owner].append((node_key, owned_roots))

    merged_inverted: list[list] = []
    for entries in inverted_by_owner:
        folded: dict = {}
        for node_key, roots in entries:
            folded.setdefault(node_key, []).extend(roots)
        merged_inverted.append(list(folded.items()))

    expiry = _partition_wheel(
        [blob["node_expiry"] for blob in olds],
        new_n,
        lambda item: vertex_owner(item[0], new_n),
    )
    adjacency = olds[0]["adjacency"]
    return [
        {
            "kind": "path",
            "partitioned": True,
            "now": now,
            "index": {
                "start_state": start_state,
                "trees": trees_by_owner[shard_id],
                "inverted": merged_inverted[shard_id],
            },
            "adjacency": adjacency,
            "node_expiry": expiry[shard_id],
        }
        for shard_id in range(new_n)
    ]


def _rebalance_table(olds: list[dict], new_n: int) -> list[dict]:
    """One join-side hash table: split first-level keys by ownership."""
    tables: list[list] = [[] for _ in range(new_n)]
    counts = [0] * new_n
    for blob in olds:
        for key, group in blob["table"]:
            owner = key_owner(key, new_n)
            tables[owner].append((key, group))
            counts[owner] += sum(len(rows) for _, rows in group)
    wheels = _partition_wheel(
        [blob["wheel"] for blob in olds],
        new_n,
        lambda item: key_owner(item[2], new_n),
    )
    return [
        {
            "table": tables[shard_id],
            "count": counts[shard_id],
            "wheel": wheels[shard_id],
        }
        for shard_id in range(new_n)
    ]


def _rebalance_pattern(olds: list[dict], new_n: int) -> list[dict]:
    if not olds[0].get("partitioned"):
        return [olds[0]] * new_n
    joins_count = len(olds[0]["joins"])
    new_joins: list[list] = [[] for _ in range(new_n)]
    for join_index in range(joins_count):
        for side in (0, 1):
            sides = _rebalance_table(
                [blob["joins"][join_index][side] for blob in olds], new_n
            )
            for shard_id in range(new_n):
                if side == 0:
                    new_joins[shard_id].append([sides[shard_id]])
                else:
                    new_joins[shard_id][join_index].append(sides[shard_id])
    return [
        {"kind": "pattern", "partitioned": True, "joins": new_joins[shard_id]}
        for shard_id in range(new_n)
    ]


def _rebalance_coalesce(olds: list[dict], new_n: int) -> list[dict]:
    if not olds[0].get("partitioned"):
        return [olds[0]] * new_n

    def owner_of_result_key(key) -> int:
        # Result keys are (src, trg, label); ShardRouteOp routes by the
        # (src, trg) pair.
        return key_owner((key[0], key[1]), new_n)

    covers: list[list] = [[] for _ in range(new_n)]
    droppeds: list[list] = [[] for _ in range(new_n)]
    for blob in olds:
        for key, intervals in blob["cover"]:
            covers[owner_of_result_key(key)].append((key, intervals))
        for key, entries in blob["dropped"]:
            droppeds[owner_of_result_key(key)].append((key, entries))
    wheels = _partition_wheel(
        [blob["wheel"] for blob in olds], new_n, owner_of_result_key
    )
    return [
        {
            "kind": "coalesce",
            "partitioned": True,
            "cover": covers[shard_id],
            "dropped": droppeds[shard_id],
            "wheel": wheels[shard_id],
        }
        for shard_id in range(new_n)
    ]


def _rebalance_sink(olds: list[dict], new_n: int) -> list[dict]:
    merged: list = []
    for blob in olds:
        merged.extend(blob["events"])
    out = [{"kind": "sink", "events": merged}]
    out.extend({"kind": "sink", "events": []} for _ in range(new_n - 1))
    return out


_HANDLERS = {
    "path": _rebalance_path,
    "pattern": _rebalance_pattern,
    "coalesce": _rebalance_coalesce,
    "sink": _rebalance_sink,
}
