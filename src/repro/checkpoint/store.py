"""Durable checkpoint storage: versioned, atomic, self-verifying.

A checkpoint is a directory holding a ``MANIFEST.json`` plus one pickle
blob per state unit (engine metadata, per-shard operator state, serving
channels).  The manifest records the format version and the sha256 +
size of every blob, so a truncated or tampered blob is detected at read
time — restore fails with a :class:`~repro.errors.CheckpointError`
naming the offending blob instead of materializing a half-restored
engine.

Write protocol (:class:`DirectoryCheckpointStore`): blobs are staged in
a hidden temp directory next to the store root and the whole checkpoint
becomes visible with a single atomic ``os.replace`` — a crash mid-write
leaves only an invisible staging directory, never a partial checkpoint.
Checkpoint ids are monotonically increasing (``ckpt-000001``, ...), and
a ``retain`` bound garbage-collects the oldest committed checkpoints
past the ``K`` most recent ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil

from repro.errors import CheckpointError

__all__ = [
    "FORMAT_VERSION",
    "CheckpointReader",
    "CheckpointStore",
    "CheckpointWriter",
    "DirectoryCheckpointStore",
]

#: Bumped whenever the manifest or any blob schema changes shape.
FORMAT_VERSION = 1

_MANIFEST = "MANIFEST.json"
_PREFIX = "ckpt-"


def _blob_filename(name: str) -> str:
    """Map a logical blob name to a flat on-disk filename.

    Blob names are hierarchical (``tenants/alice/state-0``); the
    directory layout stays flat so the atomic-rename commit covers one
    directory.
    """
    return name.replace("/", "__") + ".pkl"


class CheckpointWriter:
    """One in-progress checkpoint: stage blobs, then commit atomically."""

    def __init__(self, store: "DirectoryCheckpointStore", checkpoint_id: str, staging: str):
        self._store = store
        self.checkpoint_id = checkpoint_id
        self._staging = staging
        self._blobs: dict[str, dict] = {}
        self._meta: dict = {}
        self._done = False
        self._fault_plan = getattr(store, "fault_plan", None)

    def put(self, name: str, payload: object) -> None:
        """Serialize ``payload`` as blob ``name`` (pickle protocol)."""
        if self._done:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id} is already committed"
            )
        if name in self._blobs:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: duplicate blob {name!r}"
            )
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = os.path.join(self._staging, _blob_filename(name))
        with open(path, "wb") as handle:
            handle.write(data)
        self._blobs[name] = {
            "sha256": hashlib.sha256(data).hexdigest(),
            "size": len(data),
        }

    def set_meta(self, **meta) -> None:
        """Attach free-form metadata to the manifest (config echo, kind)."""
        self._meta.update(meta)

    def commit(self) -> str:
        """Write the manifest and atomically publish the checkpoint."""
        if self._done:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id} is already committed"
            )
        manifest = {
            "format_version": FORMAT_VERSION,
            "checkpoint_id": self.checkpoint_id,
            "blobs": self._blobs,
            "meta": self._meta,
        }
        manifest_path = os.path.join(self._staging, _MANIFEST)
        try:
            with open(manifest_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.flush()
                self._fire("store.fsync", "fsync")
                os.fsync(handle.fileno())
            final = os.path.join(self._store.root, self.checkpoint_id)
            self._fire("store.commit", "rename")
            os.replace(self._staging, final)
        except OSError as exc:
            # The staged directory is discarded; every previously
            # committed checkpoint is untouched (the atomic rename never
            # happened), so the store stays at its last good state.
            self.abort()
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id} failed to commit: {exc}"
            ) from exc
        self._done = True
        self._store._collect_garbage()
        return self.checkpoint_id

    def _fire(self, site: str, step: str) -> None:
        plan = self._fault_plan
        if plan is not None and plan.fire(site) is not None:
            raise OSError(f"injected {step} failure ({site})")

    def abort(self) -> None:
        """Discard the staged checkpoint (idempotent)."""
        if not self._done:
            shutil.rmtree(self._staging, ignore_errors=True)
            self._done = True


class CheckpointReader:
    """Verified read access to one committed checkpoint."""

    def __init__(self, root: str, checkpoint_id: str):
        self._root = root
        self.checkpoint_id = checkpoint_id
        path = os.path.join(root, _MANIFEST)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"checkpoint {checkpoint_id}: missing {_MANIFEST}"
            ) from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {checkpoint_id}: unparseable {_MANIFEST}: {exc}"
            ) from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {checkpoint_id}: format version {version!r} "
                f"is not supported (this build reads version {FORMAT_VERSION})"
            )
        blobs = manifest.get("blobs")
        if not isinstance(blobs, dict):
            raise CheckpointError(
                f"checkpoint {checkpoint_id}: manifest field 'blobs' is "
                f"{type(blobs).__name__}, expected an object"
            )
        self.manifest = manifest
        self.meta: dict = manifest.get("meta", {})

    def blob_names(self) -> list[str]:
        return sorted(self.manifest["blobs"])

    def has(self, name: str) -> bool:
        return name in self.manifest["blobs"]

    def get(self, name: str) -> object:
        """Load and verify blob ``name``.

        The stored sha256 is checked before unpickling, so truncation or
        bit-rot surfaces as a :class:`~repro.errors.CheckpointError`
        naming the blob — never as an arbitrary unpickling failure (or
        silently wrong state).
        """
        entry = self.manifest["blobs"].get(name)
        if entry is None:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: no blob named {name!r}"
            )
        path = os.path.join(self._root, _blob_filename(name))
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: blob {name!r} file is missing"
            ) from exc
        if len(data) != entry["size"]:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: blob {name!r} is "
                f"{len(data)} bytes, manifest says {entry['size']} (truncated?)"
            )
        digest = hashlib.sha256(data).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: blob {name!r} fails its "
                f"sha256 check (corrupted)"
            )
        try:
            return pickle.loads(data)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id}: blob {name!r} does not "
                f"unpickle: {exc!r}"
            ) from exc


class CheckpointStore:
    """Abstract checkpoint storage; see :class:`DirectoryCheckpointStore`."""

    def begin(self) -> CheckpointWriter:
        raise NotImplementedError

    def open(self, checkpoint_id: str | None = None) -> CheckpointReader:
        raise NotImplementedError

    def list(self) -> list[str]:
        raise NotImplementedError


class DirectoryCheckpointStore(CheckpointStore):
    """Checkpoints as subdirectories of ``path``, committed atomically.

    ``retain`` keeps the most recent K committed checkpoints (None keeps
    everything); collection runs after each successful commit, so the
    newest checkpoint is always durable before an older one is removed.

    ``fault_plan`` threads a :class:`~repro.fault.plan.FaultPlan` into
    the commit path: armed ``store.fsync`` / ``store.commit`` faults
    fail the manifest fsync or the atomic rename, and the writer proves
    the failure leaves the previous checkpoint intact.
    """

    def __init__(
        self,
        path: str,
        retain: int | None = None,
        fault_plan: object | None = None,
    ):
        if retain is not None and retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.root = os.fspath(path)
        self.retain = retain
        self.fault_plan = fault_plan
        os.makedirs(self.root, exist_ok=True)

    def list(self) -> list[str]:
        """Committed checkpoint ids, oldest first."""
        out = []
        for entry in os.listdir(self.root):
            if entry.startswith(_PREFIX) and os.path.isdir(
                os.path.join(self.root, entry)
            ):
                out.append(entry)
        return sorted(out)

    def begin(self) -> CheckpointWriter:
        existing = self.list()
        if existing:
            last = int(existing[-1][len(_PREFIX):])
        else:
            last = 0
        checkpoint_id = f"{_PREFIX}{last + 1:06d}"
        staging = os.path.join(self.root, f".staging-{checkpoint_id}-{os.getpid()}")
        shutil.rmtree(staging, ignore_errors=True)
        os.makedirs(staging)
        return CheckpointWriter(self, checkpoint_id, staging)

    def open(self, checkpoint_id: str | None = None) -> CheckpointReader:
        if checkpoint_id is None:
            committed = self.list()
            if not committed:
                raise CheckpointError(f"no checkpoints in {self.root}")
            checkpoint_id = committed[-1]
        root = os.path.join(self.root, checkpoint_id)
        if not os.path.isdir(root):
            raise CheckpointError(
                f"no checkpoint {checkpoint_id!r} in {self.root}"
            )
        return CheckpointReader(root, checkpoint_id)

    def _collect_garbage(self) -> None:
        if self.retain is None:
            return
        committed = self.list()
        for stale in committed[: max(0, len(committed) - self.retain)]:
            shutil.rmtree(os.path.join(self.root, stale), ignore_errors=True)
