"""Durability: checkpoint/restore of live engines, bit-identical resume.

The subsystem snapshots a :class:`~repro.engine.session.StreamingGraphEngine`
at a watermark boundary — every stateful operator's exact state,
the vertex interner, the executor clock and the registered query set —
and restores it into a fresh process such that replaying the stream
suffix yields bit-identical results to the uninterrupted run.  See
:mod:`repro.checkpoint.store` for the on-disk format and
:mod:`repro.checkpoint.rebalance` for restore-with-a-different-shard-count.
"""

from repro.checkpoint.rebalance import rebalance_states
from repro.checkpoint.store import (
    FORMAT_VERSION,
    CheckpointReader,
    CheckpointStore,
    CheckpointWriter,
    DirectoryCheckpointStore,
)
from repro.checkpoint.topology import load_operator_states, operator_keys
from repro.errors import CheckpointError

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointReader",
    "CheckpointStore",
    "CheckpointWriter",
    "DirectoryCheckpointStore",
    "load_operator_states",
    "operator_keys",
    "rebalance_states",
]
