"""Deterministic operator naming for checkpoint blobs.

A checkpoint must match each state blob back to the operator instance
that produced it in a *fresh* process.  Positional indexes into
``DataflowGraph.operators`` are not stable — the list's order depends on
the full register/unregister history (pruning removes entries), which a
restore does not replay.  What *is* reproducible is the topology each
registered query compiles to: re-registering the same plans in the same
order against an empty engine yields isomorphic dataflows.

So operators are keyed structurally: for each query, in registration
order, walk upstream from its sink — depth-first, input ports in sorted
order — and name each operator by the first query that reaches it plus
its visit index within that walk (shared operators, e.g. a cached
coalescer feeding two queries, are keyed once, under the first owner).
The key embeds the operator's own name as a cross-check: a blob whose
key says ``q1/3:coalesce[knows]`` can only load into an operator named
``coalesce[knows]`` at that position.

Shared by the serial engine, inline shards, and forked shard workers —
all three must produce identical keys for identical query sets.
"""

from __future__ import annotations

__all__ = ["load_operator_states", "operator_keys"]


def operator_keys(named_sinks, graph) -> dict:
    """``{key: operator}`` over every operator reachable from the given
    query sinks.

    ``named_sinks`` is an iterable of ``(query_name, sink_op)`` in query
    registration order; ``graph`` is the :class:`DataflowGraph` holding
    them (needed to invert the producer→consumer wiring).
    """
    producers: dict[int, dict[int, object]] = {}
    for op in graph.operators:
        for consumer, port in op._downstream:
            producers.setdefault(id(consumer), {})[port] = op

    out: dict[str, object] = {}
    owned: set[int] = set()
    for qname, sink in named_sinks:
        index = 0
        stack = [sink]
        while stack:
            op = stack.pop()
            if id(op) not in owned:
                owned.add(id(op))
                out[f"{qname}/{index}:{op.name}"] = op
                index += 1
            # Children pushed in reverse port order so the walk visits
            # ports ascending — the one traversal order both snapshot
            # and restore reproduce.
            ports = producers.get(id(op))
            if ports:
                for port in sorted(ports, reverse=True):
                    child = ports[port]
                    if id(child) not in owned:
                        stack.append(child)
        # NOTE: an operator pushed while unvisited may be popped after a
        # different path already owned it; the `owned` check on pop (not
        # on push alone) keeps indexes deterministic regardless.
    return out


def load_operator_states(keys: dict, blobs: dict) -> None:
    """Apply a ``{key: blob}`` map onto the keyed operators.

    All-or-nothing at the validation level: the stateful key set and the
    blob key set must match exactly — a blob with no operator, or a
    stateful operator with no blob, means the snapshot was taken against
    a different query set (or is corrupted) and restore must not
    proceed.  Any per-operator restore failure is re-raised as a
    :class:`~repro.errors.CheckpointError` naming the operator key.
    """
    from repro.errors import CheckpointError

    # A fresh operator snapshots to None iff it is stateless (the base
    # hook); probing is cheap on empty state and keeps one source of
    # truth for which operators checkpoint.
    stateful = {
        key: op for key, op in keys.items() if op.snapshot_state() is not None
    }
    missing = sorted(key for key in stateful if key not in blobs)
    if missing:
        raise CheckpointError(
            f"snapshot has no state blob for operator(s) {missing}"
        )
    extra = sorted(key for key in blobs if key not in stateful)
    if extra:
        raise CheckpointError(
            f"snapshot carries state for unknown operator(s) {extra} "
            "(was it taken against a different query set?)"
        )
    for key, op in stateful.items():
        try:
            op.restore_state(blobs[key])
        except CheckpointError as exc:
            raise CheckpointError(f"operator {key}: {exc}") from exc
        except Exception as exc:
            raise CheckpointError(
                f"operator {key}: restore failed: {exc!r}"
            ) from exc
