"""Exception hierarchy for the streaming graph query processor.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidIntervalError(ReproError):
    """Raised when a validity interval would be empty or inverted."""


class StreamOrderError(ReproError):
    """Raised when tuples are pushed into a stream out of timestamp order."""


class QueryValidationError(ReproError):
    """Raised when a Datalog program is not a valid Regular Query."""


class ParseError(ReproError):
    """Raised by the Datalog, regex, and G-CORE parsers on malformed input.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """Raised when a logical plan cannot be translated or compiled."""


class ExecutionError(ReproError):
    """Raised when the dataflow executor encounters an inconsistent state."""
