"""Exception hierarchy for the streaming graph query processor.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidIntervalError(ReproError):
    """Raised when a validity interval would be empty or inverted."""


class StreamOrderError(ReproError):
    """Raised when tuples are pushed into a stream out of timestamp order."""


class QueryValidationError(ReproError):
    """Raised when a Datalog program is not a valid Regular Query."""


class ParseError(ReproError):
    """Raised by the Datalog, regex, and G-CORE parsers on malformed input.

    Carries the position of the offending token when available.  When the
    parser additionally supplies the ``source`` text, the error computes
    the 1-based ``line``/``column`` of the offence and renders a
    caret-annotated excerpt::

        expected identifier, found ')' (line 2, column 11)
          Answer(x, ) <- knows(x, y).
                    ^

    ``position`` remains the flat character offset into ``source`` (the
    historical surface, kept for backward compatibility).
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        *,
        source: str | None = None,
    ):
        self.reason = message
        self.position = position
        self.source = source
        self.line: int | None = None
        self.column: int | None = None
        if position is not None and source is not None:
            # Clamp: "unexpected end of input" errors point one past the
            # last character.
            offset = min(max(position, 0), len(source))
            prefix = source[:offset]
            self.line = prefix.count("\n") + 1
            self.column = offset - (prefix.rfind("\n") + 1) + 1
            lines = source.splitlines()
            excerpt = lines[self.line - 1] if self.line - 1 < len(lines) else ""
            caret = " " * (self.column - 1) + "^"
            message = (
                f"{message} (line {self.line}, column {self.column})\n"
                f"  {excerpt}\n"
                f"  {caret}"
            )
        elif position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanError(ReproError):
    """Raised when a logical plan cannot be translated or compiled."""


class ExecutionError(ReproError):
    """Raised when the dataflow executor encounters an inconsistent state."""


class HorizonError(ExecutionError):
    """Raised by ``valid_at(t)`` for instants the engine cannot answer
    exactly yet.

    ``t`` lies *ahead of the last performed window movement* but *before
    the expiry horizon* (the instant by which everything ingested so far
    has expired): answering would require window movements that have not
    been performed.  Call ``engine.advance_to(t)`` first.  Instants at or
    past the horizon are answered exactly (the empty set) on every
    backend; instants at or behind the last performed movement are
    answered exactly from retained state/history.

    Subclasses :class:`ExecutionError`, so existing ``except
    ExecutionError`` call sites keep working.
    """


class WorkerCrashError(ExecutionError):
    """Raised when a shard worker process crashes or its pipe breaks.

    Names the shard, the command that was in flight, and (when the
    worker managed to report before dying) the worker-side traceback
    text.  Under a supervised runtime (``EngineConfig.checkpoint_policy``
    set on the process transport) crashes are recovered automatically
    and this error only surfaces through :class:`RecoveryError` once the
    retry budget is exhausted; unsupervised pools raise it directly and
    poison the engine.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        command: str | None = None,
        traceback_text: str | None = None,
    ):
        super().__init__(message)
        self.shard = shard
        self.command = command
        self.traceback_text = traceback_text

    @property
    def summary(self) -> str:
        """First line of the message (sans any appended traceback)."""
        return str(self.args[0]).splitlines()[0]


class RecoveryError(ExecutionError):
    """Raised when supervised worker recovery exhausts its retry budget.

    Carries the final :class:`WorkerCrashError` as ``__cause__``; the
    worker pool is torn down and the engine poisoned exactly like an
    unsupervised failure.
    """


class ServeError(ReproError):
    """Raised by the serving layer for infrastructure failures.

    Distinct from admission/validation errors: a ``ServeError`` means a
    server-side component (a tenant worker thread, a quarantined query
    channel) is broken, not that the request was bad.  Mapped to HTTP
    503 by the server.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read, or restored.

    Restore failures are *atomic*: the error names the offending blob or
    manifest field and the partially built engine is discarded — a failed
    restore never returns (or leaves behind) a half-restored engine.
    """


class DecodeError(ReproError, KeyError):
    """Raised when decoding a dense vertex id that was never interned.

    Interned ids are engine-private: an id minted by one engine instance
    means nothing to another.  Every Interner read surface
    (``engine.decode``, result decoding) raises this — carrying the
    offending id — instead of returning an arbitrary value or an
    ``IndexError``.  Subclasses :class:`KeyError` because the Interner is
    a (bijective) mapping and callers may reasonably catch that.
    """

    def __init__(self, ident: object):
        self.ident = ident
        super().__init__(
            f"id {ident!r} was never interned by this engine "
            "(decode only accepts ids minted by the same engine instance)"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]
