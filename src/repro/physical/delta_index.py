"""Δ-PATH: spanning-forest state for streaming path navigation
(Definitions 21-22).

The index maintains, per root vertex ``x``, a spanning tree ``T_x`` over
*(vertex, automaton-state)* pairs: ``(u, s)`` is in ``T_x`` at time ``t``
when the snapshot graph contains a path from ``x`` to ``u`` whose label
word drives the DFA from its start state to ``s``.  Each node stores the
validity interval of the *best* (latest-expiring) such path; following
parent pointers reconstructs the actual path, which is how PATH returns
materialized paths as first-class citizens.

The module also provides:

* :class:`WindowAdjacency` — the windowed snapshot graph of the operator's
  inputs (intervals included) with lazy expiry;
* :func:`repair_nodes` — the Dijkstra-style max-expiry re-derivation used
  for explicit deletions (Section 6.2.5) and, by the negative-tuple
  operator, for window expirations.

Both PATH physical operators build on these structures; they differ only
in their maintenance policies (see :mod:`repro.physical.spath` and
:mod:`repro.physical.rpq_negative`).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Callable

from repro.core.columns import INSERT
from repro.core.expiry import TimingWheel
from repro.core.intervals import FOREVER, Interval
from repro.core.tuples import EdgePayload, Label, PathPayload, Vertex
from repro.errors import ExecutionError
from repro.regex.dfa import DFA

NodeKey = tuple[Vertex, int]


class TreeNode:
    """A node of a spanning tree: the best path from the root to a
    (vertex, state) pair.

    ``children`` is an insertion-ordered dict used as a set: removal
    and repair traversals iterate it, and restoring a checkpoint must
    reproduce that iteration order exactly (a rebuilt ``set``'s order
    depends on its hash-table history, which a restore cannot replay).
    """

    __slots__ = ("ts", "exp", "parent", "via_label", "children")

    def __init__(
        self,
        ts: int,
        exp: int,
        parent: NodeKey | None,
        via_label: Label | None,
    ):
        self.ts = ts
        self.exp = exp
        self.parent = parent
        self.via_label = via_label
        self.children: dict[NodeKey, None] = {}


class SpanningTree:
    """Spanning tree ``T_x`` rooted at ``(x, start_state)`` (Definition 21)."""

    def __init__(self, root_vertex: Vertex, start_state: int):
        self.root_vertex = root_vertex
        self.root: NodeKey = (root_vertex, start_state)
        # The root is a zero-length path: always valid, never expiring.
        self.nodes: dict[NodeKey, TreeNode] = {
            self.root: TreeNode(ts=0, exp=FOREVER, parent=None, via_label=None)
        }

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.nodes

    def get(self, key: NodeKey) -> TreeNode | None:
        return self.nodes.get(key)

    def add_child(
        self,
        parent_key: NodeKey,
        child_key: NodeKey,
        ts: int,
        exp: int,
        via_label: Label,
    ) -> TreeNode:
        if child_key in self.nodes:
            raise ExecutionError(f"node {child_key} already in tree {self.root}")
        parent = self.nodes[parent_key]
        node = TreeNode(ts, exp, parent_key, via_label)
        self.nodes[child_key] = node
        parent.children[child_key] = None
        return node

    def reparent(
        self, child_key: NodeKey, new_parent_key: NodeKey, via_label: Label
    ) -> None:
        node = self.nodes[child_key]
        if node.parent is not None:
            old_parent = self.nodes.get(node.parent)
            if old_parent is not None:
                old_parent.children.pop(child_key, None)
        node.parent = new_parent_key
        node.via_label = via_label
        self.nodes[new_parent_key].children[child_key] = None

    def remove_subtree(self, key: NodeKey) -> list[tuple[NodeKey, TreeNode]]:
        """Detach and remove ``key`` and all its descendants.

        Returns the removed (key, node) pairs so callers can unregister
        them from the inverted index and emit retractions.
        """
        root_node = self.nodes.get(key)
        if root_node is None:
            return []
        if key == self.root:
            raise ExecutionError("cannot remove the root of a spanning tree")
        if root_node.parent is not None:
            parent = self.nodes.get(root_node.parent)
            if parent is not None:
                parent.children.pop(key, None)
        removed: list[tuple[NodeKey, TreeNode]] = []
        stack = [key]
        while stack:
            current = stack.pop()
            node = self.nodes.pop(current, None)
            if node is None:
                continue
            removed.append((current, node))
            stack.extend(node.children)
        return removed

    def path_to(self, key: NodeKey) -> PathPayload:
        """Materialize the path from the root to ``key`` (parent walk)."""
        hops: list[EdgePayload] = []
        current = key
        while True:
            node = self.nodes[current]
            if node.parent is None:
                break
            assert node.via_label is not None
            hops.append(EdgePayload(node.parent[0], current[0], node.via_label))
            current = node.parent
        hops.reverse()
        return PathPayload(tuple(hops))

    def size(self) -> int:
        return len(self.nodes)


class DeltaPathIndex:
    """The forest of spanning trees plus the hash-based inverted index
    from (vertex, state) pairs to the trees containing them
    (Definition 22)."""

    def __init__(self, start_state: int):
        self.start_state = start_state
        self.trees: dict[Vertex, SpanningTree] = {}
        # Insertion-ordered dict-as-set per key, for the same restore-
        # determinism reason as ``TreeNode.children``.
        self._inverted: dict[NodeKey, dict[Vertex, None]] = defaultdict(dict)

    def tree(self, root_vertex: Vertex) -> SpanningTree | None:
        return self.trees.get(root_vertex)

    def ensure_tree(self, root_vertex: Vertex) -> SpanningTree:
        tree = self.trees.get(root_vertex)
        if tree is None:
            tree = SpanningTree(root_vertex, self.start_state)
            self.trees[root_vertex] = tree
            self.register(root_vertex, tree.root)
        return tree

    def register(self, root_vertex: Vertex, key: NodeKey) -> None:
        self._inverted[key][root_vertex] = None

    def unregister(self, root_vertex: Vertex, key: NodeKey) -> None:
        roots = self._inverted.get(key)
        if roots is not None:
            roots.pop(root_vertex, None)
            if not roots:
                del self._inverted[key]

    def roots_containing(self, key: NodeKey) -> tuple[Vertex, ...]:
        return tuple(self._inverted.get(key, ()))

    def drop_tree_if_trivial(self, root_vertex: Vertex) -> None:
        tree = self.trees.get(root_vertex)
        if tree is not None and tree.size() == 1:
            self.unregister(root_vertex, tree.root)
            del self.trees[root_vertex]

    def state_size(self) -> int:
        return sum(tree.size() for tree in self.trees.values())

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable forest: per tree, nodes in dict (insertion)
        order with children captured in their own insertion order.

        Both orders matter for bit-identical resume: subtree removal and
        repair traverse ``children``, and ``roots_containing`` iterates
        the inverted index's entries.  Because every container here is
        an insertion-ordered dict, re-inserting the captured sequence
        reproduces the live engine's iteration order exactly.
        """
        trees = []
        for root_vertex, tree in self.trees.items():
            nodes = [
                (key, node.ts, node.exp, node.parent, node.via_label,
                 list(node.children))
                for key, node in tree.nodes.items()
            ]
            trees.append((root_vertex, nodes))
        inverted = [
            (key, list(roots)) for key, roots in self._inverted.items()
        ]
        return {
            "start_state": self.start_state,
            "trees": trees,
            "inverted": inverted,
        }

    def restore_state(self, state: dict) -> None:
        self.start_state = state["start_state"]
        self.trees = {}
        for root_vertex, nodes in state["trees"]:
            tree = SpanningTree(root_vertex, self.start_state)
            tree.nodes = {}
            for key, ts, exp, parent, via_label, children in nodes:
                node = TreeNode(ts, exp, parent, via_label)
                node.children = dict.fromkeys(
                    tuple(child) for child in children
                )
                tree.nodes[key] = node
            self.trees[root_vertex] = tree
        self._inverted = defaultdict(dict)
        for key, roots in state["inverted"]:
            self._inverted[tuple(key)] = dict.fromkeys(roots)


class WindowAdjacency:
    """The windowed snapshot graph of a PATH operator's inputs.

    Stores, per directed labeled edge, the multiset of validity intervals
    currently known (parallel re-insertions of the same edge keep separate
    intervals so explicit deletions can remove exactly one occurrence).
    Expired intervals are purged through a
    :class:`~repro.core.expiry.TimingWheel` keyed on expiry instant, so
    each purge touches only the edges that actually expired.
    """

    def __init__(self) -> None:
        self._out: dict[Vertex, dict[tuple[Label, Vertex], list[Interval]]] = (
            defaultdict(dict)
        )
        self._in: dict[Vertex, dict[tuple[Label, Vertex], list[Interval]]] = (
            defaultdict(dict)
        )
        self._expiry = TimingWheel()
        self._size = 0

    def add(self, u: Vertex, v: Vertex, label: Label, interval: Interval) -> None:
        out_group = self._out[u]
        out_key = (label, v)
        rows = out_group.get(out_key)
        if rows is None:
            out_group[out_key] = rows = []
        rows.append(interval)
        in_group = self._in[v]
        in_key = (label, u)
        rows = in_group.get(in_key)
        if rows is None:
            in_group[in_key] = rows = []
        rows.append(interval)
        self._size += 1
        exp = interval.exp
        wheel = self._expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((u, label, v))
        else:
            wheel.schedule(exp, (u, label, v))

    def add_many(
        self, edges: "list[tuple[Vertex, Vertex, Label, Interval]]"
    ) -> None:
        """Bulk insert a batch of windowed edges.

        Only sound when nothing traverses the snapshot graph between the
        individual insertions (the PATH operators' Expand traversals do,
        so their batch handlers ingest per edge; bulk loading is for
        state rebuilds and pre-windowed replays).
        """
        out = self._out
        inn = self._in
        schedule = self._expiry.schedule
        for u, v, label, interval in edges:
            out[u].setdefault((label, v), []).append(interval)
            inn[v].setdefault((label, u), []).append(interval)
            schedule(interval.exp, (u, label, v))
        self._size += len(edges)

    def remove(self, u: Vertex, v: Vertex, label: Label, interval: Interval) -> bool:
        """Remove one occurrence of the exact interval; False when absent."""
        out_rows = self._out.get(u, {}).get((label, v))
        if not out_rows or interval not in out_rows:
            return False
        out_rows.remove(interval)
        if not out_rows:
            del self._out[u][(label, v)]
        in_rows = self._in[v][(label, u)]
        in_rows.remove(interval)
        if not in_rows:
            del self._in[v][(label, u)]
        self._size -= 1
        return True

    def out_group(self, u: Vertex) -> "dict[tuple[Label, Vertex], list[Interval]] | None":
        """Raw ``(label, v) -> intervals`` out-group (hot-path view).

        Traversal loops iterate this directly and pick the valid
        max-expiry interval inline — skipping the per-call result-list
        construction of :meth:`out_edges`, and skipping the interval scan
        entirely for neighbors whose label has no DFA transition.
        """
        return self._out.get(u)

    def in_group(self, v: Vertex) -> "dict[tuple[Label, Vertex], list[Interval]] | None":
        """Raw ``(label, u) -> intervals`` in-group (hot-path view)."""
        return self._in.get(v)

    def out_edges(self, u: Vertex, now: int) -> list[tuple[Label, Vertex, Interval]]:
        """Edges leaving ``u`` that are valid at instant ``now``.

        When parallel occurrences are simultaneously valid, the one with
        the largest expiry is reported (the coalesce aggregation S-PATH
        builds on).  Returns a list (not a generator): this sits inside
        the Expand/repair traversal loops, where generator resumption
        overhead is measurable.
        """
        group = self._out.get(u)
        result: list[tuple[Label, Vertex, Interval]] = []
        if not group:
            return result
        append = result.append
        for (label, v), intervals in group.items():
            best: Interval | None = None
            best_exp = now
            for interval in intervals:
                exp = interval.exp
                if exp > best_exp and interval.ts <= now:
                    best = interval
                    best_exp = exp
            if best is not None:
                append((label, v, best))
        return result

    def in_edges(self, v: Vertex, now: int) -> list[tuple[Label, Vertex, Interval]]:
        """Edges entering ``v`` valid at ``now`` (largest expiry per edge)."""
        group = self._in.get(v)
        result: list[tuple[Label, Vertex, Interval]] = []
        if not group:
            return result
        append = result.append
        for (label, u), intervals in group.items():
            best: Interval | None = None
            best_exp = now
            for interval in intervals:
                exp = interval.exp
                if exp > best_exp and interval.ts <= now:
                    best = interval
                    best_exp = exp
            if best is not None:
                append((label, u, best))
        return result

    def purge(self, t: int) -> None:
        """Drop every interval with ``exp <= t`` (wheel-driven: work is
        proportional to the entries that expired).  Parallel occurrences
        of one edge schedule one entry each; the dedup avoids re-filtering
        the same interval list per occurrence."""
        drained = self._expiry.advance(t)
        for u, label, v in drained if len(drained) < 2 else set(drained):
            out_rows = self._out.get(u, {}).get((label, v))
            if not out_rows:
                continue
            kept = [iv for iv in out_rows if iv.exp > t]
            dropped = len(out_rows) - len(kept)
            if dropped == 0:
                continue
            self._size -= dropped
            if kept:
                self._out[u][(label, v)] = kept
                self._in[v][(label, u)] = list(kept)
            else:
                del self._out[u][(label, v)]
                del self._in[v][(label, u)]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable snapshot (both directions captured explicitly so
        per-list interval order — which drives max-expiry tie-breaks —
        survives verbatim)."""

        def encode(index):
            return [
                (
                    vertex,
                    [
                        (label, other, [(iv.ts, iv.exp) for iv in rows])
                        for (label, other), rows in groups.items()
                    ],
                )
                for vertex, groups in index.items()
            ]

        return {
            "out": encode(self._out),
            "in": encode(self._in),
            "wheel": self._expiry.snapshot(),
            "size": self._size,
        }

    def restore_state(self, state: dict) -> None:
        def decode(entries):
            index: dict = defaultdict(dict)
            for vertex, groups in entries:
                group = index[vertex]
                for label, other, rows in groups:
                    group[(label, other)] = [
                        Interval(ts, exp) for ts, exp in rows
                    ]
            return index

        self._out = decode(state["out"])
        self._in = decode(state["in"])
        self._expiry = TimingWheel()
        self._expiry.restore(state["wheel"])
        self._size = state["size"]


class ColumnarPathIngest:
    """Columnar ingestion shared by the two PATH operators.

    Mixed into :class:`~repro.dataflow.graph.PhysicalOperator`
    subclasses that provide ``_insert`` / ``_delete``,
    ``materialize_paths``, ``out_label`` and a ``_node_expiry``
    :class:`~repro.core.expiry.TimingWheel` — one copy of the
    column-at-a-time loop and the expiry scheduling, so the
    negative-tuple and S-PATH operators cannot silently diverge.
    """

    def _ingest_columns(self, batch, label: Label) -> None:
        """Consume one columnar batch in arrival order.

        One :class:`~repro.core.intervals.Interval` is allocated per
        edge (the adjacency stores it anyway); with path
        materialization off, results are captured as scalar columns,
        otherwise they stay rows (payloads cannot travel in columns).
        """
        if not self.materialize_paths:
            self._begin_batch_cols(self.out_label)
            try:
                self._consume_columns(batch.columns, batch.signs, label)
            finally:
                self._end_batch_cols(batch.boundary)
        else:
            self._begin_batch()
            try:
                self._consume_columns(batch.columns, batch.signs, label)
            finally:
                self._end_batch(batch.boundary)

    def _consume_columns(self, cols, signs, label: Label) -> None:
        # PATH expansion is order-sensitive (the expand-only operator
        # keeps the first derivation), so vector batches are consumed in
        # the same arrival-order row loop — row_lists() converts
        # array-backed columns to plain ints up front (one C call per
        # column; numpy scalars must not enter adjacency/tree keys).
        src, dst, ts, exp = cols.row_lists()
        if signs is None:
            insert = self._insert
            for i in range(len(src)):
                insert(src[i], dst[i], label, Interval(ts[i], exp[i]))
        else:
            for i in range(len(src)):
                if signs[i] == INSERT:
                    self._insert(src[i], dst[i], label, Interval(ts[i], exp[i]))
                else:
                    self._delete(src[i], dst[i], label, Interval(ts[i], exp[i]))

    def _consume_columns_arr(self, cols, signs, label: Label) -> None:
        """Arrays-layout variant of :meth:`_consume_columns`: validity
        travels as two scalars straight into the array adjacency — no
        Interval is allocated per ingested edge.  Installed as the
        instance's ``_consume_columns`` by ``configure_state_layout``."""
        src, dst, ts, exp = cols.row_lists()
        if signs is None:
            insert = self._insert_arr
            for i in range(len(src)):
                insert(src[i], dst[i], label, ts[i], exp[i])
        else:
            for i in range(len(src)):
                if signs[i] == INSERT:
                    self._insert_arr(src[i], dst[i], label, ts[i], exp[i])
                else:
                    self._delete_arr(src[i], dst[i], label, ts[i], exp[i])

    def _schedule_expiry(self, root, key: NodeKey, exp: int) -> None:
        wheel = self._node_expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((root, key))
        else:
            wheel.schedule(exp, (root, key))


def reverse_transitions(dfa: DFA) -> dict[tuple[Label, int], list[int]]:
    """Map (label, target_state) → source states; used by repairs."""
    reverse: dict[tuple[Label, int], list[int]] = defaultdict(list)
    for source, by_label in dfa.transitions.items():
        for label, target in by_label.items():
            reverse[(label, target)].append(source)
    return reverse


def repair_nodes(
    tree: SpanningTree,
    marked: set[NodeKey],
    adjacency: WindowAdjacency,
    dfa: DFA,
    reverse: dict[tuple[Label, int], list[int]],
    now: int,
    on_fix: Callable[[NodeKey, TreeNode], None],
    on_remove: Callable[[NodeKey, TreeNode], None],
) -> None:
    """Re-derive marked nodes with their max-expiry alternative paths.

    The classical delete–re-derive step (DRed / Section 6.2.5): every
    marked node lost its tree derivation; a Dijkstra-style expansion over
    the remaining snapshot graph finds, for each, the alternative path
    with the largest expiry valid at ``now``.  Nodes that are fixed are
    reparented in place (``on_fix``); nodes with no valid alternative are
    removed from the tree (``on_remove`` runs before detachment).

    Processing candidates in decreasing expiry order guarantees that when
    a node is fixed, its recorded expiry is final — exactly Dijkstra's
    argument with ``min`` along paths and ``max`` at merges.

    A node fixed in this pass is *settled*: its expiry is final, so any
    further candidate for it is dead weight.  The ``settled`` set and the
    per-node best-pushed-expiry guard keep such candidates out of the
    heap — without the guard a diamond-shaped snapshot graph pushes one
    candidate per alternative parent and re-pops them all after the node
    has already been re-derived.  Strictly-worse candidates are safe to
    drop: the heap pops higher expiries first and a pushed candidate's
    parent stays valid for the whole pass (removals happen only after the
    heap drains), so the best pushed candidate always wins.  Equal-expiry
    candidates are kept — the ``ts`` tiebreak decides between them.
    """
    if not marked:
        return

    # Max-heap of candidate derivations: (-exp, ts, child, parent, label).
    heap: list[tuple[int, int, NodeKey, NodeKey, Label]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    nodes_get = tree.nodes.get
    reverse_get = reverse.get
    in_group = adjacency.in_group
    out_group = adjacency.out_group
    root = tree.root
    settled: set[NodeKey] = set()
    best_exp: dict[NodeKey, int] = {}

    def push_candidates(child_key: NodeKey) -> None:
        vertex, state = child_key
        group = in_group(vertex)
        if not group:
            return
        for (label, prev_vertex), intervals in group.items():
            states = reverse_get((label, state))
            if not states:
                continue
            # Best (max-expiry) interval valid at `now`, inline.
            interval = None
            interval_exp = now
            for candidate in intervals:
                exp = candidate.exp
                if exp > interval_exp and candidate.ts <= now:
                    interval = candidate
                    interval_exp = exp
            if interval is None:
                continue
            for prev_state in states:
                parent_key = (prev_vertex, prev_state)
                if parent_key in marked or parent_key == child_key:
                    continue
                parent = nodes_get(parent_key)
                if parent is None or (parent.exp <= now and parent_key != root):
                    continue
                exp = parent.exp
                if interval.exp < exp:
                    exp = interval.exp
                if exp > now:
                    recorded = best_exp.get(child_key, now)
                    if exp < recorded:
                        continue  # a better candidate is already queued
                    best_exp[child_key] = exp
                    ts = max(parent.ts, interval.ts)
                    heappush(heap, (-exp, ts, child_key, parent_key, label))

    for key in marked:
        push_candidates(key)

    dfa_delta = dfa.delta
    while heap:
        neg_exp, ts, child_key, parent_key, label = heappop(heap)
        if child_key in settled or child_key not in marked:
            continue  # already fixed by a better candidate
        parent = nodes_get(parent_key)
        if parent is None or parent_key in marked:
            continue
        exp = -neg_exp
        node = tree.nodes[child_key]
        tree.reparent(child_key, parent_key, label)
        node.ts = ts
        node.exp = exp
        marked.discard(child_key)
        settled.add(child_key)
        on_fix(child_key, node)
        # Relax: the fixed node may now be the best parent for marked
        # neighbours downstream.
        vertex, state = child_key
        group = out_group(vertex)
        if not group:
            continue
        for (out_label, next_vertex), intervals in group.items():
            next_state = dfa_delta(state, out_label)
            if next_state is None:
                continue
            next_key = (next_vertex, next_state)
            if next_key in settled or next_key not in marked:
                continue
            interval = None
            interval_exp = now
            for candidate in intervals:
                candidate_exp = candidate.exp
                if candidate_exp > interval_exp and candidate.ts <= now:
                    interval = candidate
                    interval_exp = candidate_exp
            if interval is None:
                continue
            next_exp = exp
            if interval.exp < next_exp:
                next_exp = interval.exp
            if next_exp > now:
                recorded = best_exp.get(next_key, now)
                if next_exp < recorded:
                    continue  # a better candidate is already queued
                best_exp[next_key] = next_exp
                heappush(
                    heap,
                    (-next_exp, max(ts, interval.ts), next_key, child_key, out_label),
                )

    for key in list(marked):
        node = tree.nodes.get(key)
        if node is None:
            marked.discard(key)
            continue
        on_remove(key, node)
        # Children were either fixed (reparented away) or are themselves
        # marked; remove just this node.
        if node.parent is not None:
            parent = tree.nodes.get(node.parent)
            if parent is not None:
                parent.children.pop(key, None)
        for child in list(node.children):
            child_node = tree.nodes.get(child)
            if child_node is not None and child_node.parent == key:
                child_node.parent = None
        del tree.nodes[key]
        marked.discard(key)
