"""Physical WSCAN: per-tuple windowing map (Definition 16, Section 6.2.1).

WSCAN is stateless: it rewrites the validity interval of each incoming
sgt according to the window specification, applying the optional pushed-
down prefilter first.  Deletions pass through the same mapping, so a
negative tuple reaches downstream state with exactly the interval its
insertion carried.
"""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.core.tuples import SGT, EdgePayload
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import Event, PhysicalOperator


class WScanOp(PhysicalOperator):
    """Assigns window validity intervals to input tuples."""

    def __init__(
        self,
        label: str,
        window: SlidingWindow,
        prefilter: Predicate | None = None,
    ):
        super().__init__(f"wscan[{label},{window}]")
        self.label = label
        self.window = window
        self.prefilter = prefilter

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.prefilter is not None and not self.prefilter.evaluate(
            sgt.src, sgt.trg, sgt.label
        ):
            return
        interval = self.window.interval_for(sgt.ts)
        windowed = SGT(
            sgt.src,
            sgt.trg,
            sgt.label,
            interval,
            EdgePayload(sgt.src, sgt.trg, sgt.label),
        )
        self.emit(Event(windowed, event.sign))
