"""Physical WSCAN: per-tuple windowing map (Definition 16, Section 6.2.1).

WSCAN is stateless: it rewrites the validity interval of each incoming
sgt according to the window specification, applying the optional pushed-
down prefilter first.  Deletions pass through the same mapping, so a
negative tuple reaches downstream state with exactly the interval its
insertion carried.
"""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.core.batch import DeltaBatch
from repro.core.columns import DeltaColumns
from repro.core.intervals import Interval
from repro.core.nplib import np
from repro.core.tuples import SGT
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import Event, PhysicalOperator
from repro.physical.vkernels import compile_mask


class WScanOp(PhysicalOperator):
    """Assigns window validity intervals to input tuples."""

    def __init__(
        self,
        label: str,
        window: SlidingWindow,
        prefilter: Predicate | None = None,
    ):
        super().__init__(f"wscan[{label},{window}]")
        self.label = label
        self.window = window
        self.prefilter = prefilter
        #: hot-loop caches of the window parameters; a degenerate
        #: configuration (size < slide) is the only way Definition 16
        #: can assign an empty interval, checked per edge only then
        self._beta = window.slide
        self._size = window.size
        self._degenerate = window.size < window.slide
        #: compiled vector-mode prefilter mask (see physical.vkernels);
        #: ``None`` either means "no prefilter" or "not compilable" —
        #: the vector kernel falls back to the row loop for the latter
        self._mask_fn = (
            compile_mask(prefilter) if prefilter is not None else None
        )

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.prefilter is not None and not self.prefilter.evaluate(
            sgt.src, sgt.trg, sgt.label
        ):
            return
        interval = self.window.interval_for(sgt.ts)
        windowed = SGT(sgt.src, sgt.trg, sgt.label, interval)
        self.emit(Event(windowed, event.sign))

    def on_edge(self, port: int, src, dst, t: int, label: str) -> None:
        """Window one raw edge from bare scalars (per-edge fast path).

        One sgt, one interval and one event are allocated — the NOW-sgt
        stage of the classic push path is skipped entirely.
        """
        prefilter = self.prefilter
        if prefilter is not None and not prefilter.evaluate(src, dst, label):
            return
        exp = t - t % self._beta + self._size
        if self._degenerate and exp <= t:
            self.window.interval_for(t)  # raises InvalidIntervalError
        self.emit(Event(SGT(src, dst, label, Interval(t, exp))))

    def on_sge_batch(self, port: int, boundary: int, edges: list) -> None:
        """Window raw sges directly (batched-executor fast path).

        Skips the intermediate NOW-sgt stage entirely: the validity
        interval is computed straight from the sge timestamp (Definition
        16, ``exp = floor(t / beta) * beta + T``, inlined) and exactly one
        sgt is allocated per edge.
        """
        window = self.window
        beta = window.slide
        size = window.size
        prefilter = self.prefilter
        out: list[SGT] = []
        append = out.append
        for e in edges:
            if prefilter is not None and not prefilter.evaluate(
                e.src, e.trg, e.label
            ):
                continue
            t = e.t
            exp = t - t % beta + size
            if exp <= t:
                # Same degenerate-configuration guard as interval_for.
                window.interval_for(t)  # raises InvalidIntervalError
            append(SGT(e.src, e.trg, e.label, Interval(t, exp)))
        if out:
            self.emit_batch(DeltaBatch(boundary, out))

    def on_edge_columns(
        self,
        port: int,
        boundary: int,
        label: str,
        src: list,
        dst: list,
        ts: list,
    ) -> None:
        """Column-at-a-time windowing (the columnar-executor fast path).

        One pass computes the expiry column straight from the timestamp
        column (Definition 16 inlined, as in :meth:`on_sge_batch`); no
        per-tuple object of any kind is allocated.  The input columns are
        adopted wholesale when no prefilter applies — the executor hands
        over ownership of freshly built lists.
        """
        if np is not None and type(ts) is np.ndarray:
            if self.prefilter is None or self._mask_fn is not None:
                self._on_columns_vector(boundary, label, src, dst, ts)
                return
            # Non-compilable prefilter: fall back to the row loop below
            # on plain ints (numpy scalars must not reach row-land).
            src, dst, ts = src.tolist(), dst.tolist(), ts.tolist()
        window = self.window
        beta = window.slide
        size = window.size
        prefilter = self.prefilter
        if prefilter is None:
            exp = [t - t % beta + size for t in ts]
            if size < beta:
                # Degenerate configurations (window shorter than the
                # slide) are the only way exp <= t can happen; skip the
                # per-row guard pass entirely otherwise.
                for i, e in enumerate(exp):
                    if e <= ts[i]:
                        window.interval_for(ts[i])  # raises InvalidIntervalError
            if exp:
                self.emit_batch(
                    DeltaBatch(
                        boundary,
                        columns=DeltaColumns(self.label, src, dst, ts, exp),
                    )
                )
            return
        evaluate = prefilter.evaluate
        out_src: list[int] = []
        out_dst: list[int] = []
        out_ts: list[int] = []
        out_exp: list[int] = []
        for i in range(len(src)):
            s = src[i]
            d = dst[i]
            if not evaluate(s, d, label):
                continue
            t = ts[i]
            e = t - t % beta + size
            if e <= t:
                window.interval_for(t)  # raises InvalidIntervalError
            out_src.append(s)
            out_dst.append(d)
            out_ts.append(t)
            out_exp.append(e)
        if out_src:
            self.emit_batch(
                DeltaBatch(
                    boundary,
                    columns=DeltaColumns(
                        self.label, out_src, out_dst, out_ts, out_exp
                    ),
                )
            )

    def _on_columns_vector(self, boundary, label, src, dst, ts) -> None:
        """Whole-column windowing over int64 arrays (vector execution).

        Definition 16 becomes three array ops (``exp = t - t % beta +
        size``); the prefilter — when present — is the compiled boolean
        mask, so selection is one fancy-index per column.  Rows stay as
        arrays end to end: the emitted batch carries ndarray-backed
        :class:`DeltaColumns` downstream.
        """
        exp = ts - ts % self._beta + self._size
        if self._degenerate:
            bad = exp <= ts
            if bad.any():
                # Same degenerate-configuration guard as interval_for,
                # raised for the first offending timestamp.
                self.window.interval_for(int(ts[int(bad.argmax())]))
        if self.prefilter is not None:
            keep = self._mask_fn(src, dst, label, np)
            if keep is False:
                return
            if keep is not True:
                src = src[keep]
                dst = dst[keep]
                ts = ts[keep]
                exp = exp[keep]
        if len(src):
            self.emit_batch(
                DeltaBatch(
                    boundary,
                    columns=DeltaColumns(self.label, src, dst, ts, exp),
                )
            )

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk windowing: one tight pass, one downstream flush.

        The window mapping is per-tuple (Definition 16 keys the interval
        on the edge's own timestamp), so the batch win is amortized
        dispatch: no Event wrappers, prefilter branch hoisted out of the
        loop, and a single ``emit_batch`` instead of one ``emit`` per
        tuple.
        """
        interval_for = self.window.interval_for
        prefilter = self.prefilter
        signs = batch.signs
        if signs is None:
            if prefilter is None:
                out = [
                    SGT(s.src, s.trg, s.label, interval_for(s.interval.ts))
                    for s in batch.sgts
                ]
            else:
                evaluate = prefilter.evaluate
                out = [
                    SGT(s.src, s.trg, s.label, interval_for(s.interval.ts))
                    for s in batch.sgts
                    if evaluate(s.src, s.trg, s.label)
                ]
            if out:
                self.emit_batch(DeltaBatch(batch.boundary, out))
            return
        out_sgts: list[SGT] = []
        out_signs: list[int] = []
        for sgt, sign in zip(batch.sgts, signs):
            if prefilter is not None and not prefilter.evaluate(
                sgt.src, sgt.trg, sgt.label
            ):
                continue
            out_sgts.append(
                SGT(sgt.src, sgt.trg, sgt.label, interval_for(sgt.interval.ts))
            )
            out_signs.append(sign)
        if out_sgts:
            self.emit_batch(DeltaBatch(batch.boundary, out_sgts, out_signs))
