"""Physical WSCAN: per-tuple windowing map (Definition 16, Section 6.2.1).

WSCAN is stateless: it rewrites the validity interval of each incoming
sgt according to the window specification, applying the optional pushed-
down prefilter first.  Deletions pass through the same mapping, so a
negative tuple reaches downstream state with exactly the interval its
insertion carried.
"""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.core.batch import DeltaBatch
from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import Event, PhysicalOperator


class WScanOp(PhysicalOperator):
    """Assigns window validity intervals to input tuples."""

    def __init__(
        self,
        label: str,
        window: SlidingWindow,
        prefilter: Predicate | None = None,
    ):
        super().__init__(f"wscan[{label},{window}]")
        self.label = label
        self.window = window
        self.prefilter = prefilter

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.prefilter is not None and not self.prefilter.evaluate(
            sgt.src, sgt.trg, sgt.label
        ):
            return
        interval = self.window.interval_for(sgt.ts)
        windowed = SGT(
            sgt.src,
            sgt.trg,
            sgt.label,
            interval,
            EdgePayload(sgt.src, sgt.trg, sgt.label),
        )
        self.emit(Event(windowed, event.sign))

    def on_sge_batch(self, port: int, boundary: int, edges: list) -> None:
        """Window raw sges directly (batched-executor fast path).

        Skips the intermediate NOW-sgt stage entirely: the validity
        interval is computed straight from the sge timestamp (Definition
        16, ``exp = floor(t / beta) * beta + T``, inlined) and exactly one
        sgt is allocated per edge.
        """
        window = self.window
        beta = window.slide
        size = window.size
        prefilter = self.prefilter
        out: list[SGT] = []
        append = out.append
        for e in edges:
            if prefilter is not None and not prefilter.evaluate(
                e.src, e.trg, e.label
            ):
                continue
            t = e.t
            exp = t - t % beta + size
            if exp <= t:
                # Same degenerate-configuration guard as interval_for.
                window.interval_for(t)  # raises InvalidIntervalError
            src = e.src
            trg = e.trg
            label = e.label
            append(
                SGT(src, trg, label, Interval(t, exp), EdgePayload(src, trg, label))
            )
        if out:
            self.emit_batch(DeltaBatch(boundary, out))

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk windowing: one tight pass, one downstream flush.

        The window mapping is per-tuple (Definition 16 keys the interval
        on the edge's own timestamp), so the batch win is amortized
        dispatch: no Event wrappers, prefilter branch hoisted out of the
        loop, and a single ``emit_batch`` instead of one ``emit`` per
        tuple.
        """
        interval_for = self.window.interval_for
        prefilter = self.prefilter
        signs = batch.signs
        if signs is None:
            if prefilter is None:
                out = [
                    SGT(
                        s.src,
                        s.trg,
                        s.label,
                        interval_for(s.interval.ts),
                        EdgePayload(s.src, s.trg, s.label),
                    )
                    for s in batch.sgts
                ]
            else:
                evaluate = prefilter.evaluate
                out = [
                    SGT(
                        s.src,
                        s.trg,
                        s.label,
                        interval_for(s.interval.ts),
                        EdgePayload(s.src, s.trg, s.label),
                    )
                    for s in batch.sgts
                    if evaluate(s.src, s.trg, s.label)
                ]
            if out:
                self.emit_batch(DeltaBatch(batch.boundary, out))
            return
        out_sgts: list[SGT] = []
        out_signs: list[int] = []
        for sgt, sign in zip(batch.sgts, signs):
            if prefilter is not None and not prefilter.evaluate(
                sgt.src, sgt.trg, sgt.label
            ):
                continue
            out_sgts.append(
                SGT(
                    sgt.src,
                    sgt.trg,
                    sgt.label,
                    interval_for(sgt.interval.ts),
                    EdgePayload(sgt.src, sgt.trg, sgt.label),
                )
            )
            out_signs.append(sign)
        if out_sgts:
            self.emit_batch(DeltaBatch(batch.boundary, out_sgts, out_signs))
